"""Live simulation-as-a-service fleet loop (``repro.service``).

Where :func:`repro.api.run_fleet` simulates a whole day in one batch
call, this package keeps a vectorized fleet *running*: a
:class:`FleetService` ingests a load feed one monitoring window at a
time, streams ``fleet.*`` metrics as it goes, answers **what-if**
reconfiguration queries against a shadow copy of the fleet, and can be
checkpointed and resumed bit-identically mid-day.

* :mod:`repro.service.feeds` — the :class:`LoadFeed` abstraction: named
  diurnal curves, phase-structured synthetic generators, and JSONL
  replay (also registered as ``"replay:<path>"`` load curves for the
  batch entry points);
* :mod:`repro.service.service` — the :class:`FleetService` loop
  (ingest → advance → publish) with what-if, reconfigure, graceful
  feed-gap degradation, SLO scoring (:mod:`repro.obs.slo`), and the
  violation flight recorder (:mod:`repro.obs.recorder`) behind the
  control plane's ``dump`` verb;
* :mod:`repro.service.checkpoint` — content-addressed state snapshots
  on the :mod:`repro.engine.store`;
* :mod:`repro.service.control` — the line-delimited JSON control plane
  behind ``stretch-repro serve``.

The stable entry point is :func:`repro.api.serve`.
"""

from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_key,
    load_checkpoint,
    save_checkpoint,
)
from repro.service.control import COMMANDS, ControlPlane, handle_command, respond
from repro.service.feeds import (
    CurveFeed,
    LoadFeed,
    Phase,
    PhaseFeed,
    ReplayFeed,
    make_feed,
    parse_phases,
    replay_curve,
)
from repro.service.service import FleetService

__all__ = [
    "CHECKPOINT_VERSION",
    "COMMANDS",
    "ControlPlane",
    "CurveFeed",
    "FleetService",
    "LoadFeed",
    "Phase",
    "PhaseFeed",
    "ReplayFeed",
    "checkpoint_key",
    "handle_command",
    "load_checkpoint",
    "make_feed",
    "parse_phases",
    "replay_curve",
    "respond",
    "save_checkpoint",
]
