"""Line-delimited JSON control plane for the live fleet service.

One request per line on the control stream (stdin for ``stretch-repro
serve``), one JSON response per line on the output stream.  Requests are
objects with a ``cmd`` field (:data:`COMMANDS`) plus command arguments;
an optional ``id`` is echoed back for correlation.  Responses always
carry ``ok`` plus either ``result`` or ``error``:

``{"cmd": "status"}``
    → live progress, configuration, and metrics-so-far.
``{"cmd": "whatif", "monitor": {"engage_fraction": 0.8}, "horizon": 6}``
    → shadow-fleet metric diff; ``monitor`` keys are
    :class:`~repro.core.monitor.MonitorConfig` field overrides, ``policy``
    a balancing-policy name, ``placement`` a placement-policy name
    (heterogeneous populations only), ``scenario`` an adversarial
    scenario — a preset name from
    :data:`repro.scenarios.SCENARIO_NAMES`, a spec dict, or ``null`` to
    project without the live scenario.
``{"cmd": "checkpoint"}``
    → content-addressed state snapshot (``result.key`` resumes it).
``{"cmd": "reconfigure", "monitor": {...}, "policy": "uniform"}``
    → swap the live configuration at the next window boundary;
    ``scenario`` injects (``null`` lifts) an adversarial scenario.
``{"cmd": "dump", "path": "postmortem.jsonl"}``
    → write the flight recorder's postmortem bundle (``path`` optional;
    requires a recorder-enabled service).
``{"cmd": "stop"}``
    → clean shutdown (equivalent to SIGINT).

The reader thread is a daemon so a closed/blocked control stream never
wedges shutdown; malformed lines surface as ``ok: false`` responses
rather than killing the service.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import threading

from repro.core.monitor import MonitorConfig

__all__ = ["COMMANDS", "ControlPlane", "handle_command", "respond"]

COMMANDS = ("status", "whatif", "checkpoint", "reconfigure", "dump", "stop")


def monitor_from_payload(base: MonitorConfig, payload: dict) -> MonitorConfig:
    """Apply JSON field overrides to a monitor config, strictly."""
    fields = {f.name for f in dataclasses.fields(MonitorConfig)}
    unknown = sorted(set(payload) - fields)
    if unknown:
        raise ValueError(
            f"unknown MonitorConfig fields {unknown}; known: {sorted(fields)}"
        )
    return dataclasses.replace(base, **payload)


def handle_command(service, request: dict) -> dict:
    """Execute one control request against ``service``; never raises."""
    cmd = request.get("cmd") if isinstance(request, dict) else None
    response: dict = {"ok": True, "cmd": cmd}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    try:
        if not isinstance(request, dict) or "_error" in request:
            raise ValueError(
                request.get("_error", "control request must be a JSON object")
                if isinstance(request, dict)
                else "control request must be a JSON object"
            )
        monitor = request.get("monitor")
        if monitor is not None:
            monitor = monitor_from_payload(
                service.engine.config.monitor, monitor
            )
        # The scenario argument is only forwarded when the request names
        # it: {"scenario": null} means "detach", absence means "keep".
        scenario_kwargs = (
            {"scenario": request.get("scenario")}
            if isinstance(request, dict) and "scenario" in request else {}
        )
        if cmd == "status":
            response["result"] = service.status()
        elif cmd == "whatif":
            response["result"] = service.whatif(
                monitor=monitor,
                policy=request.get("policy"),
                placement=request.get("placement"),
                horizon=int(request.get("horizon", 12)),
                **scenario_kwargs,
            )
        elif cmd == "checkpoint":
            response["result"] = service.checkpoint()
        elif cmd == "reconfigure":
            response["result"] = service.reconfigure(
                monitor=monitor,
                policy=request.get("policy"),
                placement=request.get("placement"),
                **scenario_kwargs,
            )
        elif cmd == "dump":
            response["result"] = service.dump(
                path=request.get("path"), reason="control"
            )
        elif cmd == "stop":
            service.stop("control")
            response["result"] = {"stopping": True}
        else:
            raise ValueError(
                f"unknown cmd {cmd!r}; known: {', '.join(COMMANDS)}"
            )
    except Exception as exc:  # control plane must never take the loop down
        response["ok"] = False
        response["error"] = f"{type(exc).__name__}: {exc}"
    response["window"] = service.window
    return response


def respond(out, response: dict) -> None:
    """Write one LDJSON response line and flush it."""
    out.write(json.dumps(response) + "\n")
    out.flush()


class ControlPlane:
    """Background reader turning a text stream into drained requests.

    Lines are parsed off ``stream`` on a daemon thread (so a quiet stdin
    never blocks the serve loop) and handed over via :meth:`drain`.
    Unparseable lines become ``{"_error": ...}`` requests, which
    :func:`handle_command` answers with ``ok: false``.
    """

    def __init__(self, stream):
        self._queue: queue.Queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._read, args=(stream,), daemon=True
        )
        self._thread.start()

    def _read(self, stream) -> None:
        try:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    self._queue.put(json.loads(line))
                except ValueError:
                    self._queue.put(
                        {"_error": f"bad control line: {line[:80]!r}"}
                    )
        except ValueError:
            pass  # stream closed mid-iteration during shutdown

    def drain(self) -> list[dict]:
        """All requests received since the last drain (non-blocking)."""
        requests = []
        while True:
            try:
                requests.append(self._queue.get_nowait())
            except queue.Empty:
                return requests
