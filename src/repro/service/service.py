"""The live fleet service: ingest → advance → publish, window by window.

:class:`FleetService` owns a :class:`~repro.fleet.engine.FleetEngine`
and drives it through a :class:`~repro.fleet.engine.FleetStepper`, one
monitoring window per :meth:`advance` tick, with the cluster load for
each window *ingested* from a pluggable
:class:`~repro.service.feeds.LoadFeed` rather than baked in up front.
Around that loop it layers the three service-grade capabilities:

* **streaming observability** — every completed window is published to a
  :class:`~repro.obs.metrics.MetricsRegistry` (``fleet.*`` gauges and
  series), appended to a JSONL sink, and bracketed by Perfetto spans
  (``service.ingest`` / ``service.advance`` / ``service.publish``);
* **what-if queries** — :meth:`whatif` deep-copies the fleet state, forks
  a shadow engine under an alternate monitor/policy, runs both the live
  and alternate configurations ``horizon`` windows ahead on the feed's
  forecast, and returns a metric diff — the live arrays are never touched;
* **checkpoint/resume** — :meth:`checkpoint` writes the flattened state
  to the content-addressed result store; :meth:`resume` rebuilds a
  service that is bit-identical to one that never stopped;
* **SLO scoring and flight recording** — an attached
  :class:`~repro.obs.slo.SLOEngine` scores every window against the
  declared objectives (burn rates, error budget — surfaced in
  :meth:`status`, as ``fleet.slo.*`` gauges, and as a what-if budget
  column), and an attached :class:`~repro.obs.recorder.FlightRecorder`
  keeps the recent window history plus alert captures, dumped as a
  postmortem bundle via :meth:`dump` (control-plane ``dump`` verb) or
  automatically on ``feed_stalled``/SIGINT stops.  Both are pure
  observers: the fleet timeline is bit-identical with them attached.

Feed gaps degrade gracefully: a missing window is filled by holding the
last ingested load, and :attr:`max_gap_windows` bounds the lag — beyond
it the service stops cleanly (``stop_reason="feed_stalled"``) instead of
free-running on stale data forever.
"""

from __future__ import annotations

import time
from dataclasses import asdict, replace

from repro.fleet.engine import FleetEngine, FleetState
from repro.fleet.shard import _performance_payload
from repro.obs.fleet import publish_fleet_window
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOEngine
from repro.scenarios import as_scenario
from repro.service.checkpoint import load_checkpoint, save_checkpoint
from repro.service.feeds import LoadFeed, make_feed

__all__ = ["FleetService"]

#: "Keep the current scenario" sentinel for whatif()/reconfigure().
_UNSET = object()


class FleetService:
    """A long-lived, queryable fleet simulation advanced by a load feed."""

    def __init__(
        self,
        engine: FleetEngine,
        feed,
        *,
        tail: str = "surrogate",
        state: FleetState | None = None,
        store=None,
        registry=None,
        sink=None,
        tracer=None,
        max_gap_windows: int = 6,
        chunk_size: int | None = None,
        slos=None,
        recorder: FlightRecorder | bool | None = None,
        postmortem_path: str | None = None,
    ):
        if max_gap_windows < 0:
            raise ValueError("max_gap_windows must be non-negative")
        self.engine = engine
        self.feed: LoadFeed = make_feed(
            feed,
            seed=engine.config.seed,
            window_minutes=engine.config.window_minutes,
        )
        self.tail = tail
        self.registry = registry
        self.sink = sink
        self.tracer = tracer
        self.max_gap_windows = int(max_gap_windows)
        self._store = store
        self._chunk_size = chunk_size
        self._stepper = engine.stepper(
            None, tail=tail, state=state, chunk_size=chunk_size
        )
        if slos is not None and not isinstance(slos, SLOEngine):
            slos = SLOEngine(
                slos, day_windows=engine.config.n_windows, registry=registry
            )
        self.slo: SLOEngine | None = slos
        if self.slo is not None and self.slo.registry is None:
            self.slo.registry = registry
        if recorder is True:
            recorder = FlightRecorder(registry=registry)
        self.recorder: FlightRecorder | None = recorder or None
        if self.recorder is not None:
            if self.recorder.registry is None:
                self.recorder.registry = registry
            self._stepper.capture_violators = self.recorder.top_k
        self._postmortem_path = postmortem_path
        self._pending_alerts: list[dict] = []
        self._last_load: float | None = None
        self._gap_run = 0
        self.feed_gaps = 0
        self.stopped = False
        self.stop_reason: str | None = None

    # -- introspection ---------------------------------------------------

    @property
    def state(self) -> FleetState:
        return self._stepper.state

    @property
    def timeline(self):
        return self._stepper.timeline

    @property
    def window(self) -> int:
        """Index of the *next* window to advance."""
        return self.state.window

    @property
    def done(self) -> bool:
        return self._stepper.done

    @property
    def remaining(self) -> int:
        return self._stepper.remaining

    @property
    def scenario(self):
        """The adversarial scenario attached to the live fleet (or None)."""
        return self.engine.scenario

    def _identity(self) -> str:
        """Content identity of this service for checkpoint addressing."""
        return repr((
            self.engine.ls_profile.name,
            _performance_payload(self.engine.performance),
            self.engine.config,
            self.feed.name,
            self.tail,
            self.engine.scenario,
        ))

    def _hour(self, window: int) -> float:
        return window * self.engine.config.window_minutes / 60.0

    def _span(self, name: str, **args):
        if self.tracer is not None:
            return self.tracer.span(name, cat="service", args=args or None)
        import contextlib

        return contextlib.nullcontext()

    # -- the ingest → advance → publish loop -----------------------------

    def ingest(self, window: int) -> tuple[float, bool]:
        """Pull window ``window``'s load from the feed.

        Returns ``(load, gap_filled)``.  A gap holds the last ingested
        window (0.0 before any); :attr:`max_gap_windows` consecutive gaps
        later, the service stops itself (``feed_stalled``).
        """
        load = self.feed.load(window, self._hour(window))
        if load is None:
            self.feed_gaps += 1
            self._gap_run += 1
            if self._gap_run > self.max_gap_windows:
                self.stop("feed_stalled")
            return (self._last_load if self._last_load is not None else 0.0,
                    True)
        self._gap_run = 0
        self._last_load = float(load)
        return float(load), False

    def advance(self, n_windows: int = 1) -> list[dict]:
        """Ingest and simulate up to ``n_windows`` windows; returns records."""
        records = []
        for _ in range(n_windows):
            if self.done or self.stopped:
                break
            k = self.window
            with self._span("service.ingest", window=k):
                load, gap_filled = self.ingest(k)
            if self.stopped:
                break
            with self._span("service.advance", window=k):
                record = self._stepper.step(load)
            record["gap_filled"] = gap_filled
            with self._span("service.publish", window=k):
                publish_fleet_window(self.registry, record)
                events = (
                    self.slo.observe(record) if self.slo is not None else []
                )
                if self.recorder is not None:
                    self.recorder.observe(
                        record,
                        violators=self._stepper.last_violators,
                        events=events,
                    )
                self._pending_alerts.extend(events)
                if self.sink is not None:
                    self.sink.write(dict(record, type="fleet_window"))
                    for event in events:
                        self.sink.write(dict(event))
                    self.sink.flush()
            records.append(record)
        return records

    def drain_alerts(self) -> list[dict]:
        """SLO alert events fired since the last drain."""
        alerts = self._pending_alerts
        self._pending_alerts = []
        return alerts

    # -- control-plane verbs ---------------------------------------------

    def status(self) -> dict:
        """Live snapshot: progress, configuration, metrics so far."""
        sofar = self.timeline.slice_metrics(0, self.window)
        return {
            "window": self.window,
            "n_windows": self.state.n_windows,
            "n_servers": self.state.n_servers,
            "done": self.done,
            "stopped": self.stopped,
            "stop_reason": self.stop_reason,
            "feed": self.feed.name,
            "feed_gaps": self.feed_gaps,
            "tail": self.tail,
            "policy": self.engine.config.policy,
            "monitor": asdict(self.engine.config.monitor),
            "scenario": (
                None if self.engine.scenario is None
                else self.engine.scenario.to_dict()
            ),
            **(
                {
                    "placement": self.engine.config.placement,
                    "population": dict(
                        zip(
                            self.engine.config.population,
                            (float(f) for f in self.engine.config.mix_fractions),
                        )
                    ),
                }
                if self.engine.config.population else {}
            ),
            "metrics": sofar,
            **(
                {"slo": self.slo.status()} if self.slo is not None else {}
            ),
            **(
                {"recorder": self.recorder.status()}
                if self.recorder is not None else {}
            ),
        }

    def _forecast_loads(self, horizon: int) -> list[float]:
        held = self._last_load if self._last_load is not None else 0.0
        loads = []
        for i in range(horizon):
            k = self.window + i
            load = self.feed.forecast(k, self._hour(k))
            loads.append(float(load) if load is not None else held)
        return loads

    def _shadow_engine(self, config, scenario=_UNSET) -> FleetEngine:
        """An engine clone under ``config`` sharing the fitted surrogate."""
        return FleetEngine(
            self.engine.ls_profile,
            self.engine.performance,
            config,
            surrogate=self.engine._surrogate,
            store=self.engine._store,
            corunners=self.engine.corunners,
            scenario=(
                self.engine.scenario if scenario is _UNSET else scenario
            ),
        )

    def whatif(
        self,
        *,
        monitor=None,
        policy: str | None = None,
        placement: str | None = None,
        scenario=_UNSET,
        horizon: int = 12,
    ) -> dict:
        """Fork a shadow fleet under an alternate config; return the diff.

        Both the live configuration and the alternate advance ``horizon``
        windows from a deep copy of the current state, on the feed's
        forecast loads, so the diff isolates the *configuration* effect
        under identical traffic.  The live fleet is never perturbed.
        ``placement`` requires a heterogeneous population.  ``scenario``
        (a spec, preset name, dict, or ``None`` to detach) projects the
        alternate under a different adversarial scenario — e.g. what-if
        a tuned monitor against the incident the live fleet is in.
        """
        if (monitor is None and policy is None and placement is None
                and scenario is _UNSET):
            raise ValueError(
                "whatif needs a monitor, policy, placement, and/or "
                "scenario change"
            )
        if placement is not None and not self.engine.config.population:
            raise ValueError(
                "placement what-ifs need a heterogeneous population"
            )
        horizon = min(int(horizon), self.remaining)
        if horizon <= 0:
            raise ValueError("no windows remaining to project over")
        loads = self._forecast_loads(horizon)
        k = self.window

        def project(config, scenario_) -> dict:
            shadow = self._shadow_engine(config, scenario_).stepper(
                None,
                tail=self.tail,
                state=self.state.copy(),
                chunk_size=self._chunk_size,
            )
            for load in loads:
                shadow.step(load)
            return shadow.timeline.slice_metrics(k, k + horizon)

        alt_scenario = (
            self.engine.scenario if scenario is _UNSET
            else as_scenario(scenario)
        )
        alt_config = replace(
            self.engine.config,
            monitor=monitor if monitor is not None else
            self.engine.config.monitor,
            policy=policy if policy is not None else self.engine.config.policy,
            placement=placement if placement is not None else
            self.engine.config.placement,
        )
        live = project(self.engine.config, self.engine.scenario)
        alt = project(alt_config, alt_scenario)
        diff = {
            key: alt[key] - live[key]
            for key in live
            if isinstance(live[key], float)
        }
        out = {
            "window": k,
            "horizon": horizon,
            "monitor": asdict(alt_config.monitor),
            "policy": alt_config.policy,
            "scenario": (
                None if alt_scenario is None else alt_scenario.to_dict()
            ),
            "live": live,
            "whatif": alt,
            "diff": diff,
        }
        if self.engine.config.population:
            out["placement"] = alt_config.placement
        if self.slo is not None:
            budget = {}
            for spec in self.slo.specs:
                if spec.objective != "violation_rate":
                    continue
                impacts = {
                    which: self.slo.budget_impact(
                        spec.name, side["violation_rate"], horizon
                    )
                    for which, side in (("live", live), ("whatif", alt))
                }
                impacts["diff"] = impacts["whatif"] - impacts["live"]
                budget[spec.name] = impacts
                diff[f"slo_budget.{spec.name}"] = impacts["diff"]
            out["slo_budget"] = budget
        return out

    def checkpoint(self) -> dict:
        """Persist the full state; returns the content-addressed key."""
        key = save_checkpoint(self._store, self._identity(), self.state)
        record = {
            "key": key,
            "window": self.window,
            "n_servers": self.state.n_servers,
        }
        if self.sink is not None:
            self.sink.write(dict(record, type="checkpoint"))
            self.sink.flush()
        return record

    @classmethod
    def resume(
        cls, key: str, engine: FleetEngine, feed, *, store=None, **kwargs
    ) -> "FleetService":
        """Rebuild a service from a checkpoint key (bit-identical resume)."""
        state = load_checkpoint(store, key)
        return cls(engine, feed, state=state, store=store, **kwargs)

    def reconfigure(
        self,
        *,
        monitor=None,
        policy: str | None = None,
        placement: str | None = None,
        scenario=_UNSET,
    ) -> dict:
        """Swap the live monitor/policy/placement/scenario at a window boundary.

        The carried :class:`FleetState` (modes, streaks, timeline rows so
        far) is kept; only the forward-looking configuration changes.
        ``placement`` requires a heterogeneous population.  ``scenario``
        injects (or, with ``None``, lifts) an adversarial scenario into
        the live fleet — the incident-drill path.
        """
        if (monitor is None and policy is None and placement is None
                and scenario is _UNSET):
            raise ValueError(
                "reconfigure needs a monitor, policy, placement, and/or "
                "scenario change"
            )
        if placement is not None and not self.engine.config.population:
            raise ValueError(
                "placement reconfiguration needs a heterogeneous population"
            )
        new_scenario = (
            self.engine.scenario if scenario is _UNSET
            else as_scenario(scenario)
        )
        config = replace(
            self.engine.config,
            monitor=monitor if monitor is not None else
            self.engine.config.monitor,
            policy=policy if policy is not None else self.engine.config.policy,
            placement=placement if placement is not None else
            self.engine.config.placement,
        )
        self.engine = self._shadow_engine(config, new_scenario)
        self._stepper = self.engine.stepper(
            None, tail=self.tail, state=self.state,
            chunk_size=self._chunk_size,
        )
        if self.recorder is not None:
            self._stepper.capture_violators = self.recorder.top_k
        result = {
            "window": self.window,
            "monitor": asdict(config.monitor),
            "policy": config.policy,
            "scenario": (
                None if new_scenario is None else new_scenario.to_dict()
            ),
        }
        if config.population:
            result["placement"] = config.placement
        if self.recorder is not None:
            self.recorder.note(dict(result, type="reconfigure"))
        return result

    def dump(self, path: str | None = None, *, reason: str = "requested") -> dict:
        """Write the flight recorder's postmortem bundle to ``path``.

        ``path`` defaults to the configured ``postmortem_path``, then to
        ``postmortem-w<window>.jsonl`` in the working directory.
        """
        if self.recorder is None:
            raise ValueError("no flight recorder attached (recorder=...)")
        path = path or self._postmortem_path or (
            f"postmortem-w{self.window}.jsonl"
        )
        record = self.recorder.dump(
            path,
            reason=reason,
            meta={
                "ls_profile": self.engine.ls_profile.name,
                "feed": self.feed.name,
                "tail": self.tail,
                "policy": self.engine.config.policy,
                "n_servers": self.state.n_servers,
                "window": self.window,
                "stop_reason": self.stop_reason,
            },
        )
        if self.sink is not None:
            self.sink.write(dict(record, type="postmortem"))
            self.sink.flush()
        return record

    def stop(self, reason: str = "requested") -> None:
        """Stop the serve loop at the next window boundary.

        An abnormal stop (``feed_stalled``, ``sigint``) auto-dumps the
        flight recorder when a ``postmortem_path`` is configured, so the
        evidence survives the exit that needs explaining.
        """
        first = self.stop_reason is None
        self.stopped = True
        if first:
            self.stop_reason = reason
        if self.recorder is not None:
            self.recorder.note({"type": "stop", "reason": reason,
                                "window": self.window})
        if (
            first
            and self.recorder is not None
            and self._postmortem_path
            and reason in ("feed_stalled", "sigint")
        ):
            try:
                self.dump(reason=reason)
            except OSError:
                pass  # a failed dump must never block shutdown

    # -- the serve loop ----------------------------------------------------

    def run(
        self,
        *,
        n_windows: int | None = None,
        control=None,
        out=None,
        checkpoint_every: int | None = None,
        pace_seconds: float = 0.0,
        on_window=None,
    ) -> dict:
        """Serve until done/stopped; returns a summary record.

        ``control`` is drained between windows (see
        :mod:`repro.service.control`) with responses written to ``out``;
        ``checkpoint_every`` persists the state every N windows;
        ``pace_seconds`` throttles real time per window (live pacing for
        demos and the CI smoke test — 0 runs flat out); ``on_window``
        (when given) is called as ``on_window(service, record)`` after
        each served window — the ``--dashboard`` repaint hook.  SLO
        alert events are echoed to ``out`` as ``slo_alert`` lines.
        """
        from repro.service.control import handle_command, respond

        def drain() -> None:
            if control is None:
                return
            for request in control.drain():
                response = handle_command(self, request)
                if out is not None:
                    respond(out, response)

        budget = self.remaining if n_windows is None else min(
            int(n_windows), self.remaining
        )
        served = 0
        while served < budget and not self.stopped and not self.done:
            drain()
            if self.stopped:
                break
            for record in self.advance(1):
                served += 1
                if out is not None:
                    respond(out, dict(record, type="fleet_window"))
                for event in self.drain_alerts():
                    if out is not None:
                        respond(out, event)
                if on_window is not None:
                    on_window(self, record)
            if (
                checkpoint_every
                and self.window % checkpoint_every == 0
                and not self.done
            ):
                self.checkpoint()
            if pace_seconds > 0:
                time.sleep(pace_seconds)
        drain()  # answer any trailing control commands before summarizing
        summary = dict(self.status(), type="summary", served_windows=served)
        if self.sink is not None:
            self.sink.write(summary)
            self.sink.flush()
        return summary
