"""Content-addressed fleet checkpoints on the ``repro.engine`` store.

A checkpoint is a flattened :class:`~repro.fleet.engine.FleetState`
(server mode arrays, monitor counters, window cursor, and the timeline's
completed rows) written to the :class:`~repro.engine.store.ResultStore`
under a key derived from the service *identity* (workload profile,
performance payload, fleet config, feed, tail evaluator) plus the window
cursor and a digest of the state itself.

Because every random stream in the fleet engine is a pure function of
``(seed, label, window)`` — there is no carried RNG cursor — the state
arrays alone are the complete checkpoint: a service resumed from one is
bit-identical to an uninterrupted run (``tests/test_service.py``
enforces this).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.engine.store import CACHE_VERSION, ResultStore, default_store
from repro.fleet.engine import FleetState

__all__ = ["CHECKPOINT_VERSION", "checkpoint_key", "load_checkpoint", "save_checkpoint"]

#: Bump to invalidate stored checkpoints after a FleetState layout change.
CHECKPOINT_VERSION = 1


def checkpoint_key(identity: str, state: FleetState) -> str:
    """Deterministic key for ``state`` snapshotted under ``identity``."""
    digest = hashlib.sha256(
        np.asarray(state.to_values(), dtype=np.float64).tobytes()
    ).hexdigest()
    payload = repr((
        CACHE_VERSION,
        CHECKPOINT_VERSION,
        "fleet-checkpoint",
        identity,
        int(state.window),
        digest,
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def save_checkpoint(
    store: ResultStore | None, identity: str, state: FleetState
) -> str:
    """Persist ``state`` and return its content-addressed key."""
    store = store if store is not None else default_store()
    key = checkpoint_key(identity, state)
    store.put(key, tuple(state.to_values()))
    return key


def load_checkpoint(store: ResultStore | None, key: str) -> FleetState:
    """Rehydrate a checkpointed :class:`FleetState` by key."""
    store = store if store is not None else default_store()
    values = store.get(key)
    if values is None:
        raise KeyError(f"no checkpoint stored under key {key!r}")
    return FleetState.from_values(values)
