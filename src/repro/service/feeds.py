"""Pluggable load feeds for the live fleet service.

A :class:`LoadFeed` answers one question per monitoring window: what
cluster-wide load fraction arrived during window ``k``?  Returning ``None``
signals a *gap* (the feed has no data for that window) — the service
degrades gracefully by holding the last observed window, up to a bounded
lag, instead of stalling the simulation.

Three families cover the service's ingestion modes:

* :class:`CurveFeed` — a registered diurnal curve (``"web_search"``,
  ``"flat:<x>"``, or any callable ``hour -> fraction``): the parametric
  feeds the batch entry points already use;
* :class:`PhaseFeed` — phase-structured synthetic traffic (flat / ramp /
  oscillating segments with optional deterministic per-window jitter):
  flash crowds, incident spikes, slow drifts;
* :class:`ReplayFeed` — replay of recorded JSONL window streams (the
  service's own ``fleet_window`` output, or ``service_window`` records
  from :class:`~repro.obs.sampler.ServiceSampler`), closing the
  record-then-replay loop.

All feed randomness derives from ``(seed, "feed", window)`` label paths —
no carried RNG state — so a feed is resumable: a checkpointed service
re-reads exactly the loads an uninterrupted one would have seen.

:func:`replay_curve` additionally exposes a recorded stream as an
``hour -> fraction`` step function, which is how ``"replay:<path>"``
specs become *named load curves* usable by :func:`repro.api.run_day` and
:func:`repro.api.run_fleet` (see
:func:`repro.fleet.policies.resolve_load_curve`).
"""

from __future__ import annotations

import json
import re
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.util.rng import derive_seed

__all__ = [
    "LoadFeed",
    "CurveFeed",
    "Phase",
    "PhaseFeed",
    "ReplayFeed",
    "make_feed",
    "parse_phases",
    "replay_curve",
]

#: JSONL keys accepted as a window's cluster load, in preference order.
_LOAD_KEYS = ("cluster_load", "load", "load_fraction")


class LoadFeed:
    """Base feed: per-window cluster load, ``None`` meaning a gap."""

    name = "abstract"

    def load(self, window: int, hour: float) -> float | None:
        """The load fraction ingested for ``window`` (``None`` = gap)."""
        raise NotImplementedError

    def forecast(self, window: int, hour: float) -> float | None:
        """Projected load for a *future* window (the what-if horizon).

        Defaults to :meth:`load` — deterministic feeds know their future;
        feeds that genuinely cannot see ahead return ``None`` and the
        service falls back to holding the last ingested window.
        """
        return self.load(window, hour)


class CurveFeed(LoadFeed):
    """A named diurnal load curve (or bare callable) as a gapless feed."""

    def __init__(self, load, name: str | None = None):
        from repro.fleet.policies import resolve_load_curve

        resolved_name, fn = resolve_load_curve(load)
        self.name = name or resolved_name or getattr(
            load, "__name__", "custom-curve"
        )
        self._fn = fn

    def load(self, window: int, hour: float) -> float:
        return float(self._fn(hour))


@dataclass(frozen=True)
class Phase:
    """One segment of a phase-structured synthetic feed.

    ``kind`` is ``"flat"`` (constant ``level``), ``"ramp"`` (linear
    ``level -> to_level`` across the phase) or ``"oscillate"`` (swings
    between ``level`` and ``to_level`` with ``period_minutes``).
    """

    kind: str
    hours: float
    level: float
    to_level: float | None = None
    period_minutes: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in ("flat", "ramp", "oscillate"):
            raise ValueError(
                f"phase kind must be flat/ramp/oscillate, got {self.kind!r}"
            )
        if self.hours <= 0:
            raise ValueError("phase duration must be positive")
        if self.level < 0:
            raise ValueError("phase level must be non-negative")
        if self.kind != "flat" and self.to_level is None:
            raise ValueError(f"{self.kind} phase needs a target level")
        if self.period_minutes <= 0:
            raise ValueError("period_minutes must be positive")

    def value(self, offset_hours: float) -> float:
        if self.kind == "flat":
            return self.level
        if self.kind == "ramp":
            fraction = min(max(offset_hours / self.hours, 0.0), 1.0)
            return self.level + (self.to_level - self.level) * fraction
        mid = (self.level + self.to_level) / 2.0
        amplitude = (self.to_level - self.level) / 2.0
        period_hours = self.period_minutes / 60.0
        return mid + amplitude * float(
            np.sin(2.0 * np.pi * offset_hours / period_hours)
        )


#: ``kind@level[-to_level]xHOURS[~PERIODm]`` — e.g. ``ramp@0.3-1.1x2``.
_PHASE_RE = re.compile(
    r"^(?P<kind>[a-z]+)@(?P<level>[0-9.]+)(?:-(?P<to>[0-9.]+))?"
    r"x(?P<hours>[0-9.]+)h?(?:~(?P<period>[0-9.]+)m?)?$"
)


def parse_phases(spec: str) -> tuple[Phase, ...]:
    """Parse a compact phase spec: comma-joined ``kind@level[-to]xHOURS``.

    >>> [p.kind for p in parse_phases("flat@0.3x4,ramp@0.3-1.1x2")]
    ['flat', 'ramp']
    """
    phases = []
    for token in spec.split(","):
        token = token.strip()
        match = _PHASE_RE.match(token)
        if not match:
            raise ValueError(
                f"bad phase segment {token!r}; expected "
                "kind@level[-to_level]xHOURS[~PERIODm], e.g. flat@0.4x6 "
                "or oscillate@0.5-0.9x4~30m"
            )
        phases.append(Phase(
            kind=match.group("kind"),
            hours=float(match.group("hours")),
            level=float(match.group("level")),
            to_level=(
                float(match.group("to")) if match.group("to") else None
            ),
            period_minutes=(
                float(match.group("period")) if match.group("period") else 60.0
            ),
        ))
    if not phases:
        raise ValueError("phase spec is empty")
    return tuple(phases)


class PhaseFeed(LoadFeed):
    """Phase-structured synthetic generator (flash crowds, drifts, spikes).

    Phases repeat cyclically once exhausted, so the feed never runs dry.
    ``jitter`` applies a deterministic per-window multiplicative wobble
    drawn from ``(seed, "feed", window)`` — resumable by construction.
    """

    def __init__(
        self,
        phases,
        *,
        seed: int = 0,
        jitter: float = 0.0,
        name: str | None = None,
    ):
        if isinstance(phases, str):
            phases = parse_phases(phases)
        self.phases = tuple(phases)
        if not self.phases:
            raise ValueError("PhaseFeed needs at least one phase")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.seed = int(seed)
        self.jitter = float(jitter)
        self.name = name or "phases:" + ",".join(
            p.kind for p in self.phases
        )
        self._edges = np.cumsum([p.hours for p in self.phases])

    def load(self, window: int, hour: float) -> float:
        cycle_hours = float(self._edges[-1])
        offset = hour % cycle_hours
        index = int(np.searchsorted(self._edges, offset, side="right"))
        index = min(index, len(self.phases) - 1)
        start = float(self._edges[index - 1]) if index else 0.0
        value = self.phases[index].value(offset - start)
        if self.jitter:
            rng = np.random.default_rng(
                derive_seed(self.seed, "feed", window)
            )
            value *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(float(value), 0.0)


class ReplayFeed(LoadFeed):
    """Replay a recorded JSONL window stream as a live feed.

    Accepts the service's own ``fleet_window`` records, ``service_window``
    records from :class:`~repro.obs.sampler.ServiceSampler`, or any JSONL
    whose objects carry one of ``cluster_load``/``load``/``load_fraction``.
    Windows with no record are *gaps* (``None``) — the service's
    hold-last-window fill and bounded-lag shutdown take over.
    """

    def __init__(
        self,
        by_window: dict[int, float],
        *,
        name: str = "replay",
        window_minutes: float = 10.0,
    ):
        if not by_window:
            raise ValueError("replay feed has no usable records")
        self.name = name
        self.window_minutes = float(window_minutes)
        self._by_window = {int(k): float(v) for k, v in by_window.items()}

    @property
    def n_records(self) -> int:
        return len(self._by_window)

    @property
    def last_window(self) -> int:
        return max(self._by_window)

    def load(self, window: int, hour: float) -> float | None:
        return self._by_window.get(window)

    def curve(self) -> Callable[[float], float]:
        """The recorded stream as an ``hour -> fraction`` step function.

        Holds each record's load until the next record (and the first
        record's load before it), so gaps replay as hold-last fills —
        usable anywhere a load curve is (``run_day``, ``run_fleet``).
        """
        hours = sorted(
            k * self.window_minutes / 60.0 for k in self._by_window
        )
        loads = [
            self._by_window[int(round(h * 60.0 / self.window_minutes))]
            for h in hours
        ]

        def step_curve(hour: float) -> float:
            index = bisect_right(hours, hour) - 1
            return loads[max(index, 0)]

        return step_curve

    @classmethod
    def from_jsonl(
        cls,
        path: str | Path,
        *,
        window_minutes: float = 10.0,
        name: str | None = None,
    ) -> "ReplayFeed":
        by_window: dict[int, float] = {}
        path = Path(path)
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # tolerate torn/foreign lines in shared streams
            if not isinstance(record, dict):
                continue
            load = next(
                (record[k] for k in _LOAD_KEYS if k in record), None
            )
            if load is None:
                continue
            if "window" in record:
                window = int(record["window"])
            elif "index" in record:
                window = int(record["index"])
            elif "hour" in record:
                window = int(
                    float(record["hour"]) * 60.0 / window_minutes
                )
            else:
                continue
            by_window[window] = float(load)
        return cls(
            by_window,
            name=name or f"replay:{path}",
            window_minutes=window_minutes,
        )


def replay_curve(
    path: str | Path, *, window_minutes: float = 10.0
) -> Callable[[float], float]:
    """Load a recorded JSONL stream as an ``hour -> fraction`` curve."""
    return ReplayFeed.from_jsonl(path, window_minutes=window_minutes).curve()


def make_feed(
    spec, *, seed: int = 0, window_minutes: float = 10.0
) -> LoadFeed:
    """Build a feed from a spec.

    Accepts a :class:`LoadFeed` (returned as-is), ``"replay:<path>"``,
    ``"phases:<phase-spec>"``, any registered load-curve name or
    ``"flat:<x>"``, or a bare callable ``hour -> fraction``.
    """
    if isinstance(spec, LoadFeed):
        return spec
    if isinstance(spec, str):
        if spec.startswith("replay:"):
            return ReplayFeed.from_jsonl(
                spec[len("replay:"):], window_minutes=window_minutes
            )
        if spec.startswith("phases:"):
            return PhaseFeed(spec[len("phases:"):], seed=seed)
    return CurveFeed(spec)
