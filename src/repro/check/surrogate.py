"""Held-out accuracy gate for the UIPC surrogate tier.

The surrogate tier (``fidelity="surrogate"``) answers partitioned-ROB
sweeps from a fitted :class:`~repro.cpu.surrogate.UipcSurrogate` and
reports a held-out ``error_bound`` next to every prediction.  That bound
is only useful if it is *honest*, so this module measures it the way a
user would hit it: seeded random held-out configurations — fresh axis
points that were neither anchors nor validation midpoints, evaluated
with fresh derived sampling seeds — compared against the exact sampler.
A case fails when the absolute mean-UIPC error exceeds the fit's own
reported bound.

``stretch-repro check --surrogate`` runs this gate (exit code 1 on any
failure); CI pairs it with a surrogate-tier fig06 smoke run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.cpu.surrogate import (
    UipcFitJob,
    UipcGrid,
    axis_scale,
    family_axis,
    family_config_at,
)
from repro.util.rng import derive_seed

__all__ = [
    "GateResult",
    "SurrogateGateCase",
    "SurrogateGateReport",
    "build_gate_cases",
    "surrogate_accuracy_sweep",
]


@dataclass(frozen=True)
class SurrogateGateCase:
    """One held-out comparison point."""

    kind: str                    # "solo" | "pair"
    workloads: tuple[str, ...]
    x: int                       # thread-0 ROB-axis value (off-anchor)
    seed_index: int              # per-case fresh-seed derivation index


@dataclass(frozen=True)
class GateResult:
    """Outcome of one case: prediction vs exact, per thread."""

    case: SurrogateGateCase
    predicted: tuple[float, ...]
    exact: tuple[float, ...]
    error_bound: float

    @property
    def error(self) -> float:
        return max(abs(p - e) for p, e in zip(self.predicted, self.exact))

    @property
    def ok(self) -> bool:
        return self.error <= self.error_bound

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        names = "+".join(self.case.workloads)
        return (
            f"{status} {self.case.kind} {names} @rob={self.case.x}: "
            f"|err|={self.error:.4f} bound={self.error_bound:.4f}"
        )


@dataclass(frozen=True)
class SurrogateGateReport:
    """Aggregate over all gate cases."""

    results: tuple[GateResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> tuple[GateResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    @property
    def worst_error(self) -> float:
        return max((r.error for r in self.results), default=0.0)

    def summary(self) -> str:
        n = len(self.results)
        bound = max((r.error_bound for r in self.results), default=0.0)
        return (
            f"surrogate gate: {n - len(self.failures)}/{n} held-out configs "
            f"within bound (worst |err| {self.worst_error:.4f}, "
            f"largest bound {bound:.4f})"
        )


def _families(grid: UipcGrid):
    """The stock surrogate families the gate samples from."""
    from repro.experiments.common import (
        BATCH_WORKLOADS,
        LS_WORKLOADS,
        config_all_shared,
        config_solo,
    )

    solo_canon, __ = family_axis("solo", config_solo(192))
    pair_canon, __ = family_axis("pair", config_all_shared())
    return {
        "solo": (solo_canon, tuple(LS_WORKLOADS) + tuple(BATCH_WORKLOADS)),
        "pair": (pair_canon, (tuple(LS_WORKLOADS), tuple(BATCH_WORKLOADS))),
    }


def build_gate_cases(
    n_configs: int = 50,
    seed: int = 0,
    grid: UipcGrid = UipcGrid(),
) -> list[SurrogateGateCase]:
    """Seeded random held-out cases: fresh off-anchor axis points.

    Axis values are drawn uniformly from the fitted range *excluding* the
    calibration anchors and validation midpoints, so every case is a
    configuration the fit has never seen.
    """
    families = _families(grid)
    cases = []
    for i in range(n_configs):
        rng = random.Random(derive_seed(seed, "surrogate-gate", i))
        kind = rng.choice(("solo", "pair"))
        canon, pool = families[kind]
        if kind == "solo":
            workloads: tuple[str, ...] = (rng.choice(pool),)
        else:
            ls_pool, batch_pool = pool
            workloads = (rng.choice(ls_pool), rng.choice(batch_pool))
        scale = axis_scale(kind, canon)
        anchors = grid.anchor_values(kind, scale)
        seen = set(anchors) | set(grid.validation_values(kind, scale))
        x = rng.randrange(anchors[0], anchors[-1] + 1)
        while x in seen:
            x = rng.randrange(anchors[0], anchors[-1] + 1)
        cases.append(SurrogateGateCase(
            kind=kind, workloads=workloads, x=x, seed_index=i,
        ))
    return cases


def surrogate_accuracy_sweep(
    n_configs: int = 50,
    seed: int = 0,
    grid: UipcGrid = UipcGrid(),
    store=None,
    progress=None,
) -> SurrogateGateReport:
    """Gate the surrogate's reported error bound on fresh held-out configs.

    Fits come through the content-addressed store (one
    :class:`~repro.cpu.surrogate.UipcFitJob` per distinct family, shared
    across cases); the exact reference for each case runs with a *fresh*
    derived sampling seed, so the gate also covers seed-to-seed sampling
    variation — the same variation the fit's ``error_margin`` is meant to
    absorb.
    """
    from repro.cpu.surrogate import _mean_job  # shared job constructors
    from repro.engine.store import default_store
    from repro.experiments.common import Fidelity

    if store is None:
        store = default_store()
    sampling = Fidelity.surrogate(seed=42).sampling
    families = _families(grid)

    results = []
    cases = build_gate_cases(n_configs, seed=seed, grid=grid)
    for case in cases:
        canon, __ = families[case.kind]
        job = UipcFitJob(
            kind=case.kind, workloads=case.workloads, config=canon,
            sampling=sampling, grid=grid,
        )
        surrogate = job.load(store.compute(job))
        member = family_config_at(case.kind, canon, case.x)
        fresh = replace(
            sampling,
            seed=derive_seed(seed, "surrogate-gate-exact", case.seed_index),
        )
        exact = store.compute(
            _mean_job(case.kind, case.workloads, member, fresh)
        )
        predicted = tuple(
            surrogate.predict(case.x, thread=t)
            for t in range(len(case.workloads))
        )
        result = GateResult(
            case=case,
            predicted=predicted,
            exact=tuple(float(v) for v in exact),
            error_bound=surrogate.error_bound,
        )
        results.append(result)
        if progress is not None:
            progress(result)
    return SurrogateGateReport(results=tuple(results))
