"""Per-cycle conservation laws for the SMT core (`InvariantChecker`).

The core's hot loop trades clarity for speed (ring-buffer dataflow, idle
fast-forward, interleaved dispatch slots), so its bookkeeping — usage
registers, in-flight queues, trace cursors — is updated in several places
per cycle.  The checker re-derives each quantity from an independent source
after every simulated cycle and asserts they agree:

* **ROB accounting** — ``rob.usage(t) == len(rob_q) + ghosts``: every
  allocated entry is either an in-flight µop awaiting commit or a
  wrong-path ghost awaiting squash.
* **LSQ ⊆ ROB** — ``lsq.usage(t)`` equals the number of memory µops in the
  ROB queue and never exceeds ``rob.usage(t)`` (ghosts never hold LSQ
  entries).
* **Capacity conservation** — ``total_usage == sum(usage)`` and
  ``usage(t) <= limit(t)`` for both structures.
* **Monotonic clock** — the cycle counter only moves forward.
* **Event-respecting jumps** — a multi-cycle clock advance (legacy idle
  fast-forward or a FastCore event-horizon jump) never passes an enabling
  event: no ROB-head completion, front-end refill or squash resolution
  may lie strictly inside the skipped span.
* **Cursor progress** — committed + in-flight (non-ghost) µops account for
  every µop consumed from the trace; nothing is lost or double-counted
  across fast-forwards and squashes.
* **MSHR quotas** — per-thread occupancy never exceeds ``per_thread`` and
  the file never exceeds ``total``.

Attach with ``core.checker = InvariantChecker()`` (or set ``REPRO_CHECK=1``
and let :func:`repro.obs.sampler.attach_core_observers` do it, including in
engine pool workers).  A detached checker costs the core one ``is None``
test per cycle; an attached one costs a few hundred nanoseconds per cycle,
so it is for tests, CI, and debugging — not production sweeps.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["CHECK_ENV", "InvariantChecker", "InvariantViolation"]

#: Environment variable that opts a process (and its pool workers) into
#: invariant checking; read by :func:`repro.obs.sampler.attach_core_observers`.
CHECK_ENV = "REPRO_CHECK"


class InvariantViolation(AssertionError):
    """A per-cycle conservation law failed.

    Subclasses :class:`AssertionError` so differential/CI harnesses that
    treat assertion failures as test failures catch it for free.
    """


class InvariantChecker:
    """Asserts the SMT core's conservation laws after every cycle.

    Parameters
    ----------
    raise_on_violation:
        When True (default) the first violation raises
        :class:`InvariantViolation`.  When False, violations are only
        counted/recorded — useful for surveying a long run.
    registry:
        Metrics registry receiving the ``check.invariants.cycles`` and
        ``check.invariants.violations`` counters.  Defaults to the
        process-wide registry (a no-op unless observability is enabled).
    """

    def __init__(
        self,
        raise_on_violation: bool = True,
        registry: MetricsRegistry | None = None,
    ):
        self.raise_on_violation = raise_on_violation
        registry = registry if registry is not None else get_registry()
        self._cycles = registry.counter("check.invariants.cycles")
        self._violations = registry.counter("check.invariants.violations")
        self.violations: list[str] = []
        # Previous-cycle snapshot for the delta laws (clock, cursor
        # progress); lazily initialized so the checker can be attached to a
        # core in any state, including mid-run.
        self._prev_cycle: int | None = None
        self._prev_progress: list[int] | None = None

    # ------------------------------------------------------------------

    def _fail(self, core, cycle: int, message: str) -> None:
        detail = f"cycle {cycle}: {message}"
        self.violations.append(detail)
        self._violations.inc()
        if self.raise_on_violation:
            raise InvariantViolation(f"{core.__class__.__name__} @ {detail}")

    def on_cycle(self, core, cycle: int) -> None:
        """Verify every invariant against the core's current state."""
        self._cycles.inc()
        fail = self._fail

        # Monotonic clock.
        prev_cycle = self._prev_cycle
        if prev_cycle is not None and cycle <= prev_cycle:
            fail(core, cycle, f"clock moved from {prev_cycle} to {cycle}")
        self._prev_cycle = cycle

        rob, lsq = core.rob, core.lsq
        threads = core._threads
        n = core.n_threads

        # Multi-cycle jumps (idle fast-forward, event-horizon skips) may
        # only land *on* the next enabling event, never beyond it: after a
        # jump from ``prev_cycle`` to ``cycle`` no ROB-head completion
        # (commit is in-order, so only the head enables progress),
        # front-end refill or squash resolution may lie strictly inside the
        # skipped span — each would have changed the machine state
        # mid-jump.  Sampler window edges are deliberately not a law here:
        # the legacy loop takes the sample after landing, which is
        # timing-neutral, while FastCore clamps the jump at the edge.
        if prev_cycle is not None and cycle > prev_cycle + 1:
            for t in range(n):
                ts = threads[t]
                if ts.rob_q and prev_cycle < ts.rob_q[0][0] < cycle:
                    fail(
                        core, cycle,
                        f"jump {prev_cycle}->{cycle} passed thread {t} "
                        f"head completion at {ts.rob_q[0][0]}",
                    )
                if prev_cycle < ts.fe_stall_until < cycle:
                    fail(
                        core, cycle,
                        f"jump {prev_cycle}->{cycle} passed thread {t} "
                        f"front-end refill at {ts.fe_stall_until}",
                    )
                if prev_cycle < ts.squash_at < cycle:
                    fail(
                        core, cycle,
                        f"jump {prev_cycle}->{cycle} passed thread {t} "
                        f"squash resolution at {ts.squash_at}",
                    )

        rob_sum = 0
        lsq_sum = 0
        progress = []
        for t in range(n):
            ts = threads[t]
            rob_usage = rob.usage(t)
            lsq_usage = lsq.usage(t)
            rob_sum += rob_usage
            lsq_sum += lsq_usage

            # ROB accounting: in-flight µops + wrong-path ghosts.
            expected_rob = len(ts.rob_q) + ts.ghosts
            if rob_usage != expected_rob:
                fail(
                    core, cycle,
                    f"thread {t} ROB usage {rob_usage} != "
                    f"{len(ts.rob_q)} in-flight + {ts.ghosts} ghosts",
                )

            # LSQ ⊆ ROB: memory µops in the queue hold the LSQ entries.
            mem_inflight = sum(1 for __, is_mem in ts.rob_q if is_mem)
            if lsq_usage != mem_inflight:
                fail(
                    core, cycle,
                    f"thread {t} LSQ usage {lsq_usage} != "
                    f"{mem_inflight} memory µops in flight",
                )
            if lsq_usage > rob_usage:
                fail(
                    core, cycle,
                    f"thread {t} LSQ usage {lsq_usage} exceeds ROB usage {rob_usage}",
                )

            # Limit registers are never overrun.
            if rob_usage > rob.limits[t]:
                fail(core, cycle,
                     f"thread {t} ROB usage {rob_usage} > limit {rob.limits[t]}")
            if lsq_usage > lsq.limits[t]:
                fail(core, cycle,
                     f"thread {t} LSQ usage {lsq_usage} > limit {lsq.limits[t]}")

            # Cursor progress: committed + in-flight (non-ghost) µops must
            # account for every µop consumed from the trace.  Compared as a
            # delta so measurement-window resets (which rebase
            # ``ts.committed``) re-anchor instead of firing.
            progress.append(
                (ts.cursor.consumed, ts.committed + len(ts.rob_q))
            )

            # MSHR quotas.
            occ = core.hierarchy.mshrs.occupancy(t, cycle)
            if occ > core.hierarchy.mshrs.per_thread:
                fail(
                    core, cycle,
                    f"thread {t} MSHR occupancy {occ} exceeds per-thread "
                    f"quota {core.hierarchy.mshrs.per_thread}",
                )

        # Capacity conservation across threads.
        if rob.total_usage != rob_sum:
            fail(core, cycle,
                 f"ROB total_usage {rob.total_usage} != sum of usages {rob_sum}")
        if lsq.total_usage != lsq_sum:
            fail(core, cycle,
                 f"LSQ total_usage {lsq.total_usage} != sum of usages {lsq_sum}")
        if rob.total_usage > rob.capacity:
            fail(core, cycle,
                 f"ROB total_usage {rob.total_usage} exceeds capacity {rob.capacity}")
        if lsq.total_usage > lsq.capacity:
            fail(core, cycle,
                 f"LSQ total_usage {lsq.total_usage} exceeds capacity {lsq.capacity}")

        total_occ = core.hierarchy.mshrs.total_occupancy(cycle)
        if total_occ > core.hierarchy.mshrs.total:
            fail(core, cycle,
                 f"MSHR file occupancy {total_occ} exceeds capacity "
                 f"{core.hierarchy.mshrs.total}")

        # Delta form of the cursor-progress law: µops consumed since the
        # last check equal µops that entered the accounted set (committed +
        # in flight).  A drop in the accounted set (stats reset rebasing
        # ``committed`` to 0) re-anchors the baseline.
        if self._prev_progress is not None and len(self._prev_progress) == n:
            for t in range(n):
                prev_consumed, prev_accounted = self._prev_progress[t]
                consumed, accounted = progress[t]
                d_consumed = consumed - prev_consumed
                d_accounted = accounted - prev_accounted
                if d_accounted < 0:
                    # committed was rebased (new measurement window);
                    # re-anchor silently.
                    continue
                if d_consumed != d_accounted:
                    fail(
                        core, cycle,
                        f"thread {t} consumed {d_consumed} µops but accounted "
                        f"set grew by {d_accounted} (committed + in-flight)",
                    )
        self._prev_progress = progress

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Forget the previous-cycle snapshot and recorded violations."""
        self._prev_cycle = None
        self._prev_progress = None
        self.violations.clear()
