"""Differential oracle: seeded config sweeps through all core implementations.

Runs the same (workloads, core configuration, instruction budget) through
the three-way engine matrix — :class:`~repro.cpu.fast_core.FastCore` (the
event-skipping default), :class:`~repro.cpu.smt_core.SMTCore` (the
instrumented per-cycle legacy loop) and
:class:`~repro.check.reference.ReferenceCore` (the deliberately naive
oracle) — and demands **bit-identical**
:class:`~repro.cpu.metrics.SimulationResult`\\ s — every counter, cycle count
and histogram bucket.  Because the cores share the microarchitectural
components and differ only in the scheduling loop, any mismatch localizes a
bug to one of the optimized paths (ring-buffer dataflow, idle fast-forward
and event-horizon jumps, slot interleaving, batched gap accounting) or to
the reference itself.

The sweep dimensions cover what the paper's experiments exercise: solo and
colocated runs, partitioned/shared ROB-LSQ with skewed splits, all three
fetch policies, private/shared L1s and branch predictor, prefetcher on/off,
and mid-run ``set_partitions`` mode switches (the drain path).
:func:`build_stress_cases` adds configurations aimed squarely at the
event-skipping machinery: back-to-back mode switches, compute-bound runs
whose idle gaps are all zero-length, measurement windows that open at cycle
0, and MSHR-starved memory-bound pairs that saturate the miss file.

Entry points: :func:`differential_sweep` (used by ``stretch-repro check``
and the CI smoke) and :func:`run_case`/:func:`compare_results` for tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.check.invariants import InvariantChecker
from repro.check.reference import ReferenceCore
from repro.cpu.config import CacheConfig, CoreConfig, PartitionPolicy
from repro.cpu.fast_core import FastCore
from repro.cpu.metrics import SimulationResult
from repro.cpu.smt_core import SMTCore
from repro.obs.metrics import get_registry
from repro.workloads.generator import generate_trace
from repro.workloads.registry import all_profiles, get_profile

__all__ = [
    "DifferentialCase",
    "SweepReport",
    "build_cases",
    "build_stress_cases",
    "compare_results",
    "differential_sweep",
    "run_case",
]

#: ROB splits the sweep draws from (thread0, thread1); all sum to <= 192.
_ROB_SPLITS = ((96, 96), (56, 136), (136, 56), (32, 160), (160, 32), (64, 64))

#: Safety net so a pathological case fails loudly instead of hanging.
_MAX_CYCLES = 2_000_000


@dataclass(frozen=True)
class DifferentialCase:
    """One seeded configuration to push through all three engines."""

    case_id: int
    workloads: tuple[str, ...]
    trace_seeds: tuple[int, ...]
    trace_length: int
    config: CoreConfig
    warmup: int
    measure: int
    require_all: bool
    #: Optional mid-run mode switch: (rob_limits, lsq_limits) applied via
    #: ``set_partitions`` between two measured windows (exercises the
    #: drain path).  Only generated for two-thread partitioned cases.
    mode_switch: tuple[tuple[int, int], tuple[int, int]] | None = None
    #: Further switches applied back-to-back after ``mode_switch``, each
    #: followed by its own measured window — stresses repeated drain/jump
    #: interleavings in the event-skipping path.
    extra_switches: tuple[tuple[tuple[int, int], tuple[int, int]], ...] = ()
    #: Label distinguishing stress families in reports (empty for the
    #: random sweep).
    tag: str = ""

    def describe(self) -> str:
        parts = [
            "+".join(self.workloads),
            f"rob={self.config.rob_limits}"
            if self.config.rob_policy is PartitionPolicy.PARTITIONED
            else "rob=shared",
            self.config.fetch_policy,
        ]
        if self.mode_switch is not None:
            parts.append(f"switch->{self.mode_switch[0]}")
        if self.extra_switches:
            parts.append(f"+{len(self.extra_switches)} switches")
        if self.tag:
            parts.append(f"[{self.tag}]")
        return f"case {self.case_id}: " + " ".join(parts)

    @property
    def switches(self) -> tuple[tuple[tuple[int, int], tuple[int, int]], ...]:
        """All mode switches in application order."""
        head = () if self.mode_switch is None else (self.mode_switch,)
        return head + self.extra_switches


@dataclass
class SweepReport:
    """Outcome of a differential sweep."""

    total: int = 0
    mismatches: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return self.total - len(self.mismatches) - len(self.errors)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.errors

    def summary(self) -> str:
        return (
            f"{self.passed}/{self.total} cases bit-identical, "
            f"{len(self.mismatches)} mismatches, {len(self.errors)} errors"
        )


def build_cases(
    n: int, seed: int = 0, profiles: tuple[str, ...] | None = None
) -> list[DifferentialCase]:
    """Generate ``n`` seeded random configurations for the sweep."""
    rng = random.Random(seed)
    names = tuple(profiles) if profiles is not None else tuple(sorted(all_profiles()))
    cases = []
    for case_id in range(n):
        pair = rng.random() < 0.75
        workloads = tuple(rng.choice(names) for _ in range(2 if pair else 1))
        trace_seeds = tuple(rng.randrange(1 << 30) for _ in workloads)

        config = CoreConfig(
            fetch_policy=rng.choice(("icount", "icount", "round_robin", "ratio")),
            fetch_ratio=(1, rng.randint(1, 4)),
            private_l1i=rng.random() < 0.25,
            private_l1d=rng.random() < 0.25,
            private_bp=rng.random() < 0.25,
            enable_prefetcher=rng.random() < 0.75,
        )
        shared = pair and rng.random() < 0.15
        if shared:
            config = replace(config, rob_policy=PartitionPolicy.SHARED)
        else:
            config = config.with_rob_partition(*rng.choice(_ROB_SPLITS))

        mode_switch = None
        if pair and not shared and rng.random() < 0.2:
            rob = rng.choice(_ROB_SPLITS)
            switched = config.with_rob_partition(*rob)
            mode_switch = (switched.rob_limits, switched.lsq_limits)

        cases.append(
            DifferentialCase(
                case_id=case_id,
                workloads=workloads,
                trace_seeds=trace_seeds,
                trace_length=rng.randrange(2000, 5000),
                config=config,
                warmup=rng.choice((0, 200, 400)),
                measure=rng.randrange(200, 500),
                require_all=pair and rng.random() < 0.5,
                mode_switch=mode_switch,
            )
        )
    return cases


def build_stress_cases(seed: int = 0) -> list[DifferentialCase]:
    """Handcrafted configurations that stress the event-skipping machinery.

    Four families, each the worst case for one FastCore mechanism:

    * ``switch-storm`` — back-to-back ``set_partitions`` mode switches with
      short measured windows between them, so drains and jumps interleave.
    * ``no-idle`` — compute-bound pairs whose completions land every cycle:
      every candidate jump is zero-length and the loop must still step.
    * ``cycle0`` — no warmup and single-digit instruction budgets, so the
      measurement window opens at cycle 0 and the first completions land
      on the window edge.
    * ``mshr-sat`` — memory-bound pairs against a 2-entry MSHR file
      (1 per thread), forcing the structural-stall fallback path and
      maximum-occupancy gap accounting.
    """
    rng = random.Random(seed)
    cases = []

    def add(workloads, config, *, warmup, measure, require_all=True,
            mode_switch=None, extra_switches=(), tag="", trace_length=3000):
        cases.append(
            DifferentialCase(
                case_id=1000 + len(cases),
                workloads=workloads,
                trace_seeds=tuple(rng.randrange(1 << 30) for _ in workloads),
                trace_length=trace_length,
                config=config,
                warmup=warmup,
                measure=measure,
                require_all=require_all and len(workloads) == 2,
                mode_switch=mode_switch,
                extra_switches=extra_switches,
                tag=tag,
            )
        )

    # Back-to-back mode switches: drain, re-partition, drain again.
    splits = ((96, 96), (32, 160), (160, 32), (56, 136))
    for wl in (("mcf", "omnetpp"), ("web_search", "milc")):
        base = CoreConfig().with_rob_partition(*splits[0])
        seq = tuple(
            (CoreConfig().with_rob_partition(*s).rob_limits,
             CoreConfig().with_rob_partition(*s).lsq_limits)
            for s in splits[1:]
        )
        add(wl, base, warmup=150, measure=120, mode_switch=seq[0],
            extra_switches=seq[1:], tag="switch-storm")

    # Zero-length idle gaps: compute-bound, completions every cycle.
    for wl in (("namd", "gamess"), ("povray",), ("calculix", "gromacs")):
        add(wl, CoreConfig(), warmup=100, measure=400, tag="no-idle")

    # Cycle-0 completions: windows that open at cycle 0.
    for wl, measure in ((("mcf",), 1), (("mcf", "lbm"), 2),
                        (("web_search", "zeusmp"), 5)):
        add(wl, CoreConfig(), warmup=0, measure=measure, tag="cycle0")

    # MSHR saturation: memory-bound pairs vs a starved miss file.
    starved = replace(
        CoreConfig(),
        dcache=CacheConfig(mshrs=2, mshrs_per_thread=1),
        enable_prefetcher=False,
    )
    for wl in (("mcf", "mcf"), ("lbm", "milc"), ("mcf", "libquantum")):
        add(wl, starved, warmup=100, measure=250, tag="mshr-sat")
    # ... and one with a mode switch while the file is saturated.
    add(("mcf", "milc"), starved.with_rob_partition(56, 136),
        warmup=100, measure=200,
        mode_switch=(CoreConfig().with_rob_partition(160, 32).rob_limits,
                     CoreConfig().with_rob_partition(160, 32).lsq_limits),
        tag="mshr-sat")

    return cases


def compare_results(a: SimulationResult, b: SimulationResult) -> list[str]:
    """Field-by-field exact comparison; returns human-readable differences."""
    diffs = []
    if a.cycles != b.cycles:
        diffs.append(f"cycles: {a.cycles} != {b.cycles}")
    for x, y in zip(a.threads, b.threads):
        for name in x.__dataclass_fields__:
            va, vb = getattr(x, name), getattr(y, name)
            if va != vb:
                diffs.append(f"thread {x.thread} {name}: {va!r} != {vb!r}")
    return diffs


def _make_core(cls, case: DifferentialCase, check_invariants: bool):
    traces = tuple(
        generate_trace(get_profile(name), case.trace_length, seed=s)
        for name, s in zip(case.workloads, case.trace_seeds)
    )
    core = cls(case.config, traces)
    if check_invariants:
        core.checker = InvariantChecker()
    return core


#: Engine matrix the sweep proves bit-identical, fastest first.
_ENGINES = (("fast", FastCore), ("smt", SMTCore), ("ref", ReferenceCore))


def run_case(
    case: DifferentialCase, check_invariants: bool = False
) -> list[str]:
    """Run one case through all three cores; return the list of differences.

    Comparisons are chained (``fast`` vs ``smt``, ``smt`` vs ``ref``) so a
    report names the engine pair that disagrees and therefore which loop to
    suspect.
    """
    diffs = []
    results = {}
    for key, cls in _ENGINES:
        core = _make_core(cls, case, check_invariants)
        windows = [
            core.run(
                case.measure,
                warmup_instructions=case.warmup,
                max_cycles=_MAX_CYCLES,
                require_all_threads=case.require_all,
            )
        ]
        for switch in case.switches:
            core.set_partitions(*switch)
            windows.append(
                core.run(
                    case.measure,
                    max_cycles=_MAX_CYCLES,
                    require_all_threads=case.require_all,
                )
            )
        results[key] = (windows, core.cycle)

    for (ka, _), (kb, _) in zip(_ENGINES, _ENGINES[1:]):
        windows_a, cycle_a = results[ka]
        windows_b, cycle_b = results[kb]
        for i, (ra, rb) in enumerate(zip(windows_a, windows_b)):
            for diff in compare_results(ra, rb):
                prefix = f"window {i} " if len(windows_a) > 1 else ""
                diffs.append(f"{ka}/{kb} {prefix}{diff}")
        if cycle_a != cycle_b:
            diffs.append(f"{ka}/{kb} final core cycle: {cycle_a} != {cycle_b}")
    return diffs


def differential_sweep(
    cases: list[DifferentialCase],
    check_invariants: bool = False,
    progress=None,
) -> SweepReport:
    """Run every case; report mismatches via the metrics registry and return."""
    registry = get_registry()
    ran = registry.counter("check.differential.cases")
    failed = registry.counter("check.differential.mismatches")
    report = SweepReport()
    for case in cases:
        report.total += 1
        ran.inc()
        try:
            diffs = run_case(case, check_invariants=check_invariants)
        except Exception as exc:  # noqa: BLE001 - survey must see every case
            failed.inc()
            report.errors.append(f"{case.describe()}: {type(exc).__name__}: {exc}")
            continue
        if diffs:
            failed.inc()
            report.mismatches.append(f"{case.describe()}: " + "; ".join(diffs))
        if progress is not None:
            progress(case, diffs)
    return report
