"""Differential oracle: seeded config sweeps through both core implementations.

Runs the same (workloads, core configuration, instruction budget) through
:class:`~repro.cpu.smt_core.SMTCore` and
:class:`~repro.check.reference.ReferenceCore` and demands **bit-identical**
:class:`~repro.cpu.metrics.SimulationResult`\\ s — every counter, cycle count
and histogram bucket.  Because the two cores share the microarchitectural
components and differ only in the scheduling loop, any mismatch localizes a
bug to the optimized hot path (ring-buffer dataflow, idle fast-forward,
slot interleaving) or to the reference itself.

The sweep dimensions cover what the paper's experiments exercise: solo and
colocated runs, partitioned/shared ROB-LSQ with skewed splits, all three
fetch policies, private/shared L1s and branch predictor, prefetcher on/off,
and mid-run ``set_partitions`` mode switches (the drain path).

Entry points: :func:`differential_sweep` (used by ``stretch-repro check``
and the CI smoke) and :func:`run_case`/:func:`compare_results` for tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.check.invariants import InvariantChecker
from repro.check.reference import ReferenceCore
from repro.cpu.config import CoreConfig, PartitionPolicy
from repro.cpu.metrics import SimulationResult
from repro.cpu.smt_core import SMTCore
from repro.obs.metrics import get_registry
from repro.workloads.generator import generate_trace
from repro.workloads.registry import all_profiles, get_profile

__all__ = [
    "DifferentialCase",
    "SweepReport",
    "build_cases",
    "compare_results",
    "differential_sweep",
    "run_case",
]

#: ROB splits the sweep draws from (thread0, thread1); all sum to <= 192.
_ROB_SPLITS = ((96, 96), (56, 136), (136, 56), (32, 160), (160, 32), (64, 64))

#: Safety net so a pathological case fails loudly instead of hanging.
_MAX_CYCLES = 2_000_000


@dataclass(frozen=True)
class DifferentialCase:
    """One seeded configuration to push through both cores."""

    case_id: int
    workloads: tuple[str, ...]
    trace_seeds: tuple[int, ...]
    trace_length: int
    config: CoreConfig
    warmup: int
    measure: int
    require_all: bool
    #: Optional mid-run mode switch: (rob_limits, lsq_limits) applied via
    #: ``set_partitions`` between two measured windows (exercises the
    #: drain path).  Only generated for two-thread partitioned cases.
    mode_switch: tuple[tuple[int, int], tuple[int, int]] | None = None

    def describe(self) -> str:
        parts = [
            "+".join(self.workloads),
            f"rob={self.config.rob_limits}"
            if self.config.rob_policy is PartitionPolicy.PARTITIONED
            else "rob=shared",
            self.config.fetch_policy,
        ]
        if self.mode_switch is not None:
            parts.append(f"switch->{self.mode_switch[0]}")
        return f"case {self.case_id}: " + " ".join(parts)


@dataclass
class SweepReport:
    """Outcome of a differential sweep."""

    total: int = 0
    mismatches: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return self.total - len(self.mismatches) - len(self.errors)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.errors

    def summary(self) -> str:
        return (
            f"{self.passed}/{self.total} cases bit-identical, "
            f"{len(self.mismatches)} mismatches, {len(self.errors)} errors"
        )


def build_cases(
    n: int, seed: int = 0, profiles: tuple[str, ...] | None = None
) -> list[DifferentialCase]:
    """Generate ``n`` seeded random configurations for the sweep."""
    rng = random.Random(seed)
    names = tuple(profiles) if profiles is not None else tuple(sorted(all_profiles()))
    cases = []
    for case_id in range(n):
        pair = rng.random() < 0.75
        workloads = tuple(rng.choice(names) for _ in range(2 if pair else 1))
        trace_seeds = tuple(rng.randrange(1 << 30) for _ in workloads)

        config = CoreConfig(
            fetch_policy=rng.choice(("icount", "icount", "round_robin", "ratio")),
            fetch_ratio=(1, rng.randint(1, 4)),
            private_l1i=rng.random() < 0.25,
            private_l1d=rng.random() < 0.25,
            private_bp=rng.random() < 0.25,
            enable_prefetcher=rng.random() < 0.75,
        )
        shared = pair and rng.random() < 0.15
        if shared:
            config = replace(config, rob_policy=PartitionPolicy.SHARED)
        else:
            config = config.with_rob_partition(*rng.choice(_ROB_SPLITS))

        mode_switch = None
        if pair and not shared and rng.random() < 0.2:
            rob = rng.choice(_ROB_SPLITS)
            switched = config.with_rob_partition(*rob)
            mode_switch = (switched.rob_limits, switched.lsq_limits)

        cases.append(
            DifferentialCase(
                case_id=case_id,
                workloads=workloads,
                trace_seeds=trace_seeds,
                trace_length=rng.randrange(2000, 5000),
                config=config,
                warmup=rng.choice((0, 200, 400)),
                measure=rng.randrange(200, 500),
                require_all=pair and rng.random() < 0.5,
                mode_switch=mode_switch,
            )
        )
    return cases


def compare_results(a: SimulationResult, b: SimulationResult) -> list[str]:
    """Field-by-field exact comparison; returns human-readable differences."""
    diffs = []
    if a.cycles != b.cycles:
        diffs.append(f"cycles: {a.cycles} != {b.cycles}")
    for x, y in zip(a.threads, b.threads):
        for name in x.__dataclass_fields__:
            va, vb = getattr(x, name), getattr(y, name)
            if va != vb:
                diffs.append(f"thread {x.thread} {name}: {va!r} != {vb!r}")
    return diffs


def _make_core(cls, case: DifferentialCase, check_invariants: bool):
    traces = tuple(
        generate_trace(get_profile(name), case.trace_length, seed=s)
        for name, s in zip(case.workloads, case.trace_seeds)
    )
    core = cls(case.config, traces)
    if check_invariants:
        core.checker = InvariantChecker()
    return core


def run_case(
    case: DifferentialCase, check_invariants: bool = False
) -> list[str]:
    """Run one case through both cores; return the list of differences."""
    diffs = []
    results = {}
    for key, cls in (("smt", SMTCore), ("ref", ReferenceCore)):
        core = _make_core(cls, case, check_invariants)
        windows = [
            core.run(
                case.measure,
                warmup_instructions=case.warmup,
                max_cycles=_MAX_CYCLES,
                require_all_threads=case.require_all,
            )
        ]
        if case.mode_switch is not None:
            core.set_partitions(*case.mode_switch)
            windows.append(
                core.run(
                    case.measure,
                    max_cycles=_MAX_CYCLES,
                    require_all_threads=case.require_all,
                )
            )
        results[key] = (windows, core.cycle)

    smt_windows, smt_cycle = results["smt"]
    ref_windows, ref_cycle = results["ref"]
    for i, (ra, rb) in enumerate(zip(smt_windows, ref_windows)):
        for diff in compare_results(ra, rb):
            prefix = f"window {i} " if len(smt_windows) > 1 else ""
            diffs.append(prefix + diff)
    if smt_cycle != ref_cycle:
        diffs.append(f"final core cycle: {smt_cycle} != {ref_cycle}")
    return diffs


def differential_sweep(
    cases: list[DifferentialCase],
    check_invariants: bool = False,
    progress=None,
) -> SweepReport:
    """Run every case; report mismatches via the metrics registry and return."""
    registry = get_registry()
    ran = registry.counter("check.differential.cases")
    failed = registry.counter("check.differential.mismatches")
    report = SweepReport()
    for case in cases:
        report.total += 1
        ran.inc()
        try:
            diffs = run_case(case, check_invariants=check_invariants)
        except Exception as exc:  # noqa: BLE001 - survey must see every case
            failed.inc()
            report.errors.append(f"{case.describe()}: {type(exc).__name__}: {exc}")
            continue
        if diffs:
            failed.inc()
            report.mismatches.append(f"{case.describe()}: " + "; ".join(diffs))
        if progress is not None:
            progress(case, diffs)
    return report
