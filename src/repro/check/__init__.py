"""Correctness harness for the timing model (``repro.check``).

The optimized :class:`~repro.cpu.smt_core.SMTCore` hot loop (ring-buffer
dataflow, idle fast-forward, slot interleaving) is what every figure in the
reproduction stands on, so this package gives it three independent oracles:

* :mod:`repro.check.invariants` — an :class:`InvariantChecker` attachable to
  a core (``core.checker = InvariantChecker()``) that asserts per-cycle
  conservation laws: ROB/LSQ usage-register accounting, monotonic clock,
  trace-cursor progress, MSHR quotas.  Zero-cost when detached.
* :mod:`repro.check.reference` — :class:`ReferenceCore`, a deliberately
  simple cycle-by-cycle re-implementation of the dual-thread timing model
  (no ring masks, no idle fast-forward) that must produce **bit-identical**
  :class:`~repro.cpu.metrics.SimulationResult`\\ s.
* :mod:`repro.check.differential` — seeded random sweeps through all three
  engines (:class:`~repro.cpu.fast_core.FastCore`, the legacy ``SMTCore``
  and the ``ReferenceCore`` oracle — ``stretch-repro check``), plus
  targeted stress cases (:func:`build_stress_cases`): the regression gate
  for every future hot-path optimization.
* :mod:`repro.check.metamorphic` — paper-derived relations between runs
  (ROB-partition monotonicity, co-runner interference direction, Stretch
  mode ordering) that hold regardless of absolute UIPC values.
* :mod:`repro.check.surrogate` — the accuracy gate for the surrogate
  fidelity tier (``stretch-repro check --surrogate``): fresh held-out
  configurations with fresh seeds must land within each fit's reported
  ``error_bound``.

Set ``REPRO_CHECK=1`` (or pass ``--check`` to ``stretch-repro``) and every
core built by the sampling entry points — including engine pool workers —
gets an invariant checker attached automatically.
"""

from repro.check.differential import (
    DifferentialCase,
    SweepReport,
    build_cases,
    build_stress_cases,
    compare_results,
    differential_sweep,
    run_case,
)
from repro.check.invariants import CHECK_ENV, InvariantChecker, InvariantViolation
from repro.check.metamorphic import (
    RelationReport,
    check_corunner_never_helps,
    check_mode_ordering,
    check_rob_monotonicity,
    run_metamorphic_suite,
)
from repro.check.reference import ReferenceCore
from repro.check.surrogate import (
    GateResult,
    SurrogateGateCase,
    SurrogateGateReport,
    build_gate_cases,
    surrogate_accuracy_sweep,
)

__all__ = [
    "CHECK_ENV",
    "DifferentialCase",
    "GateResult",
    "InvariantChecker",
    "InvariantViolation",
    "ReferenceCore",
    "RelationReport",
    "SurrogateGateCase",
    "SurrogateGateReport",
    "SweepReport",
    "build_cases",
    "build_gate_cases",
    "build_stress_cases",
    "check_corunner_never_helps",
    "check_mode_ordering",
    "check_rob_monotonicity",
    "compare_results",
    "differential_sweep",
    "run_case",
    "run_metamorphic_suite",
    "surrogate_accuracy_sweep",
]
