"""A deliberately simple reference implementation of the SMT timing model.

:class:`ReferenceCore` re-implements the dual-thread out-of-order timing
model of :class:`repro.cpu.smt_core.SMTCore` as a plain cycle-by-cycle loop:

* **no ring buffer** — producer completion times live in an ordinary dict
  keyed by µop sequence number (dependency distances are clamped to
  ``MAX_DEP_DISTANCE`` = 256 by the trace generator, so a 257-entry window
  is exact);
* **no idle fast-forward** — the clock always advances by one cycle, so
  stall counters and the MLP histogram are accumulated the obvious way,
  once per cycle;
* **no hoisted locals or profiling hooks** — the loop reads attributes
  directly and does nothing clever.

It reuses the same microarchitectural components (partitioned ROB/LSQ,
memory hierarchy, branch predictor, fetch policies, trace cursors), so the
engines differ only in the scheduling loop — exactly the code the ring
masks, fast-forward, and :class:`~repro.cpu.fast_core.FastCore`'s
event-horizon jumps optimize.  The contract, enforced by
:mod:`repro.check.differential` and ``tests/test_check_reference.py``, is
**bit-identical** :class:`~repro.cpu.metrics.SimulationResult`\\ s across
all three engines: every counter, every cycle count, every histogram
bucket.  Any future hot-path optimization must preserve that equivalence.

An :class:`~repro.check.invariants.InvariantChecker` can be attached to a
``ReferenceCore`` too (``core.checker = ...``), which cross-validates the
checker itself against an independent implementation.
"""

from __future__ import annotations

from repro.cpu.branch import HybridBranchPredictor
from repro.cpu.config import CoreConfig, PartitionPolicy
from repro.cpu.fetch import make_fetch_policy
from repro.cpu.isa import EXEC_LATENCY, OpClass
from repro.cpu.metrics import MLP_BUCKETS, SimulationResult, ThreadResult
from repro.cpu.rob import PartitionedResource
from repro.cpu.trace import Trace, TraceCursor
from repro.cpu.uncore import MemoryHierarchy

__all__ = ["ReferenceCore"]

#: Dependency distances are clamped to this by the trace generator; the
#: completion window must retain at least this many past µops.
_DEP_WINDOW = 256


class _RefThread:
    """Per-thread state, stored plainly (dict of completions, list queue)."""

    def __init__(self, cursor: TraceCursor):
        self.cursor = cursor
        # seq -> completion cycle for the last _DEP_WINDOW µops.
        self.completions: dict[int, int] = {}
        self.seq = 0
        self.rob_q: list[tuple[int, bool]] = []
        self.fe_stall_until = 0
        self.last_fetch_block = -1
        self.committed = 0
        self.branches = 0
        self.mispredicts = 0
        self.stall_rob = 0
        self.stall_lsq = 0
        self.ghosts = 0
        self.squash_at = 0

    def reset_stats(self) -> None:
        self.committed = 0
        self.branches = 0
        self.mispredicts = 0
        self.stall_rob = 0
        self.stall_lsq = 0


class ReferenceCore:
    """Unoptimized per-cycle twin of :class:`~repro.cpu.smt_core.SMTCore`."""

    def __init__(self, config: CoreConfig, traces: tuple[Trace, ...]):
        if not 1 <= len(traces) <= 2:
            raise ValueError("ReferenceCore supports one or two hardware threads")
        self.config = config
        self.n_threads = len(traces)
        self.traces = traces
        self._threads = [_RefThread(TraceCursor(t)) for t in traces]

        rob_limits, lsq_limits = self._effective_limits(config)
        self.rob = PartitionedResource("ROB", config.rob_entries, rob_limits)
        self.lsq = PartitionedResource("LSQ", config.lsq_entries, lsq_limits)
        self.hierarchy = MemoryHierarchy(config, n_threads=max(self.n_threads, 2))
        self.predictor = HybridBranchPredictor(
            config.branch, n_threads=max(self.n_threads, 2), private=config.private_bp
        )
        self.policy = make_fetch_policy(config.fetch_policy, config.fetch_ratio)
        self.cycle = 0
        self._mlp_hist = [[0] * (MLP_BUCKETS + 1) for _ in range(self.n_threads)]
        self.partition_switches = 0
        #: Optional :class:`repro.check.invariants.InvariantChecker`.
        self.checker = None

    def _effective_limits(self, config: CoreConfig) -> tuple[tuple[int, ...], tuple[int, ...]]:
        n = self.n_threads if self.n_threads == 2 else 2
        if config.rob_policy is PartitionPolicy.SHARED:
            rob = tuple([config.rob_entries] * n)
            lsq = tuple([config.lsq_entries] * n)
        else:
            rob = tuple(config.rob_limits[:n])
            lsq = tuple(config.lsq_limits[:n])
        return rob, lsq

    # ------------------------------------------------------------------
    # Stretch hardware-software interface
    # ------------------------------------------------------------------

    def set_partitions(self, rob_limits: tuple[int, int], lsq_limits: tuple[int, int]) -> None:
        """Reprogram the ROB/LSQ limit registers (a Stretch mode change)."""
        self._drain()
        self.rob.set_limits(rob_limits)
        self.lsq.set_limits(lsq_limits)
        flush_done = self.cycle + self.config.pipeline_flush_cycles
        for ts in self._threads:
            ts.fe_stall_until = max(ts.fe_stall_until, flush_done)
        self.partition_switches += 1

    def _drain(self) -> None:
        """Retire all in-flight µops without dispatching, one cycle at a time."""
        width = self.config.width
        for t, ts in enumerate(self._threads):
            for __ in range(ts.ghosts):
                self.rob.release(t)
            ts.ghosts = 0
        while any(ts.rob_q for ts in self._threads):
            budget = width
            for t, ts in enumerate(self._threads):
                q = ts.rob_q
                while q and budget and q[0][0] <= self.cycle:
                    __, is_mem = q.pop(0)
                    self.rob.release(t)
                    if is_mem:
                        self.lsq.release(t)
                    ts.committed += 1
                    budget -= 1
            if any(ts.rob_q for ts in self._threads):
                self.cycle += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        instructions: int,
        warmup_instructions: int = 0,
        max_cycles: int | None = None,
        require_all_threads: bool = False,
    ) -> SimulationResult:
        """Simulate until thread(s) commit ``instructions`` measured µops.

        Mirrors :meth:`SMTCore.run` (same window semantics, same warmup
        behavior) so results are directly comparable.
        """
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        if warmup_instructions:
            self._simulate_until(warmup_instructions, max_cycles=None,
                                 require_all=True)
        self._reset_measurement()
        start_cycle = self.cycle
        self._simulate_until(instructions, max_cycles=max_cycles,
                             require_all=require_all_threads)
        cycles = self.cycle - start_cycle
        return self._collect(cycles)

    def _reset_measurement(self) -> None:
        for ts in self._threads:
            ts.reset_stats()
        self.hierarchy.reset_stats()
        self.predictor.reset_stats()
        self.rob.reset_stats()
        self._mlp_hist = [[0] * (MLP_BUCKETS + 1) for _ in range(self.n_threads)]

    def _collect(self, cycles: int) -> SimulationResult:
        results = []
        h = self.hierarchy
        for t, ts in enumerate(self._threads):
            results.append(
                ThreadResult(
                    thread=t,
                    workload=self.traces[t].name,
                    instructions=ts.committed,
                    cycles=cycles,
                    loads=h.loads[t],
                    stores=h.stores[t],
                    l1d_misses=h.l1d_misses[t],
                    l1i_misses=h.l1i_misses[t],
                    branches=ts.branches,
                    branch_mispredicts=ts.mispredicts,
                    rob_limit=self.rob.limits[t],
                    lsq_limit=self.lsq.limits[t],
                    dispatch_stall_rob=ts.stall_rob,
                    dispatch_stall_lsq=ts.stall_lsq,
                    mlp_cycles=list(self._mlp_hist[t]),
                )
            )
        return SimulationResult(cycles=cycles, threads=tuple(results))

    def _simulate_until(
        self, target_committed: int, max_cycles: int | None, require_all: bool = False
    ) -> None:
        """Advance the core one cycle at a time, no shortcuts."""
        threads = self._threads
        n = self.n_threads
        width = self.config.width
        flush_penalty = self.config.pipeline_flush_cycles
        max_branches = self.config.max_branches_per_fetch
        rob = self.rob
        lsq = self.lsq
        hierarchy = self.hierarchy
        mshrs = hierarchy.mshrs
        deadline = None if max_cycles is None else self.cycle + max_cycles

        base_committed = [ts.committed for ts in threads]
        check = all if require_all else any
        cycle = self.cycle

        lat_alu = EXEC_LATENCY[OpClass.INT_ALU]
        lat_mul = EXEC_LATENCY[OpClass.INT_MUL]
        lat_fp = EXEC_LATENCY[OpClass.FP]
        lat_store = EXEC_LATENCY[OpClass.STORE]
        lat_branch = EXEC_LATENCY[OpClass.BRANCH]
        op_load = int(OpClass.LOAD)
        op_store = int(OpClass.STORE)
        op_branch = int(OpClass.BRANCH)
        op_mul = int(OpClass.INT_MUL)
        op_fp = int(OpClass.FP)

        while True:
            done = check(
                ts.committed - base >= target_committed
                for ts, base in zip(threads, base_committed)
            )
            if done:
                break
            if deadline is not None and cycle >= deadline:
                self.cycle = cycle
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} before committing "
                    f"{target_committed} µops per thread"
                )

            # ---- wrong-path squash: mispredicted branch resolved ----
            for t in range(n):
                ts = threads[t]
                if ts.squash_at and cycle >= ts.squash_at:
                    for __ in range(ts.ghosts):
                        rob.release(t)
                    ts.ghosts = 0
                    refill = ts.squash_at + flush_penalty
                    if ts.fe_stall_until < refill:
                        ts.fe_stall_until = refill
                    ts.squash_at = 0

            # ---- thread selection: one policy decision per cycle ----
            if n == 2:
                order = self.policy.order(cycle, [rob.usage(0), rob.usage(1)])
            else:
                order = (0, 0)

            # ---- commit: policy-selected thread first, shared width ----
            budget = width
            first = order[0]
            for t in (first, 1 - first)[:n]:
                ts = threads[t]
                q = ts.rob_q
                while q and budget and q[0][0] <= cycle:
                    __, is_mem = q.pop(0)
                    rob.release(t)
                    if is_mem:
                        lsq.release(t)
                    ts.committed += 1
                    budget -= 1

            # ---- fetch/dispatch: interleaved slots ----
            budget = width
            slots_alu = self.config.int_alus
            slots_mul = self.config.int_muls
            slots_fpu = self.config.fpus
            slots_lsu = self.config.lsus
            active = [False, False]
            branch_quota = [max_branches, max_branches]
            for t in order[:n]:
                active[t] = threads[t].fe_stall_until <= cycle
            turn = 0
            whole_cycle = self.policy.whole_cycle
            while budget and (active[0] or active[1]):
                t = order[0] if whole_cycle else order[turn & 1]
                if not active[t]:
                    t = order[1] if whole_cycle else order[1 - (turn & 1)]
                turn += 1
                ts = threads[t]
                if ts.squash_at > cycle:
                    # Wrong-path (ghost) dispatch.
                    if not rob.can_allocate(t):
                        active[t] = False
                        continue
                    rob.allocate(t)
                    ts.ghosts += 1
                    budget -= 1
                    continue
                cursor = ts.cursor
                i = cursor.index
                op = cursor.op[i]
                if not rob.can_allocate(t):
                    ts.stall_rob += 1
                    active[t] = False
                    continue
                is_mem = op == op_load or op == op_store
                if is_mem:
                    if not lsq.can_allocate(t):
                        ts.stall_lsq += 1
                        active[t] = False
                        continue
                    if slots_lsu == 0:
                        active[t] = False
                        continue
                elif op == op_branch:
                    if branch_quota[t] == 0 or slots_alu == 0:
                        active[t] = False
                        continue
                elif op == op_mul:
                    if slots_mul == 0:
                        active[t] = False
                        continue
                elif op == op_fp:
                    if slots_fpu == 0:
                        active[t] = False
                        continue
                elif slots_alu == 0:
                    active[t] = False
                    continue

                # Instruction-side delivery.
                pc = cursor.pc[i]
                fetch_block = pc >> 6
                if fetch_block != ts.last_fetch_block:
                    ts.last_fetch_block = fetch_block
                    delay = hierarchy.fetch_block(t, pc)
                    if delay:
                        ts.fe_stall_until = cycle + delay
                        active[t] = False
                        continue

                # Dataflow ready time from the plain completion window.
                seq = ts.seq
                completions = ts.completions
                ready = cycle
                d = cursor.dep1[i]
                if d:
                    r = completions.get(seq - d, 0)
                    if r > ready:
                        ready = r
                d = cursor.dep2[i]
                if d:
                    r = completions.get(seq - d, 0)
                    if r > ready:
                        ready = r

                if op == op_load:
                    s = cursor.sid[i]
                    latency, __ = hierarchy.load(
                        t, pc if s == 0 else -s, cursor.addr[i], ready
                    )
                    completion = ready + latency
                    slots_lsu -= 1
                elif op == op_store:
                    s = cursor.sid[i]
                    hierarchy.store(t, pc if s == 0 else -s, cursor.addr[i], ready)
                    completion = ready + lat_store
                    slots_lsu -= 1
                elif op == op_branch:
                    completion = ready + lat_branch
                    ts.branches += 1
                    outcome = self.predictor.predict_and_update(
                        t, pc, cursor.taken[i], cursor.target[i]
                    )
                    branch_quota[t] -= 1
                    slots_alu -= 1
                    if not outcome.direction_correct:
                        ts.mispredicts += 1
                        ts.squash_at = completion
                    elif not outcome.target_correct:
                        ts.mispredicts += 1
                        ts.fe_stall_until = cycle + (flush_penalty // 2)
                        active[t] = False
                elif op == op_mul:
                    completion = ready + lat_mul
                    slots_mul -= 1
                elif op == op_fp:
                    completion = ready + lat_fp
                    slots_fpu -= 1
                else:
                    completion = ready + lat_alu
                    slots_alu -= 1

                completions[seq] = completion
                completions.pop(seq - _DEP_WINDOW - 1, None)
                ts.seq = seq + 1
                rob.allocate(t)
                if is_mem:
                    lsq.allocate(t)
                ts.rob_q.append((completion, is_mem))
                cursor.advance()
                budget -= 1

            # ---- MLP accounting: one occupancy sample per cycle ----
            for t in range(n):
                occ = mshrs.occupancy(t, cycle)
                if occ > MLP_BUCKETS:
                    occ = MLP_BUCKETS
                self._mlp_hist[t][occ] += 1

            # ---- clock advance: always exactly one cycle ----
            cycle += 1
            if self.checker is not None:
                self.cycle = cycle
                self.checker.on_cycle(self, cycle)

        self.cycle = cycle
