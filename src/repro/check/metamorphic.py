"""Metamorphic relations derived from the paper's model (§IV-§VI).

Differential testing catches divergence between two implementations, but
both could share a conceptual bug.  Metamorphic relations are a third,
implementation-independent oracle: statements about how the *output must
move* when the *input is perturbed*, derived from the paper's argument
rather than from any simulator:

* **ROB monotonicity** (Fig. 6): growing an isolated thread's ROB
  partition never lowers its UIPC — a larger window can only expose more
  ILP/MLP.
* **Co-runner direction** (§III): adding a co-runner to the sibling
  hardware thread can never *increase* the primary's UIPC, with the
  primary's own partitions held fixed.  (Checked with a private branch
  predictor: a shared gshare can constructively alias between threads,
  which is interference in the opposite direction, not a model bug.)
* **Mode ordering** (§IV): for the same colocation, the primary's UIPC is
  ordered S-mode ≥ balanced ≥ B-mode — Stretch mode grows the primary's
  partition at the expense of the batch thread, never the reverse.

Each relation runs a handful of simulations and returns a
:class:`RelationReport`; :func:`run_metamorphic_suite` bundles them for
``stretch-repro check --metamorphic`` and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.config import CoreConfig
from repro.cpu.fast_core import make_core
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile

__all__ = [
    "RelationReport",
    "check_corunner_never_helps",
    "check_mode_ordering",
    "check_rob_monotonicity",
    "run_metamorphic_suite",
]

#: Stretch operating points (§IV): primary-favoring, balanced, batch-favoring.
_S_MODE = (136, 56)
_BALANCED = (96, 96)
_B_MODE = (56, 136)


@dataclass
class RelationReport:
    """Outcome of one metamorphic relation check."""

    name: str
    holds: bool
    observations: list[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        return f"{self.name}: {status}" + (
            f" ({'; '.join(self.observations)})" if self.observations else ""
        )


def _uipc(
    config: CoreConfig,
    workloads: tuple[str, ...],
    seeds: tuple[int, ...],
    length: int,
    warmup: int,
    measure: int,
) -> tuple[float, ...]:
    traces = tuple(
        generate_trace(get_profile(name), length, seed=s)
        for name, s in zip(workloads, seeds)
    )
    core = make_core(config, traces)
    # Fixed-work windows (require_all_threads): every thread commits exactly
    # ``measure`` µops, so each relation compares the same region of the
    # primary's trace across configurations.  A first-to-finish window keyed
    # to a fast co-runner would compare incommensurable slices instead.
    result = core.run(
        measure, warmup_instructions=warmup, max_cycles=20_000_000,
        require_all_threads=True,
    )
    return tuple(t.uipc for t in result.threads)


def check_rob_monotonicity(
    workload: str = "web_search",
    rob_sizes: tuple[int, ...] = (16, 32, 64, 128, 192),
    seed: int = 7,
    length: int = 6000,
    warmup: int = 2000,
    measure: int = 4000,
    tolerance: float = 0.02,
) -> RelationReport:
    """Growing an isolated thread's ROB partition never lowers its UIPC.

    ``tolerance`` allows a small relative dip: sampling noise (the window
    closes at an instruction count, not a phase boundary) can produce
    sub-percent wiggles without indicating a model bug.
    """
    report = RelationReport("rob_monotonicity", holds=True)
    prev = None
    for rob in rob_sizes:
        config = CoreConfig().single_thread(rob)
        uipc = _uipc(config, (workload,), (seed,), length, warmup, measure)[0]
        report.observations.append(f"rob={rob}: uipc={uipc:.4f}")
        if prev is not None and uipc < prev * (1.0 - tolerance):
            report.holds = False
            report.observations.append(
                f"uipc dropped {prev:.4f} -> {uipc:.4f} when ROB grew to {rob}"
            )
        prev = max(prev, uipc) if prev is not None else uipc
    return report


def check_corunner_never_helps(
    primary: str = "web_search",
    corunner: str = "zeusmp",
    seed: int = 7,
    length: int = 6000,
    warmup: int = 2000,
    measure: int = 4000,
    tolerance: float = 0.0,
) -> RelationReport:
    """A co-runner can never increase the primary's UIPC (§III).

    The primary keeps identical partitions in both runs; only the sibling
    thread's occupancy changes.  Uses a private branch predictor — with a
    shared gshare, cross-thread aliasing can accidentally *train* the
    primary's branches, which is real SMT behavior but not a directional
    guarantee.
    """
    config = CoreConfig(private_bp=True).with_rob_partition(96, 96)
    solo = _uipc(config, (primary,), (seed,), length, warmup, measure)[0]
    pair = _uipc(
        config, (primary, corunner), (seed, seed + 1), length, warmup, measure
    )[0]
    holds = pair <= solo * (1.0 + tolerance)
    return RelationReport(
        "corunner_never_helps",
        holds=holds,
        observations=[f"solo uipc={solo:.4f}", f"colocated uipc={pair:.4f}"],
    )


def check_mode_ordering(
    primary: str = "web_search",
    corunner: str = "zeusmp",
    seed: int = 7,
    length: int = 6000,
    warmup: int = 2000,
    measure: int = 4000,
    tolerance: float = 0.02,
) -> RelationReport:
    """Primary UIPC is ordered S-mode >= balanced >= B-mode (§IV)."""
    report = RelationReport("mode_ordering", holds=True)
    uipcs = {}
    for name, split in (("S", _S_MODE), ("balanced", _BALANCED), ("B", _B_MODE)):
        config = CoreConfig(private_bp=True).with_rob_partition(*split)
        uipcs[name] = _uipc(
            config, (primary, corunner), (seed, seed + 1), length, warmup, measure
        )[0]
        report.observations.append(f"{name}{split}: uipc={uipcs[name]:.4f}")
    if uipcs["S"] < uipcs["balanced"] * (1.0 - tolerance):
        report.holds = False
        report.observations.append("S-mode below balanced")
    if uipcs["balanced"] < uipcs["B"] * (1.0 - tolerance):
        report.holds = False
        report.observations.append("balanced below B-mode")
    return report


def run_metamorphic_suite(seed: int = 7) -> list[RelationReport]:
    """Run every relation with default workloads; returns all reports."""
    return [
        check_rob_monotonicity(seed=seed),
        check_corunner_never_helps(seed=seed),
        check_mode_ordering(seed=seed),
    ]
