"""Design-time provisioned ROB partitioning schemes (paper §IV, §VI-A).

A :class:`PartitionScheme` is an N-M split of the 192-entry ROB between the
latency-sensitive thread (thread 0 by convention) and the batch thread
(thread 1); the LSQ is split proportionally, as the paper manages it "in
proportion to the ROB".

The evaluated configurations follow Figure 9:

* ``BASELINE`` — equal 96-96 partitioning (Intel-style);
* ``B_MODES`` — batch-boost skews 64-128 … 32-160 (batch thread grows);
* ``Q_MODES`` — QoS-boost skews 128-64 … 160-32 (LS thread grows);
* the paper's headline configuration is the 56-136 B-mode
  (``DEFAULT_B_MODE``) and its mirror 136-56 Q-mode (``DEFAULT_Q_MODE``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.config import CoreConfig

__all__ = [
    "PartitionScheme",
    "BASELINE",
    "B_MODES",
    "Q_MODES",
    "DEFAULT_B_MODE",
    "DEFAULT_Q_MODE",
    "scheme_by_name",
]


@dataclass(frozen=True)
class PartitionScheme:
    """One provisioned ROB split: ``ls_entries``-``batch_entries``."""

    ls_entries: int
    batch_entries: int

    def __post_init__(self) -> None:
        if self.ls_entries <= 0 or self.batch_entries <= 0:
            raise ValueError("both partitions need at least one entry")

    @property
    def name(self) -> str:
        """The paper's N-M notation (LS first)."""
        return f"{self.ls_entries}-{self.batch_entries}"

    @property
    def is_baseline(self) -> bool:
        return self.ls_entries == self.batch_entries

    @property
    def skew_toward_batch(self) -> int:
        """Entries shifted from the LS thread to the batch thread."""
        return (self.batch_entries - self.ls_entries) // 2

    def apply(self, base: CoreConfig) -> CoreConfig:
        """Produce a core configuration with this split (LSQ proportional)."""
        if self.ls_entries + self.batch_entries > base.rob_entries:
            raise ValueError(
                f"scheme {self.name} exceeds the {base.rob_entries}-entry ROB"
            )
        return base.with_rob_partition(self.ls_entries, self.batch_entries)

    def limits(self, base: CoreConfig) -> tuple[tuple[int, int], tuple[int, int]]:
        """(ROB limits, LSQ limits) for loading into the limit registers."""
        config = self.apply(base)
        return config.rob_limits, config.lsq_limits


BASELINE = PartitionScheme(96, 96)

#: Batch-boost configurations of Figure 9 (left), shifting ROB capacity to
#: the batch thread in steps of 8 entries.
B_MODES: tuple[PartitionScheme, ...] = tuple(
    PartitionScheme(192 - m, m) for m in (128, 136, 144, 152, 160)
)

#: QoS-boost configurations of Figure 9 (right), the mirror images.
Q_MODES: tuple[PartitionScheme, ...] = tuple(
    PartitionScheme(m, 192 - m) for m in (128, 136, 144, 152, 160)
)

#: The paper's headline B-mode (56-136) and Q-mode (136-56).
DEFAULT_B_MODE = B_MODES[1]
DEFAULT_Q_MODE = Q_MODES[1]


def scheme_by_name(name: str) -> PartitionScheme:
    """Parse the paper's ``N-M`` notation into a scheme."""
    try:
        ls, batch = (int(part) for part in name.split("-"))
    except ValueError:
        raise ValueError(f"expected 'N-M' notation, got {name!r}") from None
    return PartitionScheme(ls, batch)
