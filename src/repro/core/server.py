"""Closed-loop colocated-server simulation.

Ties every layer of the reproduction together, the way a deployed Stretch
system would operate (paper §IV-C, §VI-D):

1. a diurnal (or synthetic) load curve drives request arrivals;
2. the queueing substrate produces per-window tail latency, with service
   times scaled by the latency-sensitive thread's current performance factor
   (which depends on the engaged Stretch mode, measured by the SMT core
   simulator via :class:`~repro.core.colocation.ColocationPerformance`);
3. the CPI²-extended :class:`~repro.core.monitor.StretchMonitor` digests the
   tail latency and programs the control register for the next window;
4. batch throughput accumulates according to the engaged mode (and drops to
   zero while the monitor throttles the co-runner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.adaptive import AdaptiveStretchPolicy
from repro.core.colocation import ColocationPerformance
from repro.core.monitor import MonitorConfig, StretchMonitor, validate_monitor_config
from repro.core.partitioning import PartitionScheme
from repro.core.stretch import StretchMode
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import ServiceSampler
from repro.qos.queueing import ServiceSimulator
from repro.workloads.profiles import WorkloadProfile

__all__ = ["WindowRecord", "ServerTimeline", "ColocatedServer"]


@dataclass(frozen=True)
class WindowRecord:
    """One monitoring window of the closed loop."""

    hour: float
    load_fraction: float
    mode: StretchMode
    tail_latency_ms: float
    qos_violated: bool
    throttled: bool
    batch_uipc: float
    #: Engaged partition scheme name (adaptive runs select among several).
    scheme: str = ""


@dataclass
class ServerTimeline:
    """Full-day trace of the closed loop plus summary metrics."""

    windows: list[WindowRecord] = field(default_factory=list)

    @property
    def violation_rate(self) -> float:
        if not self.windows:
            return 0.0
        return sum(w.qos_violated for w in self.windows) / len(self.windows)

    @property
    def bmode_fraction(self) -> float:
        if not self.windows:
            return 0.0
        return sum(w.mode is StretchMode.B_MODE for w in self.windows) / len(self.windows)

    def batch_throughput_gain(self, baseline_batch_uipc: float) -> float:
        """Mean batch throughput gain versus always-Baseline partitioning."""
        if not self.windows or baseline_batch_uipc <= 0:
            return 0.0
        mean = sum(w.batch_uipc for w in self.windows) / len(self.windows)
        return mean / baseline_batch_uipc - 1.0


class ColocatedServer:
    """A server colocating one latency-sensitive and one batch workload."""

    def __init__(
        self,
        ls_profile: WorkloadProfile,
        performance: ColocationPerformance,
        monitor_config: MonitorConfig | None = None,
        n_workers: int = 8,
        seed: int = 0,
        q_mode_available: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        if ls_profile.qos is None:
            raise ValueError(f"{ls_profile.name!r} has no QoS contract")
        if ls_profile.name != performance.ls_workload:
            raise ValueError(
                f"performance model is for {performance.ls_workload!r}, "
                f"not {ls_profile.name!r}"
            )
        if monitor_config is None:
            monitor_config = MonitorConfig()
        validate_monitor_config(monitor_config)
        self.ls_profile = ls_profile
        self.performance = performance
        self.service = ServiceSimulator(ls_profile.qos, n_workers=n_workers, seed=seed)
        # Per-window observations flow through the observability sampler so
        # the monitor's inputs and the metrics pipeline always agree.
        self.sampler = ServiceSampler(registry=metrics)
        self.monitor = StretchMonitor(
            ls_profile.qos, monitor_config, q_mode_available=q_mode_available,
            metrics=metrics,
        )

    def run_day(
        self,
        load_fn: Callable[[float], float],
        window_minutes: float = 5.0,
        requests_per_window: int = 3000,
    ) -> ServerTimeline:
        """Simulate 24 hours of operation under ``load_fn``."""
        if window_minutes <= 0:
            raise ValueError("window_minutes must be positive")
        # Calibrate the peak with a long horizon regardless of the (short)
        # monitoring windows — a short-horizon estimate overstates the
        # sustainable rate and would push every "90% load" window into
        # effective overload.
        peak = self.service.peak_load(n_requests=max(20000, requests_per_window))
        timeline = ServerTimeline()
        n_windows = int(round(24 * 60 / window_minutes))
        mode = self.monitor.mode
        throttled = False
        for k in range(n_windows):
            hour = k * window_minutes / 60.0
            load = max(load_fn(hour), 0.02)
            if throttled:
                # Co-runner suspended: the service owns the whole core.
                perf = 1.0
                batch_uipc = 0.0
            else:
                perf = max(self.performance.ls_perf_factor(mode), 0.05)
                batch_uipc = self.performance.per_mode[mode].batch_uipc
            stats = self.service.run(
                peak * load, perf, requests_per_window, seed_offset=k + 1
            )
            tail = stats.percentile(self.ls_profile.qos.percentile)
            violated = tail > self.ls_profile.qos.target_ms
            timeline.windows.append(
                WindowRecord(
                    hour=hour,
                    load_fraction=load,
                    mode=mode,
                    tail_latency_ms=tail,
                    qos_violated=violated,
                    throttled=throttled,
                    batch_uipc=batch_uipc,
                )
            )
            sample = self.sampler.observe(tail, load_fraction=load)
            decision = self.monitor.observe_window(sample)
            mode = decision.mode
            throttled = decision.throttle_corunner
        return timeline

    def run_day_adaptive(
        self,
        load_fn: Callable[[float], float],
        policy: AdaptiveStretchPolicy,
        window_minutes: float = 5.0,
        requests_per_window: int = 3000,
    ) -> ServerTimeline:
        """Simulate 24 hours under the multi-B-mode adaptive policy (§IV-D).

        Each window, the policy picks the deepest provisioned B-mode whose
        predicted tail latency stays inside the QoS budget; per-scheme
        performance comes from :meth:`ColocationPerformance.interpolate`.
        """
        if window_minutes <= 0:
            raise ValueError("window_minutes must be positive")
        peak = self.service.peak_load(n_requests=max(20000, requests_per_window))
        timeline = ServerTimeline()
        n_windows = int(round(24 * 60 / window_minutes))
        scheme: PartitionScheme = policy.decide(self.ls_profile.qos.target_ms).scheme
        mode = StretchMode.BASELINE
        ls_solo = self.performance.ls_solo_uipc
        for k in range(n_windows):
            hour = k * window_minutes / 60.0
            load = max(load_fn(hour), 0.02)
            estimate = self.performance.interpolate(scheme)
            perf = max(min(estimate.ls_uipc / ls_solo, 1.0), 0.05)
            stats = self.service.run(
                peak * load, perf, requests_per_window, seed_offset=k + 1
            )
            tail = stats.percentile(self.ls_profile.qos.percentile)
            violated = tail > self.ls_profile.qos.target_ms
            timeline.windows.append(
                WindowRecord(
                    hour=hour,
                    load_fraction=load,
                    mode=mode,
                    tail_latency_ms=tail,
                    qos_violated=violated,
                    throttled=False,
                    batch_uipc=estimate.batch_uipc,
                    scheme=scheme.name,
                )
            )
            sample = self.sampler.observe(tail, load_fraction=load)
            decision = policy.decide(sample)
            scheme = decision.scheme
            mode = decision.mode
        return timeline
