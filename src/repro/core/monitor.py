"""CPI²-extended software monitor (paper §IV-C).

Google's CPI² framework watches per-task performance counters to detect
interference at runtime.  Stretch extends it with a QoS metric — tail
latency, the representative and readily available choice — reflecting the
service's performance slack:

* when the monitor sees slack (tail latency comfortably below target) for a
  few consecutive windows, it engages **B-mode**;
* on a QoS violation it immediately disengages B-mode, falling back to
  Baseline partitioning, or **Q-mode** if one is provisioned;
* if violations persist, it takes CPI²'s corrective action: **throttle the
  co-runner** for an interval of time.

The monitor is a pure decision-making state machine: feed it one per-window
observation — a :class:`~repro.obs.sampler.ServiceWindowSample` from the
observability layer's :class:`~repro.obs.sampler.ServiceSampler` (or a bare
float, still accepted everywhere) — and act on the returned
:class:`MonitorDecision`.  When constructed with a
:class:`~repro.obs.metrics.MetricsRegistry`, every observation and mode
transition is mirrored into it (``monitor.*`` metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stretch import StretchMode
from repro.obs.metrics import MetricsRegistry
from repro.workloads.profiles import QoSSpec

__all__ = [
    "MODE_ORDER",
    "MonitorConfig",
    "MonitorDecision",
    "MonitorState",
    "StretchMonitor",
    "QueueLengthMonitorConfig",
    "QueueLengthMonitor",
    "monitor_transition",
    "validate_monitor_config",
]

#: Canonical mode indexing shared by the scalar monitor, the metrics
#: pipeline (``monitor.mode`` series) and the vectorized fleet engine:
#: 0 = BASELINE, 1 = B_MODE, 2 = Q_MODE.
MODE_ORDER: tuple[StretchMode, ...] = tuple(StretchMode)


def _tail_latency_ms(observation) -> float:
    """Read the tail latency from a window sample (or accept a bare float)."""
    return float(getattr(observation, "tail_latency_ms", observation))


def _queue_depth(observation) -> float:
    """Read the mean queue depth from a window sample (or a bare float)."""
    depth = getattr(observation, "mean_queue_depth", observation)
    if depth is None:
        raise ValueError(
            "window sample carries no mean_queue_depth; feed the "
            "QueueLengthMonitor samples from a queue-aware ServiceSampler"
        )
    return float(depth)


@dataclass(frozen=True)
class MonitorConfig:
    """Thresholds and hysteresis of the software monitor.

    The defaults are the paper's operating point; :func:`repro.tune.
    tune_monitor` searches these same four axes against adversarial
    scenario portfolios when the fleet's SLO budget calls for a
    different trade-off.

    Attributes
    ----------
    engage_fraction:
        B-mode engages when tail latency stays below this fraction of the
        QoS target (slack exists).  Must lie strictly inside ``(0, 1)``;
        default ``0.6``.
    engage_windows:
        Consecutive compliant windows required before engaging B-mode
        (``>= 1``; default ``3``).
    violation_windows_to_throttle:
        Consecutive violating windows (after leaving B-mode) before the
        monitor orders co-runner throttling (``>= 1``; default ``3``).
    throttle_windows:
        Duration of a throttling interval, in windows (``>= 1``;
        default ``10``).
    """

    engage_fraction: float = 0.6
    engage_windows: int = 3
    violation_windows_to_throttle: int = 3
    throttle_windows: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.engage_fraction < 1.0:
            raise ValueError("engage_fraction must be in (0, 1)")
        if min(self.engage_windows, self.violation_windows_to_throttle,
               self.throttle_windows) < 1:
            raise ValueError("window counts must be at least 1")


def validate_monitor_config(config) -> MonitorConfig:
    """Validate a monitor configuration eagerly (duck-typed).

    Re-applies the :class:`MonitorConfig` field invariants against whatever
    object the caller handed over, so a malformed or wrong-typed config
    raises at construction time instead of mid-``run_day``.  Returns the
    config unchanged on success.
    """
    try:
        engage_fraction = float(config.engage_fraction)
        counts = (
            int(config.engage_windows),
            int(config.violation_windows_to_throttle),
            int(config.throttle_windows),
        )
    except (AttributeError, TypeError, ValueError) as exc:
        raise TypeError(
            f"monitor_config must provide MonitorConfig's numeric fields; "
            f"got {config!r}"
        ) from exc
    if not 0.0 < engage_fraction < 1.0:
        raise ValueError("engage_fraction must be in (0, 1)")
    if min(counts) < 1:
        raise ValueError("window counts must be at least 1")
    return config


@dataclass(frozen=True)
class MonitorDecision:
    """What the system software should do for the next window."""

    mode: StretchMode
    throttle_corunner: bool = False


@dataclass(frozen=True)
class MonitorState:
    """The complete internal state of the tail-latency monitor state machine.

    ``mode`` is an index into :data:`MODE_ORDER` (0 = Baseline, 1 = B-mode,
    2 = Q-mode) so the same representation works element-wise over numpy
    arrays in the vectorized fleet engine.
    """

    mode: int = 0
    compliant_streak: int = 0
    violation_streak: int = 0
    throttle_remaining: int = 0


#: Mode indices (module-private aliases keep the transition readable).
_BASELINE, _B_MODE, _Q_MODE = 0, 1, 2


def monitor_transition(
    state: MonitorState,
    violated: bool,
    slack: bool,
    config: MonitorConfig,
    q_mode_available: bool = True,
) -> tuple[MonitorState, bool, bool]:
    """One window of the Stretch monitor state machine, as a pure function.

    This is the single source of truth for the monitor's decision logic:
    :class:`StretchMonitor` applies it per observation, and the vectorized
    fleet engine (:mod:`repro.fleet`) applies the same rules element-wise
    over server arrays (equivalence is enforced by an exhaustive
    state-space test).

    Parameters mirror one digested window: ``violated`` means the QoS
    metric exceeded its target, ``slack`` means it sat below the engage
    threshold (``violated`` and ``slack`` are mutually exclusive).

    Returns ``(new_state, throttle_corunner, throttle_ordered)`` where
    ``throttle_ordered`` marks the windows on which a fresh CPI²-style
    throttling interval was ordered (for counting throttle orders).
    """
    mode = state.mode
    cs = state.compliant_streak
    vs = state.violation_streak
    tr = state.throttle_remaining

    if tr > 0:
        # Mid-throttle: count down; mode is frozen until the interval ends.
        tr -= 1
        return MonitorState(mode, cs, vs, tr), tr > 0, False

    if violated:
        cs = 0
        if mode == _B_MODE:
            # First response: give capacity back to the service.
            mode = _Q_MODE if q_mode_available else _BASELINE
            vs = 1
        else:
            vs += 1
            if mode == _BASELINE and q_mode_available:
                mode = _Q_MODE
            if vs >= config.violation_windows_to_throttle:
                # CPI²'s corrective action: throttle the co-runner.
                return (
                    MonitorState(mode, cs, 0, config.throttle_windows),
                    True,
                    True,
                )
        return MonitorState(mode, cs, vs, 0), False, False

    vs = 0
    if slack:
        cs += 1
        if mode != _B_MODE and cs >= config.engage_windows:
            mode = _B_MODE
    else:
        cs = 0
        # Compliant but tight: prefer Baseline over an engaged B-mode, and
        # return capacity to the co-runner if Q-mode pressure eased.
        if mode in (_B_MODE, _Q_MODE):
            mode = _BASELINE
    return MonitorState(mode, cs, vs, 0), False, False


class StretchMonitor:
    """Windowed tail-latency state machine driving the Stretch control bits."""

    def __init__(
        self,
        qos: QoSSpec,
        config: MonitorConfig = MonitorConfig(),
        q_mode_available: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.qos = qos
        self.config = config
        self.q_mode_available = q_mode_available
        self.metrics = metrics
        self.mode = StretchMode.BASELINE
        self.windows_observed = 0
        self.violations = 0
        self.throttle_orders = 0
        self._compliant_streak = 0
        self._violation_streak = 0
        self._throttle_remaining = 0

    @property
    def throttling(self) -> bool:
        return self._throttle_remaining > 0

    def _record(self, tail_latency_ms: float, decision: MonitorDecision) -> None:
        registry = self.metrics
        if registry is None:
            return
        registry.counter("monitor.windows").inc()
        registry.series("monitor.tail_latency_ms").append(
            self.windows_observed, tail_latency_ms
        )
        registry.series("monitor.mode").append(
            self.windows_observed, list(StretchMode).index(decision.mode)
        )
        if tail_latency_ms > self.qos.target_ms:
            registry.counter("monitor.violations").inc()
        if decision.throttle_corunner:
            registry.counter("monitor.throttled_windows").inc()

    def observe_window(self, observation) -> MonitorDecision:
        """Digest one monitoring window; emit a decision.

        ``observation`` is a per-window sample from the observability
        layer (anything with a ``tail_latency_ms`` attribute, e.g.
        :class:`~repro.obs.sampler.ServiceWindowSample`) or a bare tail
        latency in milliseconds.
        """
        tail_latency_ms = _tail_latency_ms(observation)
        decision = self._observe(tail_latency_ms)
        self._record(tail_latency_ms, decision)
        return decision

    def _observe(self, tail_latency_ms: float) -> MonitorDecision:
        if tail_latency_ms < 0:
            raise ValueError("latency cannot be negative")
        self.windows_observed += 1
        violated = tail_latency_ms > self.qos.target_ms
        slack = tail_latency_ms <= self.qos.target_ms * self.config.engage_fraction

        state = MonitorState(
            MODE_ORDER.index(self.mode),
            self._compliant_streak,
            self._violation_streak,
            self._throttle_remaining,
        )
        state, throttle_corunner, ordered = monitor_transition(
            state, violated, slack, self.config, self.q_mode_available
        )
        self.mode = MODE_ORDER[state.mode]
        self._compliant_streak = state.compliant_streak
        self._violation_streak = state.violation_streak
        self._throttle_remaining = state.throttle_remaining
        if violated:
            self.violations += 1
        if ordered:
            self.throttle_orders += 1
        return MonitorDecision(self.mode, throttle_corunner=throttle_corunner)


@dataclass(frozen=True)
class QueueLengthMonitorConfig:
    """Thresholds for the queue-length monitor variant.

    Attributes
    ----------
    engage_max_depth:
        Mean in-system request count below which B-mode may engage — "when
        queue length is short, high single-thread performance is not
        necessary" (the Rubik observation the paper cites in §IV-C).  The
        count includes requests in service, so the threshold should be a
        fraction of the worker-pool size (default assumes ~8 workers).
    violate_depth:
        Depth above which the monitor treats the service as queue-bound and
        escalates (Baseline / Q-mode, then throttling).
    engage_windows / violation_windows_to_throttle / throttle_windows:
        Same hysteresis semantics as :class:`MonitorConfig`.
    """

    engage_max_depth: float = 4.0
    violate_depth: float = 12.0
    engage_windows: int = 3
    violation_windows_to_throttle: int = 3
    throttle_windows: int = 10

    def __post_init__(self) -> None:
        if self.engage_max_depth < 0:
            raise ValueError("engage_max_depth must be non-negative")
        if self.violate_depth <= self.engage_max_depth:
            raise ValueError("violate_depth must exceed engage_max_depth")
        if min(self.engage_windows, self.violation_windows_to_throttle,
               self.throttle_windows) < 1:
            raise ValueError("window counts must be at least 1")


class QueueLengthMonitor:
    """Queue-length-driven Stretch monitor (paper §IV-C's alternative metric).

    Instead of tail latency, the decision input is the mean number of
    requests in the system over the monitoring window — an indirect but
    cheaply available slack signal: an empty queue means per-request
    processing time has plenty of headroom, a deep queue means single-thread
    performance is needed *now*.
    """

    def __init__(
        self,
        config: QueueLengthMonitorConfig = QueueLengthMonitorConfig(),
        q_mode_available: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config
        self.q_mode_available = q_mode_available
        self.metrics = metrics
        self.mode = StretchMode.BASELINE
        self.windows_observed = 0
        self.deep_queue_windows = 0
        self.throttle_orders = 0
        self._calm_streak = 0
        self._deep_streak = 0
        self._throttle_remaining = 0

    @property
    def throttling(self) -> bool:
        return self._throttle_remaining > 0

    def observe_window(self, observation) -> MonitorDecision:
        """Digest one window's mean queue depth; emit a decision.

        ``observation`` is a per-window sample carrying
        ``mean_queue_depth`` (e.g. a queue-aware
        :class:`~repro.obs.sampler.ServiceWindowSample`) or a bare depth.
        """
        mean_queue_depth = _queue_depth(observation)
        decision = self._observe(mean_queue_depth)
        registry = self.metrics
        if registry is not None:
            registry.counter("monitor.windows").inc()
            registry.series("monitor.queue_depth").append(
                self.windows_observed, mean_queue_depth
            )
            if decision.throttle_corunner:
                registry.counter("monitor.throttled_windows").inc()
        return decision

    def _observe(self, mean_queue_depth: float) -> MonitorDecision:
        if mean_queue_depth < 0:
            raise ValueError("queue depth cannot be negative")
        self.windows_observed += 1
        deep = mean_queue_depth > self.config.violate_depth
        calm = mean_queue_depth <= self.config.engage_max_depth

        if self._throttle_remaining > 0:
            self._throttle_remaining -= 1
            if deep:
                self.deep_queue_windows += 1
            return MonitorDecision(
                self.mode, throttle_corunner=self._throttle_remaining > 0
            )

        if deep:
            self.deep_queue_windows += 1
            self._calm_streak = 0
            if self.mode is StretchMode.B_MODE:
                self.mode = (
                    StretchMode.Q_MODE if self.q_mode_available else StretchMode.BASELINE
                )
                self._deep_streak = 1
            else:
                self._deep_streak += 1
                if self.mode is StretchMode.BASELINE and self.q_mode_available:
                    self.mode = StretchMode.Q_MODE
                if self._deep_streak >= self.config.violation_windows_to_throttle:
                    self.throttle_orders += 1
                    self._throttle_remaining = self.config.throttle_windows
                    self._deep_streak = 0
                    return MonitorDecision(self.mode, throttle_corunner=True)
            return MonitorDecision(self.mode)

        self._deep_streak = 0
        if calm:
            self._calm_streak += 1
            if (
                self.mode is not StretchMode.B_MODE
                and self._calm_streak >= self.config.engage_windows
            ):
                self.mode = StretchMode.B_MODE
        else:
            self._calm_streak = 0
            if self.mode is not StretchMode.BASELINE:
                self.mode = StretchMode.BASELINE
        return MonitorDecision(self.mode)
