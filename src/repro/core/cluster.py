"""Cluster-level colocation model (the paper's §II deployment setting).

The paper's case studies reason about *clusters*: a latency-sensitive
service load-balanced over a pool of servers, each of which also hosts
batch work on the second hardware thread of its SMT cores.  This module
composes the per-server closed loop (`repro.core.server.ColocatedServer`)
into such a pool:

* the cluster-level diurnal load divides evenly across servers, scaled by
  an over-provisioning factor (clusters are sized so that peak load leaves
  headroom — one of the two reasons the paper gives for ubiquitous slack);
* each server sees its share with bounded, deterministic per-window jitter
  (imperfect balancing) and runs its own monitor and Stretch control;
* cluster metrics aggregate across servers: violation rate, mean B-mode
  residency, and total batch throughput versus an always-Baseline pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.colocation import ColocationPerformance
from repro.core.monitor import MonitorConfig, validate_monitor_config
from repro.core.server import ColocatedServer, ServerTimeline
from repro.core.stretch import StretchMode
from repro.util.deprecation import warn_deprecated
from repro.util.rng import derive_seed
from repro.workloads.profiles import WorkloadProfile

__all__ = ["ClusterTimeline", "ClusterSimulator"]


@dataclass
class ClusterTimeline:
    """Per-server timelines plus cluster-level aggregates."""

    servers: list[ServerTimeline] = field(default_factory=list)

    @property
    def violation_rate(self) -> float:
        windows = [w for timeline in self.servers for w in timeline.windows]
        if not windows:
            return 0.0
        return sum(w.qos_violated for w in windows) / len(windows)

    @property
    def bmode_fraction(self) -> float:
        windows = [w for timeline in self.servers for w in timeline.windows]
        if not windows:
            return 0.0
        return sum(w.mode is StretchMode.B_MODE for w in windows) / len(windows)

    def batch_throughput_gain(self, baseline_batch_uipc: float) -> float:
        """Cluster batch throughput gain vs an always-Baseline pool."""
        gains = [t.batch_throughput_gain(baseline_batch_uipc) for t in self.servers]
        if not gains:
            return 0.0
        return sum(gains) / len(gains)

    def per_server_gains(self, baseline_batch_uipc: float) -> list[float]:
        return [t.batch_throughput_gain(baseline_batch_uipc) for t in self.servers]


class ClusterSimulator:
    """A pool of identical colocated servers behind a load balancer."""

    def __init__(
        self,
        ls_profile: WorkloadProfile,
        performance: ColocationPerformance,
        n_servers: int = 8,
        overprovision: float = 1.2,
        balance_jitter: float = 0.05,
        monitor_config: MonitorConfig | None = None,
        q_mode_available: bool = True,
        seed: int = 0,
    ):
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if overprovision < 1.0:
            raise ValueError("overprovision must be at least 1.0")
        if not 0.0 <= balance_jitter < 0.5:
            raise ValueError("balance_jitter must be in [0, 0.5)")
        if monitor_config is None:
            monitor_config = MonitorConfig()
        validate_monitor_config(monitor_config)
        self.ls_profile = ls_profile
        self.performance = performance
        self.n_servers = n_servers
        self.overprovision = overprovision
        self.balance_jitter = balance_jitter
        self.seed = int(seed)
        self._servers = [
            ColocatedServer(
                ls_profile,
                performance,
                monitor_config=monitor_config,
                seed=derive_seed(self.seed, "server", k) & 0x7FFFFF,
                q_mode_available=q_mode_available,
            )
            for k in range(n_servers)
        ]

    def _server_load_fn(
        self, index: int, cluster_load_fn: Callable[[float], float],
        window_minutes: float,
    ) -> Callable[[float], float]:
        rng = np.random.default_rng(derive_seed(self.seed, "jitter", index))
        # Pre-draw one jitter multiplier per window (deterministic per server).
        n_windows = int(round(24 * 60 / window_minutes)) + 1
        jitter = 1.0 + rng.uniform(-self.balance_jitter, self.balance_jitter,
                                   size=n_windows)

        def load(hour: float) -> float:
            window = int(hour * 60 / window_minutes)
            # Cluster load is expressed relative to cluster peak; each server
            # sees its equal share relative to its own peak capacity, scaled
            # down by the over-provisioning headroom.
            share = cluster_load_fn(hour) / self.overprovision
            return max(min(share * jitter[window % len(jitter)], 1.2), 0.0)

        return load

    def run_day(
        self,
        cluster_load_fn: Callable[[float], float],
        window_minutes: float = 10.0,
        requests_per_window: int = 2000,
    ) -> ClusterTimeline:
        """Deprecated: use :func:`repro.api.run_fleet` (``engine="legacy"``
        for this exact per-object loop)."""
        warn_deprecated(
            "ClusterSimulator.run_day", "repro.api.run_fleet(engine='legacy')"
        )
        return self._run_day(
            cluster_load_fn,
            window_minutes=window_minutes,
            requests_per_window=requests_per_window,
        )

    def _run_day(
        self,
        cluster_load_fn: Callable[[float], float],
        window_minutes: float = 10.0,
        requests_per_window: int = 2000,
    ) -> ClusterTimeline:
        """Simulate 24 hours across the pool; returns per-server timelines."""
        timeline = ClusterTimeline()
        for index, server in enumerate(self._servers):
            load_fn = self._server_load_fn(index, cluster_load_fn, window_minutes)
            timeline.servers.append(
                server.run_day(
                    load_fn,
                    window_minutes=window_minutes,
                    requests_per_window=requests_per_window,
                )
            )
        return timeline
