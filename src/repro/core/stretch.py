"""The Stretch hardware-software interface (paper §IV-B/C).

System software controls Stretch through an architecturally exposed control
register holding:

* **S-bit** — engages a Stretch mode when set; Baseline partitioning when
  clear;
* **B/Q-bit** — selects the Batch-boost or QoS-boost configuration.

:class:`StretchCore` binds a control register and the provisioned partition
schemes to a simulated SMT core.  A mode change drains in-flight µops,
reloads the ROB/LSQ limit registers, and flushes both pipelines — the
sequence the paper describes, noting that such switches are infrequent
relative to routine branch-misprediction flushes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.partitioning import (
    BASELINE,
    DEFAULT_B_MODE,
    DEFAULT_Q_MODE,
    PartitionScheme,
)
from repro.cpu.smt_core import SMTCore

__all__ = ["StretchMode", "ControlRegister", "StretchCore"]


class StretchMode(enum.Enum):
    """Operating mode selected by the control register."""

    BASELINE = "baseline"
    B_MODE = "b-mode"
    Q_MODE = "q-mode"


@dataclass
class ControlRegister:
    """The architecturally exposed Stretch control bits."""

    s_bit: bool = False
    bq_bit: bool = False  # False selects B-mode, True selects Q-mode

    @property
    def mode(self) -> StretchMode:
        if not self.s_bit:
            return StretchMode.BASELINE
        return StretchMode.Q_MODE if self.bq_bit else StretchMode.B_MODE

    def request(self, mode: StretchMode) -> None:
        """Set the bits to select ``mode``."""
        self.s_bit = mode is not StretchMode.BASELINE
        self.bq_bit = mode is StretchMode.Q_MODE


class StretchCore:
    """A Stretch-capable SMT core: provisioned schemes + control register.

    By convention thread 0 runs the latency-sensitive workload and thread 1
    the batch workload, matching :class:`PartitionScheme` orientation.
    Stretch itself does not require this (§IV-D "Facilitating scheduling");
    the convention only simplifies bookkeeping here.
    """

    def __init__(
        self,
        core: SMTCore,
        b_mode: PartitionScheme = DEFAULT_B_MODE,
        q_mode: PartitionScheme | None = DEFAULT_Q_MODE,
    ):
        if core.n_threads != 2:
            raise ValueError("Stretch requires a dual-thread SMT core")
        self.core = core
        self.schemes: dict[StretchMode, PartitionScheme] = {
            StretchMode.BASELINE: BASELINE,
            StretchMode.B_MODE: b_mode,
        }
        # Q-mode is optional (§IV-B); without it, high load uses Baseline.
        if q_mode is not None:
            self.schemes[StretchMode.Q_MODE] = q_mode
        self.control = ControlRegister()
        self.mode_switches = 0
        self._apply(StretchMode.BASELINE)

    @property
    def mode(self) -> StretchMode:
        return self.control.mode

    def scheme_for(self, mode: StretchMode) -> PartitionScheme:
        """The partition scheme a mode resolves to (Q falls back to Baseline)."""
        return self.schemes.get(mode, self.schemes[StretchMode.BASELINE])

    def set_mode(self, mode: StretchMode) -> bool:
        """Request ``mode``; returns True if a reconfiguration occurred.

        Re-requesting the current mode is free — the control register is
        simply rewritten; no drain or flush happens.
        """
        if self.scheme_for(mode) == self.scheme_for(self.control.mode):
            self.control.request(mode)
            return False
        self.control.request(mode)
        self._apply(mode)
        self.mode_switches += 1
        return True

    def _apply(self, mode: StretchMode) -> None:
        scheme = self.scheme_for(mode)
        rob_limits, lsq_limits = scheme.limits(self.core.config)
        if self.core.rob.limits == rob_limits and self.core.lsq.limits == lsq_limits:
            return  # already configured; no drain/flush needed
        self.core.set_partitions(rob_limits, lsq_limits)
