"""Per-mode colocation performance model.

Bridges the cycle-level SMT simulator and the request-level QoS loop: for a
given (latency-sensitive, batch) pair it measures UIPC of both threads under
each provisioned Stretch mode, plus the latency-sensitive workload's
stand-alone full-core UIPC as the normalization reference the paper uses.

The closed-loop server simulation then maps modes to service performance
factors (service time inflation) and batch throughput without re-running the
core simulator every monitoring window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import (  # noqa: F401 (PartitionScheme is API)
    BASELINE,
    DEFAULT_B_MODE,
    DEFAULT_Q_MODE,
    PartitionScheme,
)
from repro.core.stretch import StretchMode
from repro.cpu.config import CoreConfig
from repro.cpu.sampling import SamplingConfig, mean_uipc, sample_colocation, sample_solo
from repro.util.deprecation import warn_deprecated
from repro.workloads.profiles import WorkloadProfile

__all__ = ["ModePerformance", "ColocationPerformance", "measure_colocation_performance"]


@dataclass(frozen=True)
class ModePerformance:
    """UIPC of both hardware threads under one partition scheme."""

    ls_uipc: float
    batch_uipc: float


@dataclass(frozen=True)
class ColocationPerformance:
    """Measured performance of a colocated pair across Stretch modes."""

    ls_workload: str
    batch_workload: str
    ls_solo_uipc: float
    per_mode: dict[StretchMode, ModePerformance]

    def ls_perf_factor(self, mode: StretchMode) -> float:
        """LS single-thread performance as a fraction of stand-alone full core.

        This is the ``perf_factor`` consumed by the queueing substrate.
        """
        factor = self.per_mode[mode].ls_uipc / self.ls_solo_uipc
        return min(factor, 1.0)

    def batch_speedup(self, mode: StretchMode) -> float:
        """Batch UIPC gain of ``mode`` over Baseline partitioning."""
        baseline = self.per_mode[StretchMode.BASELINE].batch_uipc
        return self.per_mode[mode].batch_uipc / baseline - 1.0

    def interpolate(self, scheme: PartitionScheme) -> ModePerformance:
        """Estimate per-thread UIPC under an arbitrary provisioned scheme.

        Linear interpolation on partition sizes, anchored at the measured
        Baseline (96-96) and B-mode (56-136) points — the profile-two-points,
        interpolate-the-rest strategy production software would use when
        more B-mode configurations are provisioned than were profiled
        (§IV-D "Number of configurations").
        """
        base = self.per_mode[StretchMode.BASELINE]
        bmode = self.per_mode[StretchMode.B_MODE]
        ls_anchor, b_anchor = 96, 56  # LS entries at the two anchors
        ls_slope = (base.ls_uipc - bmode.ls_uipc) / (ls_anchor - b_anchor)
        batch_slope = (bmode.batch_uipc - base.batch_uipc) / (ls_anchor - b_anchor)
        delta = ls_anchor - scheme.ls_entries  # >0 means deeper than baseline
        return ModePerformance(
            ls_uipc=max(base.ls_uipc - ls_slope * delta, 0.05 * base.ls_uipc),
            batch_uipc=max(base.batch_uipc + batch_slope * delta,
                           0.05 * base.batch_uipc),
        )


def measure_colocation_performance(
    ls_profile: WorkloadProfile,
    batch_profile: WorkloadProfile,
    base_config: CoreConfig | None = None,
    b_mode: PartitionScheme = DEFAULT_B_MODE,
    q_mode: PartitionScheme | None = DEFAULT_Q_MODE,
    sampling: SamplingConfig = SamplingConfig(),
) -> ColocationPerformance:
    """Deprecated: use :func:`repro.api.measure` (same semantics)."""
    warn_deprecated("measure_colocation_performance", "repro.api.measure")
    return _measure_colocation_performance(
        ls_profile, batch_profile, base_config, b_mode, q_mode, sampling
    )


def _measure_colocation_performance(
    ls_profile: WorkloadProfile,
    batch_profile: WorkloadProfile,
    base_config: CoreConfig | None = None,
    b_mode: PartitionScheme = DEFAULT_B_MODE,
    q_mode: PartitionScheme | None = DEFAULT_Q_MODE,
    sampling: SamplingConfig = SamplingConfig(),
) -> ColocationPerformance:
    """Simulate the pair under Baseline, B-mode and (optionally) Q-mode."""
    config = base_config or CoreConfig()
    solo = mean_uipc(
        sample_solo(ls_profile, config.single_thread(config.rob_entries), sampling)
    )
    schemes: dict[StretchMode, PartitionScheme] = {
        StretchMode.BASELINE: BASELINE,
        StretchMode.B_MODE: b_mode,
    }
    if q_mode is not None:
        schemes[StretchMode.Q_MODE] = q_mode
    per_mode = {}
    for mode, scheme in schemes.items():
        results = sample_colocation(
            ls_profile, batch_profile, scheme.apply(config), sampling
        )
        per_mode[mode] = ModePerformance(
            ls_uipc=mean_uipc(results, 0), batch_uipc=mean_uipc(results, 1)
        )
    if q_mode is None:
        per_mode[StretchMode.Q_MODE] = per_mode[StretchMode.BASELINE]
    return ColocationPerformance(
        ls_workload=ls_profile.name,
        batch_workload=batch_profile.name,
        ls_solo_uipc=solo,
        per_mode=per_mode,
    )
