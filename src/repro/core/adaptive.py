"""Finer-grain Stretch control: multiple B-mode configurations (paper §IV-D).

The paper notes that "multiple configurations may be provisioned that differ
in the fractions of ROB capacity assigned to the two hardware threads.
These would enable finer-grain control over per-thread performance but would
necessitate more sophisticated software control to choose the appropriate
configuration as a function of load."

This module implements that sophistication:

* :class:`SlackBudget` converts a tail-latency observation into an estimate
  of how much additional service-time inflation the QoS target can absorb;
* :class:`AdaptiveStretchPolicy` picks, each monitoring window, the deepest
  provisioned B-mode whose predicted latency impact stays inside that
  budget — falling back toward Baseline (and Q-mode under violations)
  exactly like the two-point monitor.

The latency prediction uses the queueing-theoretic first-order rule that
tail latency scales with service-time inflation as long as the system stays
away from saturation: ``predicted_tail ≈ tail_now × (factor_now /
factor_candidate)``.  A safety margin guards the nonlinear region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.colocation import ColocationPerformance
from repro.core.partitioning import BASELINE, PartitionScheme
from repro.core.stretch import StretchMode
from repro.obs.metrics import MetricsRegistry
from repro.workloads.profiles import QoSSpec

__all__ = ["SlackBudget", "AdaptiveStretchPolicy", "AdaptiveDecision"]


@dataclass(frozen=True)
class SlackBudget:
    """How much service-time inflation the QoS target can still absorb.

    ``headroom`` is the multiplicative latency increase the target allows
    from the current operating point, after a safety margin.
    """

    tail_latency_ms: float
    target_ms: float
    safety_margin: float = 0.85

    def __post_init__(self) -> None:
        if self.tail_latency_ms < 0 or self.target_ms <= 0:
            raise ValueError("latencies must be positive")
        if not 0.0 < self.safety_margin <= 1.0:
            raise ValueError("safety_margin must be in (0, 1]")

    @property
    def headroom(self) -> float:
        """Allowed multiplicative tail-latency growth (>= 1 means slack)."""
        if self.tail_latency_ms <= 0.0:
            return float("inf")
        return (self.target_ms * self.safety_margin) / self.tail_latency_ms


@dataclass(frozen=True)
class AdaptiveDecision:
    """The scheme chosen for the next window and why."""

    scheme: PartitionScheme
    mode: StretchMode
    headroom: float


class AdaptiveStretchPolicy:
    """Chooses among multiple provisioned B-modes as a function of slack.

    Parameters
    ----------
    qos:
        The service's latency contract.
    performance:
        Per-mode measurements for the running pair.  Only the relative
        latency-sensitive factors between schemes are used, extended to the
        additional B-modes via interpolation on the LS partition size.
    b_modes:
        Provisioned batch-boost schemes, shallow to deep (e.g. the paper's
        64-128 … 32-160).  ``BASELINE`` is always available.
    """

    def __init__(
        self,
        qos: QoSSpec,
        performance: ColocationPerformance,
        b_modes: tuple[PartitionScheme, ...],
        safety_margin: float = 0.85,
        metrics: MetricsRegistry | None = None,
    ):
        if not b_modes:
            raise ValueError("provision at least one B-mode")
        if sorted(b_modes, key=lambda s: -s.ls_entries) != list(b_modes):
            raise ValueError("b_modes must be ordered shallow to deep")
        self.qos = qos
        self.performance = performance
        self.b_modes = b_modes
        self.safety_margin = safety_margin
        self.metrics = metrics
        self.windows_observed = 0
        self._factors = {scheme: self._estimate_factor(scheme) for scheme in b_modes}
        self._factors[BASELINE] = performance.ls_perf_factor(StretchMode.BASELINE)

    def _estimate_factor(self, scheme: PartitionScheme) -> float:
        """LS performance factor of a scheme, interpolated on partition size.

        Anchored at the measured Baseline (96 entries) and measured B-mode;
        other skews scale linearly in LS-partition size between those two
        anchors (and extrapolate below, floored at 20% of Baseline).  This
        mirrors what production software would do: profile a couple of
        points, interpolate the rest.
        """
        base_entries = BASELINE.ls_entries
        base_factor = self.performance.ls_perf_factor(StretchMode.BASELINE)
        b_scheme_entries = 56  # the measured B-mode anchor (DEFAULT_B_MODE)
        b_factor = self.performance.ls_perf_factor(StretchMode.B_MODE)
        if scheme.ls_entries >= base_entries:
            return base_factor
        slope = (base_factor - b_factor) / max(base_entries - b_scheme_entries, 1)
        estimate = base_factor - slope * (base_entries - scheme.ls_entries)
        return max(estimate, 0.2 * base_factor)

    def factor_for(self, scheme: PartitionScheme) -> float:
        """Estimated LS performance factor under ``scheme``."""
        return self._factors[scheme]

    def decide(self, observation) -> AdaptiveDecision:
        """Pick the deepest scheme whose predicted tail stays within target.

        ``observation`` is a per-window sample from the observability layer
        (anything with a ``tail_latency_ms`` attribute, e.g.
        :class:`~repro.obs.sampler.ServiceWindowSample`) or a bare tail
        latency in milliseconds.  On a violation the policy returns Q-mode's
        scheme if the measured model has one (otherwise Baseline).
        """
        tail_latency_ms = float(
            getattr(observation, "tail_latency_ms", observation)
        )
        if tail_latency_ms < 0:
            raise ValueError("latency cannot be negative")
        budget = SlackBudget(tail_latency_ms, self.qos.target_ms,
                             self.safety_margin)
        if tail_latency_ms > self.qos.target_ms:
            decision = AdaptiveDecision(BASELINE, StretchMode.Q_MODE,
                                        budget.headroom)
            return self._record(tail_latency_ms, decision)

        current = self._factors[BASELINE]
        chosen = BASELINE
        for scheme in self.b_modes:  # shallow -> deep
            inflation = current / max(self._factors[scheme], 1e-9)
            if inflation <= budget.headroom:
                chosen = scheme
            else:
                break
        mode = StretchMode.BASELINE if chosen is BASELINE else StretchMode.B_MODE
        return self._record(
            tail_latency_ms, AdaptiveDecision(chosen, mode, budget.headroom)
        )

    def _record(self, tail_latency_ms: float,
                decision: AdaptiveDecision) -> AdaptiveDecision:
        self.windows_observed += 1
        registry = self.metrics
        if registry is not None:
            registry.counter("adaptive.windows").inc()
            registry.series("adaptive.tail_latency_ms").append(
                self.windows_observed, tail_latency_ms
            )
            registry.series("adaptive.headroom").append(
                self.windows_observed, decision.headroom
            )
            registry.counter(f"adaptive.scheme.{decision.scheme.name}").inc()
        return decision
