"""Stretch: software-controlled asymmetric ROB/LSQ partitioning for SMT cores.

This package is the paper's primary contribution (§IV):

* :mod:`repro.core.partitioning` — the design-time provisioned partitioning
  configurations (Baseline, B-modes, Q-modes) expressed as limit-register
  settings over the :class:`~repro.cpu.rob.PartitionedResource` substrate;
* :mod:`repro.core.stretch` — the architecturally exposed control register
  (S/B/Q bits) and the :class:`StretchCore` wrapper that applies mode
  changes (drain + limit reload + pipeline flush) to a simulated SMT core;
* :mod:`repro.core.monitor` — the CPI²-extended software monitor that
  watches a QoS metric (tail latency) and engages B-mode when slack exists,
  falls back to Baseline/Q-mode on violations, and throttles the co-runner
  if violations persist;
* :mod:`repro.core.server` — a closed-loop simulation of a colocated server:
  diurnal load → queueing latency → monitor decision → ROB reconfiguration →
  service/batch performance.
"""

from repro.core.partitioning import (
    B_MODES,
    BASELINE,
    DEFAULT_B_MODE,
    DEFAULT_Q_MODE,
    Q_MODES,
    PartitionScheme,
)
from repro.core.stretch import ControlRegister, StretchCore, StretchMode
from repro.core.monitor import (
    MonitorConfig,
    MonitorDecision,
    QueueLengthMonitor,
    QueueLengthMonitorConfig,
    StretchMonitor,
)
from repro.core.adaptive import AdaptiveDecision, AdaptiveStretchPolicy, SlackBudget
from repro.core.colocation import ColocationPerformance, measure_colocation_performance
from repro.core.cluster import ClusterSimulator, ClusterTimeline
from repro.core.server import ColocatedServer, ServerTimeline

__all__ = [
    "BASELINE",
    "B_MODES",
    "Q_MODES",
    "DEFAULT_B_MODE",
    "DEFAULT_Q_MODE",
    "PartitionScheme",
    "ControlRegister",
    "StretchCore",
    "StretchMode",
    "MonitorConfig",
    "MonitorDecision",
    "StretchMonitor",
    "QueueLengthMonitor",
    "QueueLengthMonitorConfig",
    "AdaptiveStretchPolicy",
    "AdaptiveDecision",
    "SlackBudget",
    "ColocationPerformance",
    "measure_colocation_performance",
    "ColocatedServer",
    "ServerTimeline",
    "ClusterSimulator",
    "ClusterTimeline",
]
