"""Violation flight recorder: bounded history + postmortem bundles.

A live fleet emits one aggregate record per window and then moves on;
when an SLO alert fires at window 310 the question is always "what did
the fleet look like *around* then?".  :class:`FlightRecorder` keeps a
bounded ring of recent per-window **frames** — the step record plus the
top-K violating server indices with their monitor state — and, whenever
an alert event arrives, freezes the surrounding windows into a
**capture** (``pre_windows`` before the alert through ``post_windows``
after).  :meth:`dump` writes the ring, the captures, and the event log
as a self-describing JSONL *postmortem bundle*; :func:`analyze_bundle`
re-reads one and attributes each capture to a cause:

* ``load_spike`` — cluster load around the alert well above the
  trailing level: traffic pushed the fleet over, regardless of mode;
* ``mode_switch_lag`` — violating servers were predominantly *in
  B-mode at violation time*: the stretch monitor had not yet backed
  them off, so the stretching itself caused the misses;
* ``straggler`` — the same small set of servers violates frame after
  frame: a localized problem, not a fleet-wide one;
* ``inconclusive`` — none of the signals clears its threshold.

The recorder only *reads* step records — attaching one never changes
fleet results (the bit-identity test in ``tests/test_obs_recorder.py``
holds it to that).
"""

from __future__ import annotations

import json
from collections import deque
from statistics import median

__all__ = [
    "FlightRecorder",
    "analyze_bundle",
    "attribute_capture",
    "load_bundle",
]

#: Completed captures kept in memory (oldest dropped beyond this).
MAX_CAPTURES = 32

_FRAME_KEYS = (
    "window", "hour", "cluster_load", "servers", "violations", "throttled",
    "mode_baseline", "mode_b", "mode_q", "mean_tail_ms", "mean_batch_uipc",
)


def _frame_of(record: dict, violators) -> dict:
    frame = {key: record[key] for key in _FRAME_KEYS if key in record}
    if record.get("gap_filled"):
        frame["gap_filled"] = True
    frame["violators"] = list(violators) if violators else []
    return frame


class FlightRecorder:
    """Ring buffer of fleet frames with alert-triggered captures.

    Feed every completed window to :meth:`observe` along with the SLO
    events it fired (and, optionally, the stepper's captured top-K
    violators).  ``capacity`` bounds the ring; an alert snapshots
    ``pre_windows`` frames of history and stays open for
    ``post_windows`` more, then the capture is sealed.  Overlapping
    alerts each get their own capture from the shared ring.
    """

    def __init__(
        self,
        capacity: int = 288,
        *,
        top_k: int = 16,
        pre_windows: int = 6,
        post_windows: int = 6,
        registry=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if top_k < 0 or pre_windows < 0 or post_windows < 0:
            raise ValueError("top_k/pre_windows/post_windows must be >= 0")
        if pre_windows >= capacity:
            raise ValueError("pre_windows must fit inside capacity")
        self.capacity = int(capacity)
        self.top_k = int(top_k)
        self.pre_windows = int(pre_windows)
        self.post_windows = int(post_windows)
        self.registry = registry
        self.frames: deque[dict] = deque(maxlen=self.capacity)
        self.captures: list[dict] = []
        self.events: list[dict] = []
        self._open: list[dict] = []
        self.windows_seen = 0
        self.dumps = 0

    # -- recording -------------------------------------------------------

    def observe(self, record: dict, violators=None, events=()) -> None:
        """Append one window frame; open/extend captures on alerts."""
        frame = _frame_of(record, violators)
        self.frames.append(frame)
        self.windows_seen += 1
        for capture in self._open:
            capture["frames"].append(frame)
            capture["post_left"] -= 1
        sealed = [c for c in self._open if c["post_left"] <= 0]
        self._open = [c for c in self._open if c["post_left"] > 0]
        for capture in sealed:
            self._seal(capture)
        for event in events:
            self.events.append(dict(event))
            if event.get("type") == "slo_alert":
                self._begin_capture(event, frame)
        if self.registry is not None:
            self.registry.gauge("fleet.recorder.frames").set(
                float(len(self.frames))
            )
            self.registry.gauge("fleet.recorder.captures").set(
                float(len(self.captures) + len(self._open))
            )

    def _begin_capture(self, event: dict, current_frame: dict) -> None:
        history = list(self.frames)[-(self.pre_windows + 1):]
        self._open.append({
            "alert": dict(event),
            "frames": list(history),
            "post_left": self.post_windows,
        })
        if self.post_windows == 0:
            capture = self._open.pop()
            self._seal(capture)

    def _seal(self, capture: dict) -> None:
        capture.pop("post_left", None)
        frames = capture["frames"]
        capture["lo_window"] = int(frames[0]["window"]) if frames else -1
        capture["hi_window"] = int(frames[-1]["window"]) if frames else -1
        self.captures.append(capture)
        del self.captures[:-MAX_CAPTURES]

    @property
    def open_captures(self) -> int:
        return len(self._open)

    def note(self, event: dict) -> None:
        """Log a non-alert event (stop reason, dump, reconfigure)."""
        self.events.append(dict(event))

    def status(self) -> dict:
        """Summary block for ``status()`` replies and the dashboard."""
        return {
            "frames": len(self.frames),
            "capacity": self.capacity,
            "windows_seen": self.windows_seen,
            "captures": len(self.captures),
            "open_captures": len(self._open),
            "events": len(self.events),
            "dumps": self.dumps,
        }

    # -- the postmortem bundle -------------------------------------------

    def dump(self, path, *, reason: str = "requested", meta=None) -> dict:
        """Write the JSONL postmortem bundle; returns a summary record.

        Still-open captures are sealed as-is (an alert near the end of a
        run should not lose its capture to the missing post windows).
        Line 1 is a ``postmortem_meta`` header; then one ``frame`` line
        per ring entry, one ``capture`` line per capture, one ``event``
        line per logged event.
        """
        for capture in self._open:
            self._seal(dict(capture, post_left=0))
        self._open = []
        header = {
            "type": "postmortem_meta",
            "reason": reason,
            "capacity": self.capacity,
            "top_k": self.top_k,
            "pre_windows": self.pre_windows,
            "post_windows": self.post_windows,
            "windows_seen": self.windows_seen,
            "n_frames": len(self.frames),
            "n_captures": len(self.captures),
            "n_events": len(self.events),
        }
        if meta:
            header["service"] = dict(meta)
        path = str(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for frame in self.frames:
                handle.write(json.dumps(dict(frame, type="frame")) + "\n")
            for capture in self.captures:
                handle.write(json.dumps(dict(capture, type="capture")) + "\n")
            for event in self.events:
                handle.write(json.dumps(dict(event, type=event.get(
                    "type", "event"))) + "\n")
        self.dumps += 1
        if self.registry is not None:
            self.registry.counter("fleet.recorder.dumps").inc()
        return {
            "path": path,
            "reason": reason,
            "frames": len(self.frames),
            "captures": len(self.captures),
            "events": len(self.events),
        }


# -- bundle analysis -----------------------------------------------------


def load_bundle(path) -> dict:
    """Read a postmortem bundle back into its parts."""
    meta = None
    frames: list[dict] = []
    captures: list[dict] = []
    events: list[dict] = []
    with open(str(path), encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{line_no}: not JSON ({err.msg})"
                ) from None
            kind = record.get("type")
            if kind == "postmortem_meta":
                meta = record
            elif kind == "frame":
                frames.append(record)
            elif kind == "capture":
                captures.append(record)
            else:
                events.append(record)
    if meta is None:
        raise ValueError(f"{path}: missing postmortem_meta header line")
    return {
        "meta": meta, "frames": frames, "captures": captures,
        "events": events,
    }


def _violator_rows(frames) -> list[dict]:
    return [v for frame in frames for v in frame.get("violators", ())]


def attribute_capture(capture: dict) -> dict:
    """Attribute one capture's violations to a primary cause.

    Returns ``{"primary", "scores", "evidence"}``.  The scores are
    rough, comparable signal strengths in [0, 1]; ``primary`` is the
    strongest signal clearing its threshold, else ``"inconclusive"``.
    """
    frames = capture.get("frames", [])
    alert = capture.get("alert", {})
    alert_window = int(alert.get("window", -1))
    pre = [f for f in frames if int(f["window"]) < alert_window]
    at_or_after = [f for f in frames if int(f["window"]) >= alert_window]

    # load_spike: peak load at/after the alert vs the trailing level.
    base_loads = [float(f["cluster_load"]) for f in (pre or frames)]
    hot_loads = [float(f["cluster_load"]) for f in (at_or_after or frames)]
    baseline = median(base_loads) if base_loads else 0.0
    peak = max(hot_loads) if hot_loads else 0.0
    load_ratio = peak / baseline if baseline > 0 else (
        float("inf") if peak > 0 else 1.0
    )
    load_score = min(max(load_ratio - 1.0, 0.0), 1.0)

    # mode_switch_lag: violators that were still stretched (B-mode) when
    # they missed QoS — the monitor lagged the traffic.
    rows = _violator_rows(at_or_after or frames)
    in_b = sum(1 for v in rows if v.get("mode") == "b-mode")
    b_fraction = in_b / len(rows) if rows else 0.0

    # straggler: the same servers violating frame after frame.
    frames_with = [
        f for f in frames if f.get("violators")
    ]
    repeat_fraction = 0.0
    repeat_servers: list[int] = []
    if len(frames_with) >= 2:
        counts: dict[int, int] = {}
        for frame in frames_with:
            for v in frame["violators"]:
                counts[int(v["server"])] = counts.get(int(v["server"]), 0) + 1
        threshold = max(2, (len(frames_with) + 1) // 2)
        repeaters = {s for s, c in counts.items() if c >= threshold}
        per_frame = [
            sum(1 for v in f["violators"] if int(v["server"]) in repeaters)
            / len(f["violators"])
            for f in frames_with
        ]
        repeat_fraction = sum(per_frame) / len(per_frame)
        repeat_servers = sorted(
            repeaters,
            key=lambda s: counts[s],
            reverse=True,
        )[:8]

    scores = {
        "load_spike": round(load_score, 4),
        "mode_switch_lag": round(b_fraction, 4),
        "straggler": round(repeat_fraction, 4),
    }
    thresholds = {
        "load_spike": 0.25,      # ≥25% above the trailing median
        "mode_switch_lag": 0.5,  # majority of violators still stretched
        "straggler": 0.4,        # repeaters carry ≥40% of violator slots
    }
    passing = {
        name: value for name, value in scores.items()
        if value >= thresholds[name]
    }
    primary = (
        max(passing, key=passing.get) if passing else "inconclusive"
    )
    return {
        "primary": primary,
        "scores": scores,
        "evidence": {
            "alert_window": alert_window,
            "slo": alert.get("slo"),
            "policy": alert.get("policy"),
            "load_baseline": round(baseline, 4),
            "load_peak": round(peak, 4),
            "load_ratio": (
                round(load_ratio, 4) if load_ratio != float("inf") else None
            ),
            "violators_sampled": len(rows),
            "violators_in_b_mode": in_b,
            "repeat_servers": repeat_servers,
            "frames": len(frames),
        },
    }


def analyze_bundle(path) -> dict:
    """Analyze a postmortem bundle: per-capture attribution + summary."""
    bundle = load_bundle(path)
    frames = bundle["frames"]
    attributions = [
        dict(attribute_capture(capture),
             lo_window=capture.get("lo_window"),
             hi_window=capture.get("hi_window"))
        for capture in bundle["captures"]
    ]
    loads = [float(f["cluster_load"]) for f in frames]
    violations = sum(int(f["violations"]) for f in frames)
    servers = max((int(f["servers"]) for f in frames), default=0)
    alert_events = [
        e for e in bundle["events"] if e.get("type") == "slo_alert"
    ]
    return {
        "meta": bundle["meta"],
        "summary": {
            "frames": len(frames),
            "windows": (
                [int(frames[0]["window"]), int(frames[-1]["window"])]
                if frames else None
            ),
            "servers": servers,
            "total_violations": violations,
            "violation_rate": (
                violations / (servers * len(frames))
                if servers and frames else 0.0
            ),
            "peak_load": max(loads) if loads else 0.0,
            "median_load": median(loads) if loads else 0.0,
            "alerts": len(alert_events),
            "captures": len(bundle["captures"]),
        },
        "captures": attributions,
        "events": bundle["events"],
    }
