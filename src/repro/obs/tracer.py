"""Span tracer emitting Chrome trace-event JSON (Perfetto-viewable).

:class:`SpanTracer` records *complete* spans (``ph: "X"``) and *instant*
events (``ph: "i"``) in the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev.  Two producers feed it:

* the execution engine (:mod:`repro.engine.executor`) traces the job
  lifecycle — submit → dedupe → queue → worker execute → store write /
  cache hit / retry — one lane (``tid``) per pool worker;
* :func:`pipeline_trace` bridges the SMT core's per-µop
  :class:`~repro.cpu.pipeview.PipeEvent` stream into the same format, one
  lane per hardware thread, so a colocated pair's pipeline interleaving
  can be inspected visually (1 simulated cycle is rendered as 1µs).

Timestamps are microseconds relative to tracer creation, as the format
requires.  :meth:`SpanTracer.write` produces a JSON object file
(``{"traceEvents": [...]}``), the most widely accepted container.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable

__all__ = ["SpanTracer", "pipeline_trace"]


class SpanTracer:
    """Collects trace events; thread lanes are caller-assigned ``tid``s."""

    def __init__(self, process_name: str = "stretch-repro", pid: int = 1):
        self.pid = pid
        self.events: list[dict] = []
        self._t0 = time.perf_counter()
        # Process metadata gives Perfetto a readable track group title.
        self.events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        })

    # -- clock ----------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since tracer creation (the trace's time base)."""
        return (time.perf_counter() - self._t0) * 1e6

    # -- emitters -------------------------------------------------------

    def complete(
        self,
        name: str,
        start_us: float,
        duration_us: float,
        cat: str = "engine",
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record a finished span (``ph: "X"``)."""
        event = {
            "name": name, "cat": cat, "ph": "X", "pid": self.pid, "tid": tid,
            "ts": round(start_us, 3), "dur": round(max(duration_us, 0.001), 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self, name: str, cat: str = "engine", tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record a zero-duration marker (``ph: "i"``, thread scope)."""
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "pid": self.pid, "tid": tid, "ts": round(self.now_us(), 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    @contextmanager
    def span(self, name: str, cat: str = "engine", tid: int = 0,
             args: dict | None = None):
        """Scoped span: times the ``with`` body as one complete event."""
        start = self.now_us()
        try:
            yield
        finally:
            self.complete(name, start, self.now_us() - start, cat, tid, args)

    def thread_name(self, tid: int, name: str) -> None:
        """Label a lane (``tid``) in the viewer."""
        self.events.append({
            "name": "thread_name", "ph": "M", "pid": self.pid, "tid": tid,
            "args": {"name": name},
        })

    # -- output ---------------------------------------------------------

    def span_names(self) -> set[str]:
        """Distinct names of recorded spans (``ph: "X"`` events only)."""
        return {e["name"] for e in self.events if e.get("ph") == "X"}

    def to_chrome(self) -> dict:
        """The Trace Event Format JSON object."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> int:
        """Write the trace file; returns the number of events written."""
        Path(path).write_text(json.dumps(self.to_chrome()))
        return len(self.events)


def pipeline_trace(
    events: Iterable,
    tracer: SpanTracer | None = None,
    us_per_cycle: float = 1.0,
) -> SpanTracer:
    """Bridge a :class:`~repro.cpu.pipeview.PipeEvent` stream into a trace.

    Each dispatched µop becomes one complete span on its hardware thread's
    lane: the span opens at dispatch and closes at completion, with the
    operand-wait portion (dispatch → ready) reported in ``args.wait``.
    Accepts :class:`PipeEvent` objects or the raw ``SMTCore.event_log``
    tuples ``(thread, seq, op, pc, dispatch, ready, completion)``.
    """
    from repro.cpu.isa import OpClass

    if tracer is None:
        tracer = SpanTracer(process_name="smt-core pipeline")
    lanes: set[int] = set()
    for event in events:
        if isinstance(event, tuple):
            thread, seq, op, pc, dispatch, ready, completion = event
        else:
            thread, seq, op, pc = event.thread, event.seq, event.op, event.pc
            dispatch, ready, completion = event.dispatch, event.ready, event.completion
        op_name = op.name if isinstance(op, OpClass) else OpClass(op).name
        if thread not in lanes:
            lanes.add(thread)
            tracer.thread_name(thread, f"hw thread {thread}")
        tracer.complete(
            op_name,
            start_us=dispatch * us_per_cycle,
            duration_us=max(completion - dispatch, 1) * us_per_cycle,
            cat="pipeline",
            tid=thread,
            args={"seq": seq, "pc": pc, "wait": max(ready - dispatch, 0)},
        )
    return tracer
