"""Lightweight section profiler: scoped timers and a self-time table.

The profiler answers "where does the wall time go" for the simulator hot
loops (fetch arbitration, dispatch, completion wakeup, commit) and the
engine phases (dedupe, cache lookup, execute, store write).  Sections are
flat named accumulators — no call-stack reconstruction — because the code
under measurement is a small set of known hot regions, not arbitrary user
code.

Two usage styles:

* :meth:`Profiler.section` — a context manager for coarse regions
  (one engine phase, one experiment);
* :meth:`Profiler.add` — direct accumulation for hot loops that batch
  ``perf_counter`` deltas in local floats and flush once at the end
  (what :class:`~repro.cpu.smt_core.SMTCore` does, so the per-cycle cost
  with profiling *disabled* is a single false branch).

Profiling is opt-in per process: ``stretch-repro run --profile`` enables
the process-wide profiler (exported to engine workers via the
``REPRO_OBS_PROFILE`` environment variable; worker-side tables are
process-local and not merged back, so profile serial runs for full
coverage).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

__all__ = [
    "PROFILE_ENV",
    "Profiler",
    "active_profiler",
    "enable_profiling",
    "disable_profiling",
]

#: Environment flag that turns on core/engine profiling in child processes.
PROFILE_ENV = "REPRO_OBS_PROFILE"


class Profiler:
    """Named wall-time accumulators with call counts."""

    def __init__(self):
        #: {section name: [total seconds, calls]}
        self._sections: dict[str, list] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate ``seconds`` of self-time (batched hot-loop flush)."""
        entry = self._sections.get(name)
        if entry is None:
            self._sections[name] = [seconds, calls]
        else:
            entry[0] += seconds
            entry[1] += calls

    @contextmanager
    def section(self, name: str):
        """Scoped timer: ``with profiler.section("engine.execute"): ...``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def seconds(self, name: str) -> float:
        entry = self._sections.get(name)
        return entry[0] if entry else 0.0

    def calls(self, name: str) -> int:
        entry = self._sections.get(name)
        return entry[1] if entry else 0

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's sections into this one."""
        for name, (seconds, calls) in other._sections.items():
            self.add(name, seconds, calls)

    def as_dict(self) -> dict[str, dict]:
        return {
            name: {"seconds": entry[0], "calls": entry[1]}
            for name, entry in sorted(self._sections.items())
        }

    def self_time_table(self) -> str:
        """Render sections as a monospace self-time table, hottest first."""
        from repro.util.tables import format_table

        if not self._sections:
            return "profile: no sections recorded"
        total = sum(entry[0] for entry in self._sections.values())
        rows = []
        for name, (seconds, calls) in sorted(
            self._sections.items(), key=lambda kv: -kv[1][0]
        ):
            share = seconds / total if total > 0 else 0.0
            per_call = seconds / calls * 1e6 if calls else 0.0
            rows.append([name, calls, f"{seconds:.3f}s", f"{per_call:.1f}µs",
                         f"{share:.1%}"])
        return format_table(
            ["section", "calls", "self time", "per call", "share"],
            rows, title="Self-time profile",
        )

    def reset(self) -> None:
        self._sections.clear()


_active: Profiler | None = None


def active_profiler() -> Profiler | None:
    """The process-wide profiler, or None when profiling is off.

    A child process whose environment carries ``REPRO_OBS_PROFILE`` creates
    its own profiler on first use, so instrumented code behaves uniformly
    on workers (their tables stay process-local).
    """
    global _active
    if _active is None and os.environ.get(PROFILE_ENV):
        _active = Profiler()
    return _active


def enable_profiling() -> Profiler:
    """Turn on process-wide profiling (and flag it for child processes)."""
    global _active
    if _active is None:
        _active = Profiler()
    os.environ[PROFILE_ENV] = "1"
    return _active


def disable_profiling() -> None:
    """Turn profiling off and drop the active profiler."""
    global _active
    _active = None
    os.environ.pop(PROFILE_ENV, None)
