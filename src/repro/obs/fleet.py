"""Fleet-level observability: publish per-shard fleet metrics.

Mirrors a :class:`~repro.fleet.engine.FleetTimeline` into a
:class:`~repro.obs.metrics.MetricsRegistry` under the ``fleet.*``
namespace (duck-typed on the timeline, so this module never imports
``repro.fleet``):

========================================  =======================================
``fleet.windows``                         counter: (server, window) pairs simulated
``fleet.window``                          gauge: latest window index (live path)
``fleet.violation_rate``                  gauge: fraction of windows violating QoS
``fleet.mode_occupancy.{baseline,b_mode,q_mode}``  gauges: mode residency fractions
``fleet.throttled_fraction``              gauge: windows spent throttling
``fleet.mean_tail_ms``                    gauge: mean window tail latency
``fleet.straggler_p99_violations``        gauge: p99 of per-server violation counts
``fleet.server_violations``               histogram: per-server daily violations
``fleet.cluster_load``                    series: ingested cluster load per window
``fleet.violations``                      series: violating servers per window
``fleet.throttled``                       series: throttled servers per window
``fleet.placement.occupancy.<profile>``   gauges: servers per co-runner profile
``fleet.scenario.active``                 gauge: active scenario components this window
``fleet.scenario.load_factor``            gauge: mean scenario load multiplier
``fleet.scenario.affected``               gauge: servers under a non-1.0 multiplier
========================================  =======================================

The live path additionally surfaces ``fleet.slo.*`` (burn rates, error
budget — :mod:`repro.obs.slo`) and ``fleet.recorder.*``
(:mod:`repro.obs.recorder`) when those components are attached.

Both publishers are total on degenerate inputs: an empty timeline or a
zero-server window publishes zero rates (never NaN), and non-finite
tail means are clamped to 0.0 before hitting the gauges.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["publish_fleet_metrics", "publish_fleet_window"]

#: Daily per-server violation-count buckets for the straggler histogram.
_VIOLATION_BOUNDS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

_MODE_NAMES = ("baseline", "b_mode", "q_mode")


def _finite(value: float) -> float:
    """Clamp non-finite gauge inputs (foreign/replayed records) to 0.0."""
    value = float(value)
    return value if value == value and abs(value) != float("inf") else 0.0


def publish_fleet_metrics(registry: MetricsRegistry, timeline) -> None:
    """Publish one fleet (or shard) timeline into ``registry``.

    Safe on empty/zero-server timelines: the ``FleetTimeline`` rate
    properties all guard ``total_windows == 0`` and this publisher adds
    nothing that divides, so a degenerate timeline publishes zeros.
    """
    if registry is None:
        return
    registry.counter("fleet.windows").inc(timeline.total_windows)
    registry.gauge("fleet.violation_rate").set(timeline.violation_rate)
    for name, fraction in zip(_MODE_NAMES, timeline.mode_occupancy):
        registry.gauge(f"fleet.mode_occupancy.{name}").set(float(fraction))
    registry.gauge("fleet.throttled_fraction").set(timeline.throttled_fraction)
    registry.gauge("fleet.mean_tail_ms").set(timeline.mean_tail_ms)
    registry.gauge("fleet.straggler_p99_violations").set(
        timeline.straggler_p99_violations
    )
    histogram = registry.histogram(
        "fleet.server_violations", bounds=_VIOLATION_BOUNDS
    )
    for count in timeline.server_violations:
        histogram.observe(float(count))
    violations = registry.series("fleet.violations")
    throttled = registry.series("fleet.throttled")
    for k in range(timeline.n_windows):
        hour = float(timeline.hours[k])
        violations.append(hour, float(timeline.violations[k]))
        throttled.append(hour, float(timeline.throttled[k]))


def publish_fleet_window(registry: MetricsRegistry, record: dict) -> None:
    """Publish one live window record (the streaming-service counterpart).

    ``record`` is the per-window aggregate dict a
    :meth:`repro.fleet.engine.FleetStepper.step` call returns.  Gauges
    track the latest window; series accumulate the day so far, on the
    same ``fleet.*`` names the batch publisher uses.
    """
    if registry is None:
        return
    hour = float(record["hour"])
    # A foreign/replayed record may carry zero servers; rates divide by
    # a floor of 1 so the gauges read 0.0 rather than NaN.
    servers = max(int(record["servers"]), 1)
    registry.counter("fleet.windows").inc(max(int(record["servers"]), 0))
    registry.gauge("fleet.window").set(float(record["window"]))
    registry.gauge("fleet.violation_rate").set(
        _finite(record["violations"] / servers)
    )
    registry.gauge("fleet.throttled_fraction").set(
        _finite(record["throttled"] / servers)
    )
    registry.gauge("fleet.mean_tail_ms").set(_finite(record["mean_tail_ms"]))
    for name, key in zip(_MODE_NAMES, ("mode_baseline", "mode_b", "mode_q")):
        registry.gauge(f"fleet.mode_occupancy.{name}").set(
            _finite(record[key] / servers)
        )
    registry.series("fleet.cluster_load").append(
        hour, float(record["cluster_load"])
    )
    registry.series("fleet.violations").append(
        hour, float(record["violations"])
    )
    registry.series("fleet.throttled").append(
        hour, float(record["throttled"])
    )
    # Heterogeneous fleets report the live co-runner occupancy (absolute
    # server counts; profiles are a small fixed population).
    for profile, count in record.get("placement", {}).items():
        registry.gauge(f"fleet.placement.occupancy.{profile}").set(
            float(count)
        )
    # Scenario-attached fleets surface the perturbation's live footprint.
    scenario = record.get("scenario")
    if scenario:
        registry.gauge("fleet.scenario.active").set(
            float(len(scenario.get("active", ())))
        )
        registry.gauge("fleet.scenario.load_factor").set(
            _finite(scenario.get("load_factor", 1.0))
        )
        registry.gauge("fleet.scenario.affected").set(
            _finite(scenario.get("affected", 0))
        )
