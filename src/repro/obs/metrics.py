"""Metrics registry: counters, gauges, histograms, windowed time series.

The registry is the reproduction's single metrics namespace.  Every
instrument is looked up by name (``registry.counter("engine.executed")``)
and records plain Python numbers; :meth:`MetricsRegistry.collect` snapshots
everything as JSON-able dicts and :meth:`MetricsRegistry.write_jsonl`
streams one metric per line.

**Near-zero overhead when disabled** is a design requirement (the default
registry ships disabled): a disabled registry hands out one shared
:class:`NullInstrument` whose mutators are no-ops, so instrumented code
pays one attribute call per event and allocates nothing.  Hot loops that
cannot afford even that (the SMT core's cycle loop) should instead check
their hook attribute for ``None`` — see :mod:`repro.obs.sampler`.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "NullInstrument",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing count (events, retries, violations)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways (occupancy, mode)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Bucketed distribution of observations (latencies, span durations).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    #: Default bounds, sized for millisecond latencies.
    DEFAULT_BOUNDS = (0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000)

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None):
        bounds = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }


class TimeSeries:
    """A windowed series of ``(t, value)`` points (per-window UIPC, tail).

    Bounded by ``max_points``: the oldest points fall off, so a long-running
    server keeps a sliding window rather than growing without bound.
    """

    __slots__ = ("name", "points")

    def __init__(self, name: str, max_points: int = 4096):
        if max_points < 1:
            raise ValueError("max_points must be positive")
        self.name = name
        self.points: deque[tuple[float, float]] = deque(maxlen=max_points)

    def append(self, t: float, value: float) -> None:
        self.points.append((t, value))

    def values(self) -> list[float]:
        return [v for __, v in self.points]

    @property
    def last(self) -> float | None:
        return self.points[-1][1] if self.points else None

    def mean(self) -> float:
        return sum(v for __, v in self.points) / len(self.points) if self.points else 0.0

    def snapshot(self) -> dict:
        return {"type": "series", "points": [list(p) for p in self.points]}


class NullInstrument:
    """Shared no-op stand-in for every instrument type (disabled registry)."""

    __slots__ = ()

    name = "null"
    value = 0
    count = 0
    points: tuple = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, t: float, value: float) -> None:
        pass

    def values(self) -> list[float]:
        return []

    def snapshot(self) -> dict:
        return {"type": "null"}


_NULL = NullInstrument()


class MetricsRegistry:
    """Named instruments, one namespace per process (or per experiment)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    def counter(self, name: str) -> Counter | NullInstrument:
        return self._typed(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge | NullInstrument:
        return self._typed(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram | NullInstrument:
        return self._typed(name, Histogram, lambda: Histogram(name, bounds))

    def series(self, name: str, max_points: int = 4096) -> TimeSeries | NullInstrument:
        return self._typed(name, TimeSeries, lambda: TimeSeries(name, max_points))

    def _typed(self, name: str, cls: type, factory):
        if not self.enabled:
            return _NULL
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> dict[str, dict]:
        """Snapshot every instrument as JSON-able data, sorted by name.

        Safe to call from a scrape thread while the owning loop registers
        new instruments: the item list is materialized atomically before
        snapshotting.
        """
        items = list(self._instruments.items())
        items.sort(key=lambda pair: pair[0])
        return {name: instrument.snapshot() for name, instrument in items}

    def write_jsonl(self, stream) -> int:
        """Write one ``{"metric": name, ...}`` JSON line per instrument."""
        written = 0
        for name, payload in self.collect().items():
            stream.write(json.dumps({"metric": name, **payload}) + "\n")
            written += 1
        return written

    def reset(self) -> None:
        """Drop every instrument (test isolation helper)."""
        self._instruments.clear()


#: Immutable disabled registry: every instrument lookup is the shared no-op.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (disabled unless someone enables it)."""
    return _default_registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as the process default (None = disabled null)."""
    global _default_registry
    _default_registry = registry if registry is not None else NULL_REGISTRY
    return _default_registry
