"""Unified observability: metrics, tracing and profiling for the stack.

The reproduction's Stretch monitor is itself an observability argument —
it extends CPI² by watching per-window performance signals to drive ROB/LSQ
repartitioning — and this package gives the surrounding system the same
kind of visibility:

* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  histograms, windowed time series) with near-zero overhead when disabled;
* :mod:`repro.obs.sampler` — interval sampling: per-window UIPC, ROB/LSQ
  occupancy, stall breakdowns and miss rates from :class:`SMTCore` runs
  (:class:`IntervalSampler`), and the typed per-window service
  observations the Stretch monitors consume (:class:`ServiceSampler`);
* :mod:`repro.obs.tracer` — a span tracer emitting Chrome trace-event
  JSON (Perfetto-viewable) for the engine job lifecycle and, via
  :func:`pipeline_trace`, the SMT pipeline's µop interleaving;
* :mod:`repro.obs.profiler` — scoped wall-time timers around the
  simulator and engine hot loops, rendered as a self-time table;
* :mod:`repro.obs.slo` — declarative fleet SLOs with multi-window
  burn-rate alerting and error-budget accounting;
* :mod:`repro.obs.recorder` — the violation flight recorder and its
  postmortem-bundle analyzer;
* :mod:`repro.obs.export` — OpenMetrics rendering, the ``/metrics``
  scrape endpoint, and the terminal live dashboard.

Everything is surfaced through ``stretch-repro run --trace/--metrics/
--profile`` and ``stretch-repro inspect``; see docs/API.md §Observability.
"""

from repro.obs.export import (
    DashboardPrinter,
    ObservabilityServer,
    parse_openmetrics,
    render_dashboard,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.fleet import publish_fleet_metrics, publish_fleet_window
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    TimeSeries,
    get_registry,
    set_registry,
)
from repro.obs.profiler import (
    Profiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
)
from repro.obs.sampler import (
    DEFAULT_WINDOW_CYCLES,
    METRICS_ENV,
    IntervalSampler,
    JsonlSink,
    ServiceSampler,
    ServiceWindowSample,
    ThreadWindow,
    WindowSample,
    attach_core_observers,
)
from repro.obs.recorder import (
    FlightRecorder,
    analyze_bundle,
    attribute_capture,
    load_bundle,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    BurnPolicy,
    SLOEngine,
    SLOSpec,
    parse_slo,
)
from repro.obs.tracer import SpanTracer, pipeline_trace

__all__ = [
    "BurnPolicy",
    "Counter",
    "DEFAULT_SLOS",
    "DEFAULT_WINDOW_CYCLES",
    "DashboardPrinter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "IntervalSampler",
    "JsonlSink",
    "METRICS_ENV",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "ObservabilityServer",
    "Profiler",
    "SLOEngine",
    "SLOSpec",
    "ServiceSampler",
    "ServiceWindowSample",
    "SpanTracer",
    "ThreadWindow",
    "TimeSeries",
    "WindowSample",
    "active_profiler",
    "analyze_bundle",
    "attach_core_observers",
    "attribute_capture",
    "disable_profiling",
    "enable_profiling",
    "get_registry",
    "load_bundle",
    "parse_openmetrics",
    "parse_slo",
    "pipeline_trace",
    "publish_fleet_metrics",
    "publish_fleet_window",
    "render_dashboard",
    "render_openmetrics",
    "set_registry",
    "validate_openmetrics",
]
