"""Metric export: OpenMetrics rendering, a scrape endpoint, dashboards.

Three consumers of a :class:`~repro.obs.metrics.MetricsRegistry` live
here, all read-only (exporting never perturbs a run):

* :func:`render_openmetrics` — the registry as OpenMetrics/Prometheus
  text exposition.  Dotted instrument names become underscore-separated
  metric names (``fleet.slo.qos.budget_remaining`` →
  ``fleet_slo_qos_budget_remaining``); counters gain the ``_total``
  suffix, histograms render cumulative ``_bucket{le=...}`` samples plus
  ``_sum``/``_count``, and windowed series export their latest point as
  a gauge.  :func:`parse_openmetrics` / :func:`validate_openmetrics`
  are the matching strict reader (used by tests and the CI scrape
  check), so renderer and parser cannot drift apart.
* :class:`ObservabilityServer` — an optional stdlib ``http.server``
  thread serving ``/metrics`` (OpenMetrics), ``/status`` (the live
  service's JSON status snapshot) and ``/healthz``; this is what
  ``stretch-repro serve --listen`` starts, and what ``stretch-repro
  top`` attaches to.
* :func:`render_dashboard` — a terminal live-status panel (burn rates,
  mode occupancy, window throughput, load sparkline) rendered from a
  service ``status()`` dict, shared by ``serve --dashboard`` (local)
  and ``top`` (over HTTP).
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "DashboardPrinter",
    "ObservabilityServer",
    "escape_label_value",
    "parse_openmetrics",
    "render_dashboard",
    "render_openmetrics",
    "sanitize_metric_name",
    "sparkline",
    "validate_openmetrics",
]

#: The OpenMetrics content type served on ``/metrics``.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_OK_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the OpenMetrics name grammar."""
    out = _SANITIZE_RE.sub("_", name)
    if not out or not _NAME_OK_RE.match(out):
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (``\\``, ``"``, LF)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _sample(name: str, labels: dict | None, value: float) -> str:
    if labels:
        body = ",".join(
            f'{key}="{escape_label_value(val)}"'
            for key, val in labels.items()
        )
        return f"{name}{{{body}}} {_format_value(value)}\n"
    return f"{name} {_format_value(value)}\n"


def render_openmetrics(registry) -> str:
    """Render a registry (or a ``collect()`` snapshot) as OpenMetrics text.

    Every instrument kind has a defined mapping:

    ======================  ============================================
    counter                 ``# TYPE n counter`` + ``n_total``
    gauge                   ``# TYPE n gauge`` + ``n``
    histogram               cumulative ``n_bucket{le=...}`` (incl.
                            ``+Inf``) + ``n_sum`` + ``n_count``
    series (non-empty)      ``# TYPE n gauge`` + latest point's value
    ======================  ============================================

    Empty series and null instruments are skipped.  The text ends with
    the mandatory ``# EOF`` terminator.
    """
    if isinstance(registry, MetricsRegistry):
        snapshot = registry.collect()
    else:
        snapshot = dict(registry)
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        payload = snapshot[raw_name]
        kind = payload.get("type")
        name = sanitize_metric_name(raw_name)
        if kind == "counter":
            lines.append(f"# TYPE {name} counter\n")
            lines.append(_sample(name + "_total", None, payload["value"]))
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge\n")
            lines.append(_sample(name, None, payload["value"]))
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram\n")
            cumulative = 0
            for bound, count in zip(
                payload["bounds"], payload["buckets"]
            ):
                cumulative += count
                lines.append(_sample(
                    name + "_bucket",
                    {"le": _format_value(bound)},
                    cumulative,
                ))
            lines.append(_sample(
                name + "_bucket", {"le": "+Inf"}, payload["count"]
            ))
            lines.append(_sample(name + "_sum", None, payload["total"]))
            lines.append(_sample(name + "_count", None, payload["count"]))
        elif kind == "series":
            points = payload.get("points") or []
            if not points:
                continue
            lines.append(f"# TYPE {name} gauge\n")
            lines.append(_sample(name, None, points[-1][1]))
        # "null" (disabled-registry) payloads are silently skipped.
    lines.append("# EOF\n")
    return "".join(lines)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: \d+(?:\.\d+)?)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_openmetrics(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Strictly parse exposition text back into ``{name: [(labels, v)]}``.

    Raises :class:`ValueError` on any malformed line, a sample whose
    name was not announced by a preceding ``# TYPE`` family, or a
    missing/misplaced ``# EOF`` terminator.  Deliberately minimal — it
    understands exactly what :func:`render_openmetrics` emits, which is
    what the CI scrape check needs.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    families: set[str] = set()
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    for lineno, line in enumerate(lines, 1):
        if not line:
            raise ValueError(f"line {lineno}: blank line in exposition")
        if line == "# EOF":
            if lineno != len(lines):
                raise ValueError(f"line {lineno}: '# EOF' before the end")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "unknown"
            ):
                raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            families.add(parts[2])
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments are legal noise
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        base = re.sub(r"_(?:total|bucket|sum|count)$", "", name)
        if name not in families and base not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE family"
            )
        labels = {}
        if match.group("labels"):
            consumed = _LABEL_RE.findall(match.group("labels"))
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != match.group("labels"):
                raise ValueError(
                    f"line {lineno}: bad label syntax {line!r}"
                )
            labels = dict(consumed)
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparseable sample value {raw!r}"
            ) from None
        samples.setdefault(name, []).append((labels, value))
    return samples


def validate_openmetrics(text: str) -> int:
    """Parse strictly; return the number of samples (raises on error)."""
    return sum(len(v) for v in parse_openmetrics(text).values())


# ----------------------------------------------------------------------
# HTTP scrape endpoint
# ----------------------------------------------------------------------


class ObservabilityServer:
    """A stdlib HTTP thread exposing the live service's observability.

    Endpoints: ``/metrics`` (OpenMetrics text from the registry),
    ``/status`` (JSON from ``status_fn``, when given), ``/healthz``.
    The server thread is a daemon and every request is served from a
    snapshot, so a slow or hostile scraper can never stall the serve
    loop.  ``port=0`` binds an ephemeral port — read :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        status_fn=None,
    ):
        self.registry = registry
        self.host = host
        self._requested_port = int(port)
        self.status_fn = status_fn
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def _send(self, code, body: bytes, content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = render_openmetrics(outer.registry)
                        self._send(200, body.encode(), CONTENT_TYPE)
                    elif path == "/status" and outer.status_fn is not None:
                        body = json.dumps(outer.status_fn())
                        self._send(200, body.encode(), "application/json")
                    elif path == "/healthz":
                        self._send(200, b"ok\n", "text/plain")
                    else:
                        self._send(404, b"not found\n", "text/plain")
                except Exception as exc:  # never kill the scrape thread
                    try:
                        self._send(
                            500, f"{exc}\n".encode(), "text/plain"
                        )
                    except OSError:
                        pass

            def log_message(self, *args) -> None:
                pass  # scrapes must not spam the serve loop's stderr

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-export",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Terminal dashboard
# ----------------------------------------------------------------------

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 32) -> str:
    """Render a numeric series as a fixed-width unicode sparkline."""
    values = [float(v) for v in values][-width:]
    if not values:
        return " " * width
    lo, hi = min(values), max(values)
    span = hi - lo
    chars = []
    for v in values:
        frac = (v - lo) / span if span > 0 else 0.5
        chars.append(_SPARK_CHARS[1 + int(frac * (len(_SPARK_CHARS) - 2))])
    return "".join(chars).rjust(width)


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(float(fraction), 0.0), 1.0)
    filled = int(round(fraction * width))
    return "█" * filled + "·" * (width - filled)


def _series_values(registry, name: str) -> list[float]:
    if registry is None or name not in registry:
        return []
    return registry.series(name).values()


def render_dashboard(
    status: dict,
    registry: MetricsRegistry | None = None,
    *,
    width: int = 72,
    windows_per_s: float | None = None,
) -> str:
    """Render a terminal status panel from a service ``status()`` dict.

    ``registry`` (when given) supplies the ``fleet.cluster_load`` /
    ``fleet.violations`` series for sparklines; ``windows_per_s`` is the
    caller-measured serve throughput.  Works identically on a local
    registry (``serve --dashboard``) and on a remote ``/status`` payload
    (``stretch-repro top``), which carries no series.
    """
    metrics = status.get("metrics") or {}
    n_windows = max(int(status.get("n_windows", 0)), 1)
    window = int(status.get("window", 0))
    bar_w = max(width - 36, 8)
    lines = [
        f"─── stretch-repro fleet ─ {status.get('n_servers', '?')} servers "
        f"─ feed {status.get('feed', '?')} ─ policy "
        f"{status.get('policy', '?')}",
        f"window  {window:>4}/{n_windows:<4} "
        f"[{_bar(window / n_windows, bar_w)}] "
        + (f"{windows_per_s:,.1f} win/s" if windows_per_s else ""),
    ]
    # Mode occupancy: status carries bmode/throttled fractions; the
    # registry (when local) carries the full per-mode gauges.
    if registry is not None and "fleet.mode_occupancy.baseline" in registry:
        occupancy = [
            (name, registry.gauge(f"fleet.mode_occupancy.{name}").value)
            for name in ("baseline", "b_mode", "q_mode")
        ]
    else:
        bmode = float(metrics.get("bmode_fraction", 0.0) or 0.0)
        occupancy = [("b_mode", bmode), ("other", 1.0 - bmode)]
    occ = "  ".join(
        f"{name} {float(frac or 0.0):5.1%}" for name, frac in occupancy
    )
    lines.append(f"modes   {occ}")
    lines.append(
        f"qos     violation_rate {float(metrics.get('violation_rate', 0.0)):.4f}"
        f"  mean_tail {float(metrics.get('mean_tail_ms', 0.0)):7.1f} ms"
        f"  throttled {float(metrics.get('throttled_fraction', 0.0)):.3f}"
    )
    load_series = _series_values(registry, "fleet.cluster_load")
    if load_series:
        lines.append(
            f"load    {sparkline(load_series, width - 20)} "
            f"now {load_series[-1]:.2f}"
        )
    viol_series = _series_values(registry, "fleet.violations")
    if viol_series:
        lines.append(
            f"viol    {sparkline(viol_series, width - 20)} "
            f"now {viol_series[-1]:.0f}"
        )
    slo = status.get("slo") or {}
    for spec_name, spec in sorted(slo.items()):
        budget = float(spec.get("budget_remaining", 1.0))
        burns = spec.get("burn", {})
        burn_txt = "  ".join(
            f"{policy}:{float(b.get('fast', 0.0)):.1f}/"
            f"{float(b.get('slow', 0.0)):.1f}x"
            for policy, b in sorted(burns.items())
        )
        flag = " ALERT" if spec.get("alerting") else ""
        lines.append(
            f"slo     {spec_name}: budget [{_bar(budget, bar_w)}] "
            f"{budget:6.1%}  burn {burn_txt}{flag}"
        )
    recorder = status.get("recorder")
    if recorder:
        lines.append(
            f"flight  ring {recorder.get('frames', 0)}/"
            f"{recorder.get('capacity', 0)} windows, "
            f"{recorder.get('captures', 0)} captures, "
            f"{recorder.get('dumps', 0)} dumps"
        )
    if status.get("stopped"):
        lines.append(f"STOPPED ({status.get('stop_reason')})")
    return "\n".join(lines)


class DashboardPrinter:
    """Re-render the dashboard in place on a terminal stream.

    On a TTY each call repaints from the panel's first row (cursor-up +
    clear-to-end); on a plain pipe it prints one panel per ``every``
    windows so logs stay readable.
    """

    def __init__(self, stream, *, every: int = 1, width: int = 72):
        self.stream = stream
        self.every = max(int(every), 1)
        self.width = width
        self._calls = 0
        self._last_lines = 0
        self._tty = bool(getattr(stream, "isatty", lambda: False)())

    def update(
        self, status: dict, registry=None, windows_per_s=None
    ) -> None:
        self._calls += 1
        if self._calls % self.every and not status.get("stopped"):
            return
        panel = render_dashboard(
            status, registry, width=self.width,
            windows_per_s=windows_per_s,
        )
        if self._tty and self._last_lines:
            self.stream.write(f"\x1b[{self._last_lines}A\x1b[J")
        self.stream.write(panel + "\n")
        self.stream.flush()
        self._last_lines = panel.count("\n") + 1
