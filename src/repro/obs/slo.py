"""Fleet SLO engine: declarative objectives, burn rates, error budgets.

The paper's control loop holds a per-window QoS target; an *SLO* states
the fleet-level contract on top of it — "at most 5% of (server, window)
pairs may violate QoS over the day" — and this module scores a live
fleet against that contract incrementally, one
:meth:`~repro.fleet.engine.FleetStepper.step` record at a time:

* :class:`SLOSpec` — a declarative objective: a **violation-rate**
  target (fraction of server-windows violating QoS) or a **tail-latency**
  objective (windows whose mean tail exceeds a bound), plus the alert
  policies evaluated over it;
* :class:`BurnPolicy` — one multi-window burn-rate alert à la the SRE
  workbook: fire when the short (*fast*) **and** long (*slow*) rolling
  windows both burn error budget faster than ``threshold``× the
  sustainable rate; the fast window gates recency (fast reset), the slow
  window gates persistence (no flapping on one bad window);
* :class:`SLOEngine` — the incremental evaluator: per-spec rolling
  windows, day-scale error-budget accounting
  (``budget_remaining <= 0`` ⇒ contract broken), alert edge detection,
  and ``fleet.slo.*`` gauges published into a
  :class:`~repro.obs.metrics.MetricsRegistry`.

Everything is computed from the public per-window aggregates — attaching
an :class:`SLOEngine` never changes fleet results.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from collections import deque

__all__ = [
    "DEFAULT_ALERT_POLICIES",
    "DEFAULT_SLOS",
    "BurnPolicy",
    "SLOEngine",
    "SLOSpec",
    "parse_slo",
]


@dataclass(frozen=True)
class BurnPolicy:
    """One fast/slow burn-rate alert pair.

    ``fast_windows``/``slow_windows`` are rolling window lengths in
    monitoring windows; the alert is *active* while both windows' burn
    rates (observed bad fraction ÷ SLO target) are at or above
    ``threshold``, and it *fires* (one event) on each rising edge.
    """

    name: str
    fast_windows: int
    slow_windows: int
    threshold: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("burn policy needs a name")
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError(
                "need 1 <= fast_windows <= slow_windows, got "
                f"{self.fast_windows}/{self.slow_windows}"
            )
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


#: Day-scaled analogue of the SRE workbook's multiwindow pairs (page on a
#: fast sustained burn, ticket on a slow leak), in 10-minute windows.
DEFAULT_ALERT_POLICIES = (
    BurnPolicy("page", fast_windows=3, slow_windows=9, threshold=10.0),
    BurnPolicy("ticket", fast_windows=12, slow_windows=36, threshold=2.0),
)


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective over the fleet day.

    ``objective="violation_rate"`` counts QoS-violating (server, window)
    pairs against ``target`` (the tolerated fraction — the error
    budget); ``objective="tail"`` counts whole windows whose fleet-mean
    tail latency exceeds ``tail_ms``, with ``target`` the tolerated
    fraction of such windows.
    """

    name: str
    objective: str = "violation_rate"
    target: float = 0.05
    tail_ms: float | None = None
    alerts: tuple[BurnPolicy, ...] = field(default=DEFAULT_ALERT_POLICIES)

    def __post_init__(self) -> None:
        if not re.match(r"^[A-Za-z0-9_.-]+$", self.name or ""):
            raise ValueError(f"bad SLO name {self.name!r}")
        if self.objective not in ("violation_rate", "tail"):
            raise ValueError(
                f"objective must be violation_rate|tail, got "
                f"{self.objective!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.objective == "tail" and (
            self.tail_ms is None or self.tail_ms <= 0
        ):
            raise ValueError("tail objective needs tail_ms > 0")
        if not self.alerts:
            raise ValueError("spec needs at least one alert policy")

    def bad_total(self, record: dict) -> tuple[float, float]:
        """This window's (bad events, total events) under the objective."""
        if self.objective == "violation_rate":
            return float(record["violations"]), float(record["servers"])
        bad = 1.0 if float(record["mean_tail_ms"]) > self.tail_ms else 0.0
        return bad, 1.0


#: The stock fleet SLO ``stretch-repro serve`` tracks unless told otherwise.
DEFAULT_SLOS = (SLOSpec("qos", "violation_rate", 0.05),)


_SLO_RE = re.compile(
    r"^(?P<name>[A-Za-z0-9_.-]+):(?P<objective>violation_rate|tail)"
    r"<(?P<target>[0-9.]+)(?P<ms>ms)?"
    r"(?:@(?P<alerts>[0-9/x.,]+))?$"
)
_ALERT_RE = re.compile(r"^(?P<fast>\d+)/(?P<slow>\d+)x(?P<thr>[0-9.]+)$")


def parse_slo(spec: str) -> SLOSpec:
    """Parse the compact CLI form of an SLO spec.

    ``NAME:OBJECTIVE<TARGET[@FAST/SLOWxTHRESHOLD[,...]]`` — e.g.
    ``qos:violation_rate<0.05`` (default alert pairs),
    ``tail:tail<250ms@3/9x10`` (tail objective, one alert pair; the
    tolerated bad-window fraction defaults to 0.05 for ``tail<...ms``).

    >>> parse_slo("qos:violation_rate<0.02@2/6x5").alerts[0].threshold
    5.0
    """
    match = _SLO_RE.match(spec.strip())
    if not match:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected "
            "NAME:violation_rate<FRACTION or NAME:tail<MSms, optionally "
            "@FAST/SLOWxTHRESHOLD[,...] — e.g. qos:violation_rate<0.05 "
            "or tail:tail<250ms@3/9x10"
        )
    alerts = DEFAULT_ALERT_POLICIES
    if match.group("alerts"):
        parsed = []
        for i, token in enumerate(match.group("alerts").split(",")):
            pair = _ALERT_RE.match(token)
            if not pair:
                raise ValueError(
                    f"bad alert pair {token!r}; expected FAST/SLOWxTHRESHOLD"
                )
            parsed.append(BurnPolicy(
                name=f"alert{i}" if i else "page",
                fast_windows=int(pair.group("fast")),
                slow_windows=int(pair.group("slow")),
                threshold=float(pair.group("thr")),
            ))
        alerts = tuple(parsed)
    if match.group("objective") == "tail":
        if not match.group("ms"):
            raise ValueError(
                f"tail objective takes a latency bound, e.g. tail<250ms "
                f"(got {spec!r})"
            )
        return SLOSpec(
            match.group("name"), "tail", 0.05,
            tail_ms=float(match.group("target")), alerts=alerts,
        )
    return SLOSpec(
        match.group("name"), "violation_rate",
        float(match.group("target")), alerts=alerts,
    )


class _SpecState:
    """Rolling windows + lifetime accounting for one spec."""

    __slots__ = ("spec", "history", "cum_bad", "cum_total", "active",
                 "fired")

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        horizon = max(p.slow_windows for p in spec.alerts)
        self.history: deque[tuple[float, float]] = deque(maxlen=horizon)
        self.cum_bad = 0.0
        self.cum_total = 0.0
        self.active: dict[str, bool] = {p.name: False for p in spec.alerts}
        self.fired: dict[str, int] = {p.name: 0 for p in spec.alerts}

    def burn_rate(self, k: int) -> float:
        """Observed bad fraction over the last ``k`` windows ÷ target."""
        window = list(self.history)[-k:]
        total = sum(t for __, t in window)
        if total <= 0:
            return 0.0
        bad = sum(b for b, __ in window)
        return (bad / total) / self.spec.target


class SLOEngine:
    """Incrementally score fleet windows against a set of SLO specs.

    Feed every :meth:`~repro.fleet.engine.FleetStepper.step` record to
    :meth:`observe`; it returns the alert events that *fired* on this
    window (rising edges only).  ``day_windows`` anchors error-budget
    accounting: the day's budget is ``target × day_windows`` worth of
    bad events (per server for the violation-rate objective), and
    :meth:`status` reports the fraction of it left.
    """

    def __init__(
        self,
        specs=DEFAULT_SLOS,
        *,
        day_windows: int = 144,
        registry=None,
    ):
        specs = tuple(
            parse_slo(s) if isinstance(s, str) else s for s in specs
        )
        if not specs:
            raise ValueError("SLOEngine needs at least one spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        if day_windows < 1:
            raise ValueError("day_windows must be positive")
        self.specs = specs
        self.day_windows = int(day_windows)
        self.registry = registry
        self._states = {spec.name: _SpecState(spec) for spec in specs}
        self.windows_observed = 0

    # -- accounting -------------------------------------------------------

    def budget_consumed(self, name: str) -> float:
        """Fraction of ``name``'s daily error budget consumed so far.

        The budget is ``target`` bad events per observed event, scaled
        to the whole day: consuming at exactly the target rate for the
        full day lands on 1.0; a perfectly clean day consumes 0.0.
        """
        state = self._states[name]
        if state.cum_total <= 0 or self.windows_observed == 0:
            return 0.0
        per_window_total = state.cum_total / self.windows_observed
        allowed = state.spec.target * per_window_total * self.day_windows
        return state.cum_bad / allowed

    def budget_remaining(self, name: str) -> float:
        return 1.0 - self.budget_consumed(name)

    def budget_impact(self, name: str, bad_fraction: float,
                      n_windows: int) -> float:
        """Day-budget fraction a projected horizon would consume.

        ``bad_fraction`` is the horizon's observed/projected bad rate
        (e.g. a what-if query's ``violation_rate``) over ``n_windows``
        windows; the what-if diff column reports
        ``impact(alt) - impact(live)``.
        """
        spec = self._states[name].spec
        return (bad_fraction / spec.target) * (
            int(n_windows) / self.day_windows
        )

    # -- the incremental evaluator ---------------------------------------

    def observe(self, record: dict) -> list[dict]:
        """Account one fleet window; return alert events fired by it."""
        self.windows_observed += 1
        events: list[dict] = []
        for spec in self.specs:
            state = self._states[spec.name]
            bad, total = spec.bad_total(record)
            state.history.append((bad, total))
            state.cum_bad += bad
            state.cum_total += total
            bad_fraction = (
                state.cum_bad / state.cum_total if state.cum_total else 0.0
            )
            remaining = self.budget_remaining(spec.name)
            prefix = f"fleet.slo.{spec.name}"
            if self.registry is not None:
                self.registry.gauge(f"{prefix}.bad_fraction").set(
                    bad_fraction
                )
                self.registry.gauge(f"{prefix}.budget_remaining").set(
                    remaining
                )
            for policy in spec.alerts:
                fast = state.burn_rate(policy.fast_windows)
                slow = state.burn_rate(policy.slow_windows)
                burning = (
                    fast >= policy.threshold and slow >= policy.threshold
                )
                if self.registry is not None:
                    self.registry.gauge(
                        f"{prefix}.burn.{policy.name}.fast"
                    ).set(fast)
                    self.registry.gauge(
                        f"{prefix}.burn.{policy.name}.slow"
                    ).set(slow)
                    self.registry.gauge(
                        f"{prefix}.alert.{policy.name}"
                    ).set(float(burning))
                if burning and not state.active[policy.name]:
                    state.active[policy.name] = True
                    state.fired[policy.name] += 1
                    if self.registry is not None:
                        self.registry.counter(f"{prefix}.alerts").inc()
                    events.append({
                        "type": "slo_alert",
                        "slo": spec.name,
                        "policy": policy.name,
                        "window": int(record["window"]),
                        "hour": float(record["hour"]),
                        "burn_fast": fast,
                        "burn_slow": slow,
                        "threshold": policy.threshold,
                        "fast_windows": policy.fast_windows,
                        "slow_windows": policy.slow_windows,
                        "budget_remaining": remaining,
                    })
                elif state.active[policy.name] and fast < policy.threshold:
                    # Clearing is gated on the *fast* window alone: once
                    # the recent burn is back under threshold the alert
                    # may re-fire later — the slow window would otherwise
                    # latch it for hours.
                    state.active[policy.name] = False
        return events

    def alerting(self, name: str) -> bool:
        return any(self._states[name].active.values())

    def status(self) -> dict:
        """Per-spec snapshot for ``status()`` replies and the dashboard."""
        out: dict[str, dict] = {}
        for spec in self.specs:
            state = self._states[spec.name]
            out[spec.name] = {
                "objective": spec.objective,
                "target": spec.target,
                **({"tail_ms": spec.tail_ms} if spec.tail_ms else {}),
                "bad_fraction": (
                    state.cum_bad / state.cum_total
                    if state.cum_total else 0.0
                ),
                "budget_consumed": self.budget_consumed(spec.name),
                "budget_remaining": self.budget_remaining(spec.name),
                "burn": {
                    policy.name: {
                        "fast": state.burn_rate(policy.fast_windows),
                        "slow": state.burn_rate(policy.slow_windows),
                        "threshold": policy.threshold,
                        "active": state.active[policy.name],
                        "fired": state.fired[policy.name],
                    }
                    for policy in spec.alerts
                },
                "alerting": self.alerting(spec.name),
                "alerts_fired": sum(state.fired.values()),
            }
        return out
