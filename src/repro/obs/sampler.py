"""Interval sampling: per-window performance signals as structured records.

Two samplers cover the stack's two time bases:

* :class:`IntervalSampler` attaches to an :class:`~repro.cpu.smt_core.SMTCore`
  (``core.sampler = IntervalSampler(...)``) and snapshots the measured phase
  every ``window_cycles`` simulated cycles, emitting one
  :class:`WindowSample` per window with the signals the paper's software
  monitor would watch: per-thread UIPC, ROB/LSQ occupancy against the
  current limit registers, the dispatch-stall breakdown, MSHR/MLP occupancy
  and branch/L1 miss rates.  The sampler only *reads* core state, so an
  attached sampler leaves cycles and instruction counts bit-identical to an
  unobserved run; detached (the default), the core pays a single
  ``is None`` check per cycle.

* :class:`ServiceSampler` runs on the wall-clock side of the closed loop:
  each monitoring window it wraps the queueing substrate's tail latency
  (and optionally queue depth and offered load) into a
  :class:`ServiceWindowSample` — the typed observation
  :class:`~repro.core.monitor.StretchMonitor` and
  :class:`~repro.core.adaptive.AdaptiveStretchPolicy` consume — while
  recording the same values into a metrics registry.

``stretch-repro run --metrics FILE`` streams every window record as JSONL:
set :data:`METRICS_ENV` and the samplers attach themselves inside worker
processes too (see :func:`attach_core_observers`).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import active_profiler

__all__ = [
    "METRICS_ENV",
    "WINDOW_ENV",
    "CHECK_ENV",
    "DEFAULT_WINDOW_CYCLES",
    "ThreadWindow",
    "WindowSample",
    "ServiceWindowSample",
    "IntervalSampler",
    "ServiceSampler",
    "JsonlSink",
    "attach_core_observers",
]

#: Environment variable holding the JSONL path for window samples.
METRICS_ENV = "REPRO_OBS_METRICS"
#: Environment variable overriding the sampling window, in cycles.
WINDOW_ENV = "REPRO_OBS_WINDOW"
#: Environment variable enabling per-cycle invariant checking (truthy value).
#: Mirrored from :data:`repro.check.invariants.CHECK_ENV`; kept literal here
#: so the obs layer needs no import from repro.check in the common case.
CHECK_ENV = "REPRO_CHECK"
DEFAULT_WINDOW_CYCLES = 2000


@dataclass(frozen=True)
class ThreadWindow:
    """One hardware thread's signals over one sampling window."""

    thread: int
    instructions: int
    uipc: float
    #: Usage / limit registers at the window boundary (point samples).
    rob_occupancy: int
    rob_limit: int
    lsq_occupancy: int
    lsq_limit: int
    #: Dispatch-stall breakdown over the window (stalled dispatch slots).
    stall_rob: int
    stall_lsq: int
    #: Outstanding data misses at the boundary / mean over the window.
    mshr_occupancy: int
    mlp: float
    branches: int
    branch_mispredicts: int
    branch_miss_rate: float
    loads: int
    l1d_misses: int
    l1d_miss_rate: float
    l1i_misses: int


@dataclass(frozen=True)
class WindowSample:
    """One sampling window of an :class:`SMTCore` measured phase."""

    index: int
    start_cycle: int
    end_cycle: int
    threads: tuple[ThreadWindow, ...]

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def total_uipc(self) -> float:
        return sum(t.uipc for t in self.threads)


@dataclass(frozen=True)
class ServiceWindowSample:
    """One monitoring window of the service-level closed loop.

    This is the per-window observation the Stretch software monitor
    consumes; a bare float still works everywhere one is accepted (it is
    read as the tail latency), keeping pre-obs call sites valid.
    """

    index: int
    tail_latency_ms: float
    mean_queue_depth: float | None = None
    load_fraction: float | None = None


class JsonlSink:
    """Append JSON records, one per line, to a file.

    Records are buffered and flushed in one append-mode write per
    :meth:`flush` call — on POSIX, single ``write()`` calls of line-sized
    payloads keep concurrent writers (engine pool workers) from
    interleaving mid-line.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._buffer: list[str] = []

    def write(self, record: dict) -> None:
        self._buffer.append(json.dumps(record))

    def flush(self) -> int:
        if not self._buffer:
            return 0
        payload = "\n".join(self._buffer) + "\n"
        count = len(self._buffer)
        self._buffer.clear()
        try:
            with open(self.path, "a") as handle:
                handle.write(payload)
        except OSError:
            return 0
        return count


class IntervalSampler:
    """Windowed sampling of an SMT core's measured phase.

    Attach before :meth:`SMTCore.run`::

        core.sampler = IntervalSampler(window_cycles=2000)
        result = core.run(50_000)
        series = core.sampler.samples     # list[WindowSample]

    The core calls :meth:`begin` when its measured phase opens,
    :meth:`take` whenever the cycle counter crosses a window boundary and
    :meth:`finish` when the phase closes (flushing the final partial
    window).  ``sink`` receives one dict per window (tagged with ``meta``),
    ``registry`` gets ``core.window.uipc.t<N>`` time series.
    """

    def __init__(
        self,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        sink: JsonlSink | None = None,
        meta: dict | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if window_cycles < 1:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = window_cycles
        self.sink = sink
        self.meta = dict(meta) if meta else {}
        self.registry = registry
        self.samples: list[WindowSample] = []
        self._start_cycle = 0
        self._prev_cycle = 0
        self._prev: list[dict] = []

    # -- core-facing protocol -------------------------------------------

    def begin(self, core) -> int:
        """Open the measured phase; returns the first window boundary."""
        self.samples = []
        self._start_cycle = core.cycle
        self._prev_cycle = core.cycle
        self._prev = [self._snapshot(core, t) for t in range(core.n_threads)]
        return core.cycle + self.window_cycles

    def take(self, core, cycle: int) -> int:
        """Emit the window ending at ``cycle``; returns the next boundary."""
        window_cycles = cycle - self._prev_cycle
        if window_cycles > 0:
            threads = []
            for t in range(core.n_threads):
                snap = self._snapshot(core, t)
                threads.append(self._delta(core, t, snap, cycle, window_cycles))
                self._prev[t] = snap
            sample = WindowSample(
                index=len(self.samples),
                start_cycle=self._prev_cycle - self._start_cycle,
                end_cycle=cycle - self._start_cycle,
                threads=tuple(threads),
            )
            self.samples.append(sample)
            self._prev_cycle = cycle
            if self.sink is not None:
                self.sink.write({"type": "core_window", **self.meta,
                                 **asdict(sample)})
            if self.registry is not None:
                for tw in sample.threads:
                    self.registry.series(
                        f"core.window.uipc.t{tw.thread}"
                    ).append(sample.end_cycle, tw.uipc)
        return cycle + self.window_cycles

    def finish(self, core) -> None:
        """Close the measured phase, emitting the final partial window."""
        self.take(core, core.cycle)
        if self.sink is not None:
            self.sink.flush()

    # -- snapshots -------------------------------------------------------

    @staticmethod
    def _snapshot(core, t: int) -> dict:
        ts = core._threads[t]
        h = core.hierarchy
        hist = core._mlp_hist[t]
        return {
            "committed": ts.committed,
            "stall_rob": ts.stall_rob,
            "stall_lsq": ts.stall_lsq,
            "branches": ts.branches,
            "mispredicts": ts.mispredicts,
            "loads": h.loads[t],
            "l1d_misses": h.l1d_misses[t],
            "l1i_misses": h.l1i_misses[t],
            "mlp_weight": sum(k * c for k, c in enumerate(hist)),
            "mlp_cycles": sum(hist),
        }

    def _delta(self, core, t: int, snap: dict, cycle: int,
               window_cycles: int) -> ThreadWindow:
        prev = self._prev[t]
        instructions = snap["committed"] - prev["committed"]
        branches = snap["branches"] - prev["branches"]
        mispredicts = snap["mispredicts"] - prev["mispredicts"]
        loads = snap["loads"] - prev["loads"]
        l1d = snap["l1d_misses"] - prev["l1d_misses"]
        mlp_cycles = snap["mlp_cycles"] - prev["mlp_cycles"]
        mlp_weight = snap["mlp_weight"] - prev["mlp_weight"]
        return ThreadWindow(
            thread=t,
            instructions=instructions,
            uipc=instructions / window_cycles,
            rob_occupancy=core.rob.usage(t),
            rob_limit=core.rob.limits[t],
            lsq_occupancy=core.lsq.usage(t),
            lsq_limit=core.lsq.limits[t],
            stall_rob=snap["stall_rob"] - prev["stall_rob"],
            stall_lsq=snap["stall_lsq"] - prev["stall_lsq"],
            mshr_occupancy=core.hierarchy.mshrs.occupancy(t, cycle),
            mlp=mlp_weight / mlp_cycles if mlp_cycles else 0.0,
            branches=branches,
            branch_mispredicts=mispredicts,
            branch_miss_rate=mispredicts / branches if branches else 0.0,
            loads=loads,
            l1d_misses=l1d,
            l1d_miss_rate=l1d / loads if loads else 0.0,
            l1i_misses=snap["l1i_misses"] - prev["l1i_misses"],
        )


class ServiceSampler:
    """Per-window service telemetry feed for the Stretch monitors.

    Wraps each monitoring window's observations into a
    :class:`ServiceWindowSample` and mirrors them into ``registry``
    (``service.tail_latency_ms`` series, ``service.windows`` counter), so
    the monitor's inputs and the metrics pipeline always agree.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 sink: JsonlSink | None = None):
        self.registry = registry
        self.sink = sink
        self.windows = 0

    def observe(
        self,
        tail_latency_ms: float,
        mean_queue_depth: float | None = None,
        load_fraction: float | None = None,
    ) -> ServiceWindowSample:
        sample = ServiceWindowSample(
            index=self.windows,
            tail_latency_ms=tail_latency_ms,
            mean_queue_depth=mean_queue_depth,
            load_fraction=load_fraction,
        )
        self.windows += 1
        registry = self.registry
        if registry is not None:
            registry.counter("service.windows").inc()
            registry.series("service.tail_latency_ms").append(
                sample.index, tail_latency_ms
            )
            if mean_queue_depth is not None:
                registry.series("service.queue_depth").append(
                    sample.index, mean_queue_depth
                )
        if self.sink is not None:
            self.sink.write({"type": "service_window", **asdict(sample)})
        return sample


def attach_core_observers(core, meta: dict | None = None) -> None:
    """Attach env-configured observability hooks to a fresh core.

    Called by the sampling entry points for every core they build; a no-op
    (a few dict lookups) unless ``REPRO_OBS_METRICS``, ``REPRO_OBS_PROFILE``
    and/or ``REPRO_CHECK`` are set — which is how ``stretch-repro run
    --metrics/--profile/--check`` reaches cores constructed inside engine
    worker processes, since children inherit the environment.
    """
    path = os.environ.get(METRICS_ENV)
    if path:
        try:
            window = int(os.environ.get(WINDOW_ENV, DEFAULT_WINDOW_CYCLES))
        except ValueError:
            window = DEFAULT_WINDOW_CYCLES
        tagged = dict(meta) if meta else {}
        policy = getattr(core, "policy", None)
        if policy is not None and hasattr(policy, "describe"):
            tagged.setdefault("fetch_policy", policy.describe())
        core.sampler = IntervalSampler(
            window_cycles=max(window, 1), sink=JsonlSink(path), meta=tagged
        )
    profiler = active_profiler()
    if profiler is not None:
        core.profiler = profiler
    if os.environ.get(CHECK_ENV, "").strip() not in ("", "0"):
        # Imported lazily: repro.check depends on repro.obs, so a module-level
        # import here would be circular, and the common (unchecked) path
        # should not pay for loading the checker at all.
        from repro.check.invariants import InvariantChecker
        from repro.obs.metrics import get_registry

        core.checker = InvariantChecker(registry=get_registry())
