"""Hashable simulation jobs and content-addressed job keys.

A :class:`SimJob` is the unit of work the execution engine schedules: one
``solo`` or ``pair`` sampling run, fully described by workload names, a
:class:`~repro.cpu.config.CoreConfig` and a
:class:`~repro.cpu.sampling.SamplingConfig`.  Jobs are frozen dataclasses,
picklable across process boundaries, and deterministic: all randomness
derives from ``sampling.seed`` through :func:`repro.util.rng.derive_seed`,
so the same job produces bit-identical results on any worker.

The job *key* hashes the full job description — including the workload
profile definitions, not just their names, so profile recalibrations
invalidate stale cache entries — together with the store's cache version.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.cpu.config import CoreConfig
from repro.cpu.sampling import SamplingConfig, sample_colocation, sample_solo
from repro.workloads.registry import get_profile

__all__ = ["SimJob", "job_key"]

#: Job kind -> workload arity.  The ``*_samples`` kinds return the
#: per-sample UIPC vector instead of its mean — the calibration unit of
#: the core-level surrogate (:mod:`repro.cpu.surrogate`), which needs the
#: window-to-window distribution, not just the aggregate.  Keys embed the
#: kind, so sample jobs never collide with the mean-valued entries.
_KINDS = {"solo": 1, "pair": 2, "solo_samples": 1, "pair_samples": 2}


def job_key(
    kind: str,
    workloads: tuple[str, ...],
    config: CoreConfig,
    sampling: SamplingConfig,
    version: int | None = None,
) -> str:
    """Content-address a job description (SHA-256 hex digest).

    Keyed on the full profile definitions (not just names) so that profile
    recalibrations invalidate stale entries, and on the cache version so a
    model change invalidates everything at once.
    """
    if version is None:
        from repro.engine.store import CACHE_VERSION

        version = CACHE_VERSION
    profiles = tuple(repr(get_profile(name)) for name in workloads)
    payload = repr((version, kind, workloads, profiles, config, sampling))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class SimJob:
    """One schedulable simulation: ``solo`` or ``pair`` × workloads × configs."""

    kind: str
    workloads: tuple[str, ...]
    config: CoreConfig
    sampling: SamplingConfig

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            known = "/".join(sorted(_KINDS))
            raise ValueError(f"kind must be one of {known}, got {self.kind!r}")
        if len(self.workloads) != _KINDS[self.kind]:
            raise ValueError(
                f"{self.kind!r} jobs take {_KINDS[self.kind]} workload(s), "
                f"got {self.workloads!r}"
            )

    @classmethod
    def solo(
        cls, workload: str, config: CoreConfig, sampling: SamplingConfig
    ) -> "SimJob":
        """Stand-alone run of ``workload`` (one UIPC value)."""
        return cls("solo", (workload,), config, sampling)

    @classmethod
    def pair(
        cls, ls: str, batch: str, config: CoreConfig, sampling: SamplingConfig
    ) -> "SimJob":
        """Colocated run: thread 0 = ``ls``, thread 1 = ``batch`` (two values)."""
        return cls("pair", (ls, batch), config, sampling)

    @classmethod
    def solo_samples(
        cls, workload: str, config: CoreConfig, sampling: SamplingConfig
    ) -> "SimJob":
        """Stand-alone run returning per-sample UIPCs (``n_samples`` values)."""
        return cls("solo_samples", (workload,), config, sampling)

    @classmethod
    def pair_samples(
        cls, ls: str, batch: str, config: CoreConfig, sampling: SamplingConfig
    ) -> "SimJob":
        """Colocated run returning per-sample UIPCs (thread 0's ``n_samples``
        values followed by thread 1's)."""
        return cls("pair_samples", (ls, batch), config, sampling)

    @property
    def key(self) -> str:
        """Content-addressed key (stable across processes and sessions)."""
        return job_key(self.kind, self.workloads, self.config, self.sampling)

    def run(self) -> tuple[float, ...]:
        """Execute the simulation; mean UIPC per thread, or the per-sample
        UIPC vectors for the ``*_samples`` kinds."""
        if self.kind in ("solo", "solo_samples"):
            results = sample_solo(
                get_profile(self.workloads[0]), self.config, self.sampling
            )
            if self.kind == "solo_samples":
                return tuple(r.threads[0].uipc for r in results)
            return (sum(r.threads[0].uipc for r in results) / len(results),)
        results = sample_colocation(
            get_profile(self.workloads[0]),
            get_profile(self.workloads[1]),
            self.config,
            self.sampling,
        )
        if self.kind == "pair_samples":
            return tuple(r.threads[0].uipc for r in results) + tuple(
                r.threads[1].uipc for r in results
            )
        n = len(results)
        return (
            sum(r.threads[0].uipc for r in results) / n,
            sum(r.threads[1].uipc for r in results) / n,
        )
