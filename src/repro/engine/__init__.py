"""Parallel simulation execution engine.

Every figure in the reproduction decomposes into independent simulation
*jobs* — ``solo`` or ``pair`` runs of a workload (pair) under one
:class:`~repro.cpu.config.CoreConfig` and one
:class:`~repro.cpu.sampling.SamplingConfig`.  This package provides the
machinery to schedule those jobs across worker processes and to memoize
their results durably:

* :mod:`repro.engine.job` — the hashable job model (:class:`SimJob`) and
  content-addressed job keys;
* :mod:`repro.engine.store` — the content-addressed result store with
  atomic writes, corrupt-entry tolerance, a manifest, and stale-version
  garbage collection;
* :mod:`repro.engine.executor` — the process-pool executor with crash
  retry, per-job timeouts, in-flight deduplication, graceful fallback to
  in-process execution, and optional :mod:`repro.obs` hooks (job-lifecycle
  span tracing and phase profiling);
* :mod:`repro.engine.telemetry` — queued/running/done counters and cache
  hit-rate statistics surfaced through the ``stretch-repro`` CLI; per-job
  telemetry records (mode, wall seconds, attempts) additionally persist in
  the store manifest and are rendered by ``stretch-repro inspect``.

Because every job derives all of its randomness from the seed embedded in
its ``SamplingConfig`` (via :func:`repro.util.rng.derive_seed`), results
are bit-identical whether a job runs serially in-process or on any worker
of the pool.
"""

from repro.engine.executor import (
    EngineConfig,
    ExecutionEngine,
    EngineReport,
    JobTimeoutError,
)
from repro.engine.job import SimJob, job_key
from repro.engine.store import (
    CACHE_VERSION,
    ResultStore,
    StoreStats,
    default_store,
    reset_default_stores,
)
from repro.engine.telemetry import EngineStats

__all__ = [
    "CACHE_VERSION",
    "EngineConfig",
    "EngineReport",
    "EngineStats",
    "ExecutionEngine",
    "JobTimeoutError",
    "ResultStore",
    "SimJob",
    "StoreStats",
    "default_store",
    "job_key",
    "reset_default_stores",
]
