"""Engine telemetry: job counters, cache hit rate, wall time.

:class:`EngineStats` is a mutable snapshot the executor updates as jobs
move through the queue; a progress callback receives it after every state
change.  The ``stretch-repro`` CLI renders it through
:class:`repro.util.progress.ProgressPrinter`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters for one :meth:`ExecutionEngine.run_jobs` invocation."""

    workers: int = 1
    #: Jobs handed to ``run_jobs`` (including duplicates).
    submitted: int = 0
    #: Distinct job keys after deduplication.
    unique: int = 0
    #: Duplicate submissions coalesced before scheduling.
    deduplicated: int = 0
    #: Unique jobs answered straight from the result store.
    cache_hits: int = 0
    #: Jobs executed to completion (pool or in-process).
    executed: int = 0
    #: Jobs currently running on pool workers.
    running: int = 0
    #: Jobs executed in-process because no pool was available.
    in_process: int = 0
    #: Resubmissions after a worker-process crash.
    crash_retries: int = 0
    #: Resubmissions after an in-job exception.
    failure_retries: int = 0
    #: Jobs cancelled for exceeding the per-job timeout.
    timeouts: int = 0
    #: Times the worker pool had to be torn down and rebuilt.
    pool_rebuilds: int = 0
    wall_time: float = 0.0

    @property
    def done(self) -> int:
        return self.cache_hits + self.executed

    @property
    def queued(self) -> int:
        return max(self.unique - self.done - self.running, 0)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.unique if self.unique else 0.0

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["done"] = self.done
        payload["queued"] = self.queued
        payload["hit_rate"] = round(self.hit_rate, 4)
        return payload

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        parts = [
            f"{self.unique} jobs",
            f"{self.cache_hits} cached ({self.hit_rate:.0%})",
            f"{self.executed} executed",
        ]
        if self.deduplicated:
            parts.append(f"{self.deduplicated} deduped")
        if self.in_process:
            parts.append(f"{self.in_process} in-process")
        if self.crash_retries or self.failure_retries:
            parts.append(
                f"{self.crash_retries + self.failure_retries} retried"
            )
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuild(s)")
        parts.append(f"{self.wall_time:.1f}s with {self.workers} worker(s)")
        return ", ".join(parts)
