"""Content-addressed result store with atomic writes and GC.

Entries live under ``<cache dir>/v<CACHE_VERSION>/<key>.json`` as JSON
float lists.  All disk writes go through a tempfile + :func:`os.replace`
rename, so a concurrent reader never observes a half-written entry and
concurrent writers of the same key settle on one complete file.  A
truncated or corrupt entry is treated as a cache miss (and removed), never
a crash.

The store layers:

* an in-memory dict (process-local, always on);
* the optional on-disk layer (``REPRO_CACHE_DIR`` override,
  ``REPRO_NO_CACHE`` kill switch);
* in-flight deduplication for :meth:`ResultStore.compute` — concurrent
  callers of the same key block on one computation instead of duplicating
  it;
* a ``manifest.json`` with the cache version, cumulative hit/miss/write
  statistics and per-job telemetry records (how each entry was produced:
  execution mode, wall seconds, attempts — see
  :meth:`ResultStore.record_job_telemetry`), refreshed via
  :meth:`ResultStore.flush_manifest` and rendered by
  ``stretch-repro inspect``;
* :meth:`ResultStore.gc` — evicts entry directories from stale cache
  versions (and pre-engine flat-layout entries).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import tempfile
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "CACHE_VERSION",
    "ResultStore",
    "StoreStats",
    "default_store",
    "reset_default_stores",
]

#: Bump to invalidate on-disk cache entries after model changes.
CACHE_VERSION = 11

#: Most recent per-job telemetry records kept in the manifest.
MANIFEST_JOB_LIMIT = 1000

_VERSION_DIR_RE = re.compile(r"^v(\d+)$")


@dataclass
class StoreStats:
    """Session-local counters for one :class:`ResultStore`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_entries: int = 0
    inflight_waits: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["hits"] = self.hits
        payload["hit_rate"] = round(self.hit_rate, 4)
        return payload


def resolve_cache_dir() -> Path | None:
    """Resolve the on-disk cache root from the environment (None = memory only)."""
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".repro_cache"
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return path


class ResultStore:
    """Content-addressed store for job results (tuples of floats)."""

    def __init__(self, directory: Path | None, version: int = CACHE_VERSION):
        self.directory = Path(directory) if directory is not None else None
        self.version = version
        self.stats = StoreStats()
        self._memory: dict[str, tuple[float, ...]] = {}
        self._lock = threading.Lock()
        self._inflight: dict[str, threading.Event] = {}
        #: Session-local {job key: telemetry record}, merged into the
        #: manifest's ``jobs`` section on :meth:`flush_manifest`.
        self.job_telemetry: dict[str, dict] = {}

    # -- path helpers ---------------------------------------------------

    @property
    def entry_dir(self) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"v{self.version}"

    def _entry_path(self, key: str) -> Path | None:
        entry_dir = self.entry_dir
        return None if entry_dir is None else entry_dir / f"{key}.json"

    # -- read / write ---------------------------------------------------

    def get(self, key: str) -> tuple[float, ...] | None:
        """Look up a key (memory, then disk); corrupt entries are misses."""
        hit = self._memory.get(key)
        if hit is not None:
            self.stats.memory_hits += 1
            return hit
        path = self._entry_path(key)
        if path is None or not path.exists():
            self.stats.misses += 1
            return None
        try:
            values = tuple(float(v) for v in json.loads(path.read_text()))
        except (ValueError, TypeError, OSError):
            # Truncated / interleaved / unreadable entry: drop it and recompute.
            self.stats.corrupt_entries += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.disk_hits += 1
        self._memory[key] = values
        return values

    def put(self, key: str, values: tuple[float, ...]) -> None:
        """Store a result; the disk write is atomic (tempfile + rename)."""
        values = tuple(float(v) for v in values)
        self._memory[key] = values
        self.stats.writes += 1
        path = self._entry_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:16]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(list(values), handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # disk layer is best-effort; memory layer already holds it

    def compute(self, job) -> tuple[float, ...]:
        """Return ``job``'s result, running it at most once per key.

        Concurrent in-process callers of the same key wait for the first
        computation instead of duplicating it (in-flight deduplication);
        cross-process duplication is prevented by the executor's key-level
        scheduling, and the atomic writes make racing writers harmless.
        """
        key = job.key
        while True:
            with self._lock:
                hit = self.get(key)
                if hit is not None:
                    return hit
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
                self.stats.inflight_waits += 1
            event.wait()
        try:
            values = tuple(job.run())
            self.put(key, values)
            return values
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    def clear_memory(self) -> None:
        """Drop the in-memory layer (keeps the disk layer)."""
        self._memory.clear()

    def record_job_telemetry(self, key: str, record: dict) -> None:
        """Attach a telemetry record to a job key (how it was produced).

        Records accumulate in memory and persist into the manifest's
        ``jobs`` section on :meth:`flush_manifest`; the executor writes one
        per unique job (``mode``: pool/serial/in_process/cache_hit,
        ``seconds``, ``tries``, ``ts``).  ``stretch-repro inspect`` renders
        them next to the stored result values.
        """
        self.job_telemetry[key] = dict(record)

    # -- manifest / GC --------------------------------------------------

    @property
    def manifest_path(self) -> Path | None:
        return None if self.directory is None else self.directory / "manifest.json"

    def read_manifest(self) -> dict:
        path = self.manifest_path
        if path is None or not path.exists():
            return {}
        try:
            manifest = json.loads(path.read_text())
        except (ValueError, OSError):
            return {}
        return manifest if isinstance(manifest, dict) else {}

    def flush_manifest(self) -> dict:
        """Merge this session's statistics into ``manifest.json`` atomically."""
        path = self.manifest_path
        if path is None:
            return {}
        manifest = self.read_manifest()
        manifest["cache_version"] = self.version
        # Cumulative counters across sessions.
        manifest["hits"] = manifest.get("hits", 0) + self.stats.hits
        manifest["misses"] = manifest.get("misses", 0) + self.stats.misses
        manifest["writes"] = manifest.get("writes", 0) + self.stats.writes
        manifest["corrupt_entries"] = (
            manifest.get("corrupt_entries", 0) + self.stats.corrupt_entries
        )
        entry_dir = self.entry_dir
        manifest["entries"] = (
            sum(1 for __ in entry_dir.glob("*.json")) if entry_dir and entry_dir.is_dir()
            else 0
        )
        # Per-job telemetry: merge this session's records, newest-first cap.
        jobs = manifest.get("jobs")
        if not isinstance(jobs, dict):
            jobs = {}
        jobs.update(self.job_telemetry)
        if len(jobs) > MANIFEST_JOB_LIMIT:
            newest = sorted(
                jobs.items(), key=lambda kv: kv[1].get("ts", 0), reverse=True
            )[:MANIFEST_JOB_LIMIT]
            jobs = dict(newest)
        manifest["jobs"] = jobs
        try:
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".manifest.", suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(manifest, handle, indent=2)
            os.replace(tmp, path)
        except OSError:
            pass
        # Reset session counters so repeated flushes do not double-count.
        self.stats = StoreStats()
        self.job_telemetry = {}
        return manifest

    def gc(self) -> int:
        """Evict entries from stale cache versions; return the eviction count.

        Removes ``v<N>`` directories with ``N != self.version`` and flat
        ``<key>.json`` files from the pre-engine cache layout.
        """
        if self.directory is None or not self.directory.is_dir():
            return 0
        evicted = 0
        for child in self.directory.iterdir():
            match = _VERSION_DIR_RE.match(child.name)
            if match and child.is_dir():
                if int(match.group(1)) != self.version:
                    evicted += sum(1 for __ in child.glob("*.json"))
                    shutil.rmtree(child, ignore_errors=True)
            elif child.is_file() and child.suffix == ".json" and child.name != "manifest.json":
                # Legacy flat-layout entry (pre content-addressed store).
                try:
                    child.unlink()
                    evicted += 1
                except OSError:
                    pass
        self.flush_manifest()
        return evicted


# ----------------------------------------------------------------------
# Default store (one per resolved cache directory)
# ----------------------------------------------------------------------

_default_stores: dict[Path | None, ResultStore] = {}
_default_lock = threading.Lock()


def default_store() -> ResultStore:
    """The process-wide store for the currently configured cache directory.

    Re-resolves ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` on every call, so
    tests (and long-lived processes) that repoint the cache get an isolated
    store per directory while repeated calls stay cheap.
    """
    directory = resolve_cache_dir()
    with _default_lock:
        store = _default_stores.get(directory)
        if store is None:
            store = ResultStore(directory)
            _default_stores[directory] = store
        return store


def reset_default_stores() -> None:
    """Forget all default stores (test isolation helper)."""
    with _default_lock:
        _default_stores.clear()
