"""Process-pool execution of simulation jobs.

:class:`ExecutionEngine` schedules deduplicated, cache-missing jobs onto a
:class:`concurrent.futures.ProcessPoolExecutor` and writes every result
into a :class:`~repro.engine.store.ResultStore` from the parent process
(single writer; workers only compute).  Guarantees:

* **Determinism** — jobs derive all randomness from their embedded seed,
  so pool results are bit-identical to a serial run.
* **In-flight deduplication** — duplicate keys are coalesced before
  submission; the store additionally coalesces concurrent in-process
  callers.
* **Crash resilience** — a dying worker (OOM kill, segfault, ``os._exit``)
  breaks the pool; the engine rebuilds it and resubmits the affected jobs
  with exponential backoff, up to ``retries`` attempts each.
* **Timeouts** — a job exceeding ``timeout`` seconds gets its pool torn
  down (futures cannot be cancelled once running) and is retried; innocent
  co-scheduled jobs are resubmitted without penalty.
* **Graceful degradation** — if a pool cannot be created at all (restricted
  sandboxes) or keeps breaking, remaining jobs fall back to in-process
  serial execution.
* **Observability** — pass a :class:`~repro.obs.tracer.SpanTracer` and the
  job lifecycle (dedupe → cache lookup → queue → execute → store write,
  plus cache-hit and retry markers) is emitted as Chrome trace events, one
  lane per worker slot; pass a :class:`~repro.obs.profiler.Profiler` and
  the engine phases land in its self-time table.  Each unique job also
  leaves a telemetry record in the store
  (:meth:`~repro.engine.store.ResultStore.record_job_telemetry`).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.store import ResultStore, default_store
from repro.engine.telemetry import EngineStats

__all__ = [
    "EngineConfig",
    "EngineReport",
    "ExecutionEngine",
    "JobTimeoutError",
    "parse_workers",
]

#: Exceptions that mean "the worker process died", not "the job raised".
_POOL_DEATH = (BrokenProcessPool, BrokenPipeError, EOFError)

#: How long one ``wait()`` poll blocks; bounds timeout-detection latency.
_POLL_SECONDS = 0.05

#: Give up on process pools entirely after this many rebuilds.
_MAX_POOL_REBUILDS = 3


class JobTimeoutError(TimeoutError):
    """A job exceeded the per-job timeout on every allowed attempt."""


def parse_workers(value: str | int) -> int:
    """Parse a ``--jobs`` value: a positive integer or ``auto`` (= CPU count)."""
    import os

    if isinstance(value, str) and value.strip().lower() == "auto":
        return os.cpu_count() or 1
    try:
        workers = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"--jobs expects a positive integer or 'auto', got {value!r}")
    if workers < 1:
        raise ValueError(f"--jobs must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class EngineConfig:
    """Tunables for :class:`ExecutionEngine`."""

    workers: int = 1
    #: Per-job wall-time budget in seconds (None = unbounded).
    timeout: float | None = None
    #: Additional attempts after a crash/failure/timeout before giving up.
    retries: int = 2
    #: Base of the exponential backoff sleep between attempts, in seconds.
    backoff: float = 0.1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


@dataclass
class EngineReport:
    """Outcome of one :meth:`ExecutionEngine.run_jobs` call."""

    stats: EngineStats
    #: {job key: result tuple} for every unique job.
    results: dict[str, tuple[float, ...]] = field(default_factory=dict)


@dataclass
class _Attempt:
    job: object
    key: str
    tries: int = 0
    started: float = 0.0
    #: When the attempt (re-)entered the queue, tracer microseconds.
    enqueued_us: float = 0.0
    #: Trace lane (``tid``) of the in-flight execution; 0 = scheduler.
    lane: int = 0


def _run_job(job) -> tuple[float, ...]:
    """Worker-side entry point (module-level for picklability)."""
    return tuple(job.run())


class ExecutionEngine:
    """Schedule simulation jobs across worker processes, backed by a store."""

    def __init__(self, config: EngineConfig | None = None, *,
                 pool_factory: Callable[[int], ProcessPoolExecutor] | None = None):
        self.config = config or EngineConfig()
        self._pool_factory = pool_factory or (
            lambda workers: ProcessPoolExecutor(max_workers=workers)
        )
        # Per-run_jobs observability hooks (run_jobs is not re-entrant).
        self._tracer = None
        self._profiler = None

    # -- public API -----------------------------------------------------

    def run_jobs(
        self,
        jobs,
        store: ResultStore | None = None,
        progress: Callable[[EngineStats], None] | None = None,
        *,
        tracer=None,
        profiler=None,
    ) -> EngineReport:
        """Run every job (deduplicated, cache-aware); results land in the store.

        ``tracer`` (a :class:`~repro.obs.tracer.SpanTracer`) receives the
        job-lifecycle spans; ``profiler`` (a
        :class:`~repro.obs.profiler.Profiler`) accumulates per-phase self
        time.  Both default to off with zero overhead.
        """
        store = store if store is not None else default_store()
        stats = EngineStats(workers=self.config.workers)
        started = time.perf_counter()
        self._tracer = tracer
        self._profiler = profiler
        if tracer is not None:
            tracer.thread_name(0, "engine scheduler")

        def emit() -> None:
            stats.wall_time = time.perf_counter() - started
            if progress is not None:
                progress(stats)

        try:
            return self._run(jobs, store, stats, emit)
        finally:
            self._tracer = None
            self._profiler = None

    def _run(self, jobs, store, stats, emit) -> EngineReport:
        tracer = self._tracer
        prof = self._profiler

        # Deduplicate by content-addressed key (in-flight dedup across workers:
        # one submission per key, no matter how many callers requested it).
        span_start = tracer.now_us() if tracer is not None else 0.0
        unique: dict[str, object] = {}
        with prof.section("engine.dedupe") if prof is not None else nullcontext():
            for job in jobs:
                stats.submitted += 1
                key = job.key
                if key in unique:
                    stats.deduplicated += 1
                else:
                    unique[key] = job
        stats.unique = len(unique)
        if tracer is not None:
            tracer.complete(
                "engine.dedupe", span_start, tracer.now_us() - span_start,
                args={"submitted": stats.submitted, "unique": stats.unique},
            )

        report = EngineReport(stats=stats)
        todo: list[_Attempt] = []
        span_start = tracer.now_us() if tracer is not None else 0.0
        with prof.section("engine.cache_lookup") if prof is not None else nullcontext():
            for key, job in unique.items():
                hit = store.get(key)
                if hit is None:
                    todo.append(_Attempt(job, key))
                else:
                    stats.cache_hits += 1
                    report.results[key] = hit
                    store.record_job_telemetry(key, {
                        "mode": "cache_hit", "seconds": 0.0, "tries": 0,
                        "ts": time.time(),
                    })
                    if tracer is not None:
                        tracer.instant("engine.cache_hit", args={"key": key[:16]})
        if tracer is not None:
            tracer.complete(
                "engine.cache_lookup", span_start,
                tracer.now_us() - span_start,
                args={"hits": stats.cache_hits, "misses": len(todo)},
            )
            now = tracer.now_us()
            for attempt in todo:
                attempt.enqueued_us = now
        emit()

        if todo:
            if self.config.workers <= 1:
                self._run_serial(todo, store, report, emit)
            else:
                self._run_pool(todo, store, report, emit)
        stats.running = 0
        emit()
        return report

    # -- execution paths ------------------------------------------------

    def _close_queue_span(self, attempt: _Attempt) -> None:
        """Emit the enqueue→submit span on the attempt's lane."""
        tracer = self._tracer
        if tracer is None:
            return
        now = tracer.now_us()
        tracer.complete(
            "engine.queue", attempt.enqueued_us, now - attempt.enqueued_us,
            tid=attempt.lane, args={"key": attempt.key[:16]},
        )

    def _requeue(self, attempt: _Attempt, reason: str) -> None:
        """Mark a retry: trace marker + fresh enqueue timestamp."""
        tracer = self._tracer
        if tracer is not None:
            tracer.instant("engine.retry", args={
                "key": attempt.key[:16], "reason": reason, "try": attempt.tries,
            })
            attempt.enqueued_us = tracer.now_us()

    def _run_serial(self, todo, store, report, emit, in_process: bool = False) -> None:
        tracer = self._tracer
        prof = self._profiler
        mode = "in_process" if in_process else "serial"
        if tracer is not None and todo:
            tracer.thread_name(1, "serial executor")
        for attempt in todo:
            attempt.lane = 1
            self._close_queue_span(attempt)
            attempt.started = time.perf_counter()
            span_start = tracer.now_us() if tracer is not None else 0.0
            with prof.section("engine.execute") if prof is not None else nullcontext():
                values = tuple(attempt.job.run())
            if tracer is not None:
                tracer.complete(
                    "engine.execute", span_start, tracer.now_us() - span_start,
                    tid=attempt.lane,
                    args={"key": attempt.key[:16], "mode": mode},
                )
            if in_process:
                report.stats.in_process += 1
            self._record(attempt, values, store, report, emit, mode=mode)

    def _execute_in_process(self, attempt: _Attempt, store, report, emit) -> None:
        """Last-resort execution in the parent process (pool gave up)."""
        report.stats.in_process += 1
        attempt.lane = 0
        attempt.started = time.perf_counter()
        tracer = self._tracer
        span_start = tracer.now_us() if tracer is not None else 0.0
        values = tuple(attempt.job.run())
        if tracer is not None:
            tracer.complete(
                "engine.execute", span_start, tracer.now_us() - span_start,
                tid=0, args={"key": attempt.key[:16], "mode": "in_process"},
            )
        self._record(attempt, values, store, report, emit, mode="in_process")

    def _record(self, attempt: _Attempt, values, store, report, emit,
                mode: str = "pool") -> None:
        tracer = self._tracer
        prof = self._profiler
        span_start = tracer.now_us() if tracer is not None else 0.0
        with prof.section("engine.store_write") if prof is not None else nullcontext():
            store.put(attempt.key, values)
        if tracer is not None:
            tracer.complete(
                "engine.store_write", span_start, tracer.now_us() - span_start,
                tid=attempt.lane, args={"key": attempt.key[:16]},
            )
        store.record_job_telemetry(attempt.key, {
            "mode": mode,
            "seconds": round(time.perf_counter() - attempt.started, 6),
            "tries": attempt.tries + 1,
            "ts": time.time(),
        })
        report.results[attempt.key] = tuple(values)
        report.stats.executed += 1
        emit()

    def _new_pool(self) -> ProcessPoolExecutor | None:
        try:
            return self._pool_factory(self.config.workers)
        except Exception:
            return None

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down hard (running futures cannot be cancelled)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _backoff(self, tries: int) -> None:
        if self.config.backoff > 0:
            time.sleep(min(self.config.backoff * (2 ** max(tries - 1, 0)), 2.0))

    def _run_pool(self, todo, store, report, emit) -> None:
        stats = report.stats
        tracer = self._tracer
        prof = self._profiler
        pending: deque[_Attempt] = deque(todo)
        running: dict[Future, _Attempt] = {}
        # One trace lane per worker slot, reused as executions finish.
        free_lanes = list(range(self.config.workers, 0, -1))
        if tracer is not None:
            for lane in range(1, self.config.workers + 1):
                tracer.thread_name(lane, f"worker-{lane}")

        pool = self._new_pool()
        if pool is None:
            self._run_serial(pending, store, report, emit, in_process=True)
            return

        def requeue_running() -> None:
            """Move every running attempt back to the queue (no penalty)."""
            for att in running.values():
                free_lanes.append(att.lane)
                if tracer is not None:
                    att.enqueued_us = tracer.now_us()
                pending.appendleft(att)
            running.clear()

        def rebuild_pool() -> bool:
            nonlocal pool
            stats.pool_rebuilds += 1
            self._kill_pool(pool)
            requeue_running()
            if stats.pool_rebuilds > _MAX_POOL_REBUILDS:
                pool = None
                return False
            pool = self._new_pool()
            return pool is not None

        try:
            while pending or running:
                # Windowed submission: at most ``workers`` in flight, so a
                # submission timestamp approximates the actual start time.
                while pending and len(running) < self.config.workers:
                    attempt = pending.popleft()
                    attempt.lane = free_lanes.pop() if free_lanes else 0
                    self._close_queue_span(attempt)
                    attempt.started = time.perf_counter()
                    try:
                        future = pool.submit(_run_job, attempt.job)
                    except Exception:
                        # Pool already broken/shut down: rebuild or fall back.
                        free_lanes.append(attempt.lane)
                        if tracer is not None:
                            attempt.enqueued_us = tracer.now_us()
                        pending.appendleft(attempt)
                        if not rebuild_pool():
                            self._run_serial(
                                pending, store, report, emit, in_process=True
                            )
                            return
                        continue
                    running[future] = attempt
                    stats.running = len(running)
                    emit()

                done, __ = wait(
                    set(running), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    attempt = running.pop(future)
                    stats.running = len(running)
                    free_lanes.append(attempt.lane)
                    try:
                        values = future.result()
                    except _POOL_DEATH:
                        broken = True
                        attempt.tries += 1
                        stats.crash_retries += 1
                        self._requeue(attempt, "crash")
                        if attempt.tries > self.config.retries:
                            # Last resort: run the job in this process.
                            self._execute_in_process(attempt, store, report, emit)
                        else:
                            self._backoff(attempt.tries)
                            pending.append(attempt)
                    except Exception:
                        attempt.tries += 1
                        stats.failure_retries += 1
                        self._requeue(attempt, "failure")
                        if attempt.tries > self.config.retries:
                            # Deterministic failure: surface the real error
                            # from an in-process run (or its result, if the
                            # failure was transient).
                            self._execute_in_process(attempt, store, report, emit)
                        else:
                            self._backoff(attempt.tries)
                            pending.append(attempt)
                    else:
                        elapsed = time.perf_counter() - attempt.started
                        if prof is not None:
                            prof.add("engine.execute", elapsed)
                        if tracer is not None:
                            now = tracer.now_us()
                            tracer.complete(
                                "engine.execute", now - elapsed * 1e6,
                                elapsed * 1e6, tid=attempt.lane,
                                args={"key": attempt.key[:16], "mode": "pool"},
                            )
                        self._record(attempt, values, store, report, emit)

                if broken and not rebuild_pool():
                    self._run_serial(pending, store, report, emit, in_process=True)
                    return

                if self.config.timeout is not None and running:
                    now = time.perf_counter()
                    expired = [
                        (future, att)
                        for future, att in running.items()
                        if now - att.started > self.config.timeout
                        and not future.done()
                    ]
                    if expired:
                        for future, att in expired:
                            running.pop(future, None)
                            free_lanes.append(att.lane)
                            att.tries += 1
                            stats.timeouts += 1
                            if att.tries > self.config.retries:
                                raise JobTimeoutError(
                                    f"job {att.key[:16]}… exceeded "
                                    f"{self.config.timeout}s on every attempt"
                                )
                            self._requeue(att, "timeout")
                            pending.append(att)
                        # Running futures cannot be cancelled; replace the pool.
                        if not rebuild_pool():
                            self._run_serial(
                                pending, store, report, emit, in_process=True
                            )
                            return
        finally:
            if pool is not None:
                self._kill_pool(pool)
