"""Branch prediction structures (paper Table II).

A hybrid direction predictor (16K-entry gShare + 4K-entry bimodal, selected
by a 4K-entry chooser) with a 2K-entry tagged BTB.  As in the paper's
baseline core, the *tables* are dynamically shared between hardware threads
(causing cross-thread aliasing, the contention source measured in Figs. 4-5),
while each thread keeps a private global-history register.

A private-per-thread variant (``private=True``) supports the ideal
software-scheduling study (Fig. 13), which models contention-free shared
structures by duplicating them.

The synthetic traces contain no explicit call/return µops, so the
return-address stack of the modeled core (16 entries, private per thread) is
not exercised; see DESIGN.md "known deviations".
"""

from __future__ import annotations

from repro.cpu.config import BranchPredictorConfig

__all__ = ["HybridBranchPredictor", "BranchOutcome"]

_WEAKLY_TAKEN = 2


class _PredictorTables:
    """One set of direction tables + BTB (shared by default, or per thread)."""

    __slots__ = ("gshare", "bimodal", "chooser", "btb_tag", "btb_target",
                 "gshare_mask", "bimodal_mask", "chooser_mask", "btb_mask")

    def __init__(self, config: BranchPredictorConfig):
        self.gshare = bytearray([_WEAKLY_TAKEN] * config.gshare_entries)
        self.bimodal = bytearray([_WEAKLY_TAKEN] * config.bimodal_entries)
        # The chooser starts weakly favoring the bimodal component, which is
        # the component checkpoint warming can meaningfully pre-train.
        self.chooser = bytearray([1] * config.chooser_entries)
        self.btb_tag = [-1] * config.btb_entries
        self.btb_target = [0] * config.btb_entries
        self.gshare_mask = config.gshare_entries - 1
        self.bimodal_mask = config.bimodal_entries - 1
        self.chooser_mask = config.chooser_entries - 1
        self.btb_mask = config.btb_entries - 1


class BranchOutcome:
    """Result of one predict+update step."""

    __slots__ = ("direction_correct", "target_correct")

    def __init__(self, direction_correct: bool, target_correct: bool):
        self.direction_correct = direction_correct
        self.target_correct = target_correct

    @property
    def mispredicted(self) -> bool:
        """True if the front end must be redirected (direction or target wrong)."""
        return not (self.direction_correct and self.target_correct)


class HybridBranchPredictor:
    """Hybrid gShare/bimodal predictor with BTB for a dual-thread core."""

    def __init__(self, config: BranchPredictorConfig, n_threads: int = 2,
                 private: bool = False):
        self.config = config
        self.n_threads = n_threads
        self.private = private
        count = n_threads if private else 1
        self._tables = [_PredictorTables(config) for _ in range(count)]
        self._history = [0] * n_threads
        self._history_mask = (1 << config.history_bits) - 1
        self.lookups = [0] * n_threads
        self.mispredictions = [0] * n_threads

    def _tables_for(self, thread: int) -> _PredictorTables:
        return self._tables[thread if self.private else 0]

    def predict_and_update(
        self, thread: int, pc: int, taken: bool, target: int
    ) -> BranchOutcome:
        """Predict the branch at ``pc``, then train on the actual outcome.

        Returns whether the predicted direction and (for taken branches) the
        BTB-provided target matched reality.
        """
        t = self._tables_for(thread)
        history = self._history[thread]
        pc_idx = pc >> 2

        g_idx = (pc_idx ^ history) & t.gshare_mask
        b_idx = pc_idx & t.bimodal_mask
        c_idx = pc_idx & t.chooser_mask
        g_ctr = t.gshare[g_idx]
        b_ctr = t.bimodal[b_idx]
        use_gshare = t.chooser[c_idx] >= 2
        pred_taken = (g_ctr >= 2) if use_gshare else (b_ctr >= 2)

        direction_correct = pred_taken == taken

        # Train direction tables (saturating 2-bit counters).
        if taken:
            if g_ctr < 3:
                t.gshare[g_idx] = g_ctr + 1
            if b_ctr < 3:
                t.bimodal[b_idx] = b_ctr + 1
        else:
            if g_ctr > 0:
                t.gshare[g_idx] = g_ctr - 1
            if b_ctr > 0:
                t.bimodal[b_idx] = b_ctr - 1
        # Train chooser toward whichever component was right.
        g_right = (g_ctr >= 2) == taken
        b_right = (b_ctr >= 2) == taken
        if g_right != b_right:
            ctr = t.chooser[c_idx]
            if g_right and ctr < 3:
                t.chooser[c_idx] = ctr + 1
            elif b_right and ctr > 0:
                t.chooser[c_idx] = ctr - 1

        self._history[thread] = ((history << 1) | int(taken)) & self._history_mask

        # BTB: only taken branches need a target from the front end.
        target_correct = True
        if taken:
            btb_idx = pc_idx & t.btb_mask
            target_correct = t.btb_tag[btb_idx] == pc and t.btb_target[btb_idx] == target
            t.btb_tag[btb_idx] = pc
            t.btb_target[btb_idx] = target

        self.lookups[thread] += 1
        outcome = BranchOutcome(direction_correct, target_correct)
        if outcome.mispredicted:
            self.mispredictions[thread] += 1
        return outcome

    def install(self, thread: int, pc: int, bias_taken: bool, target: int) -> None:
        """Checkpoint-warm one static branch.

        Saturates the branch's bimodal counter toward its dominant direction
        and installs its taken-target in the BTB — the state a long
        functional warmup (the paper's methodology) would have produced.
        """
        t = self._tables_for(thread)
        pc_idx = pc >> 2
        t.bimodal[pc_idx & t.bimodal_mask] = 3 if bias_taken else 0
        btb_idx = pc_idx & t.btb_mask
        t.btb_tag[btb_idx] = pc
        t.btb_target[btb_idx] = target

    def misprediction_rate(self, thread: int) -> float:
        """Fraction of this thread's branches that redirected the front end."""
        if self.lookups[thread] == 0:
            return 0.0
        return self.mispredictions[thread] / self.lookups[thread]

    def reset_stats(self) -> None:
        """Zero the counters (table state is kept — used at warmup boundary)."""
        self.lookups = [0] * self.n_threads
        self.mispredictions = [0] * self.n_threads
