"""SMT out-of-order core timing simulator substrate.

This package implements the simulated processor of the paper's Table II:
a dual-thread, 6-wide out-of-order SPARC-like core at 2.5 GHz with

* ICOUNT fetch/dispatch thread selection (Tullsen et al.),
* a 192-entry ROB and 64-entry LSQ, partitionable between threads via
  per-thread limit/usage registers (the hardware Stretch builds on),
* 64 KB 8-way banked L1-I and L1-D caches with 10 MSHRs and a
  PC-indexed stride prefetcher,
* a hybrid 16K-gShare + 4K-bimodal branch predictor with a 2K-entry BTB
  and per-thread return-address stacks and history registers,
* an 8 MB NUCA LLC (partitioned per thread, as in the paper) over a mesh,
  backed by 75 ns memory.

Timing is cycle-approximate: a global per-cycle loop arbitrates fetch/dispatch
slots and commit bandwidth, while instruction completion is computed from the
dependency dataflow plus structural constraints (ROB/LSQ occupancy, MSHRs,
functional-unit throughput).  See DESIGN.md §4 for the model and its known
deviations from the paper's Flexus setup.
"""

from repro.cpu.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    PartitionPolicy,
    UncoreConfig,
)
from repro.cpu.fast_core import CORE_ENV, ENGINES, FastCore, make_core, resolve_engine
from repro.cpu.isa import OpClass
from repro.cpu.smt_core import SMTCore, SimulationResult, ThreadResult

# NOTE: repro.cpu.sampling is intentionally not re-exported here: it depends
# on repro.workloads, which itself imports repro.cpu (trace/isa definitions).
# Import it as `from repro.cpu.sampling import ...`.

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "PartitionPolicy",
    "UncoreConfig",
    "OpClass",
    "CORE_ENV",
    "ENGINES",
    "FastCore",
    "make_core",
    "resolve_engine",
    "SMTCore",
    "SimulationResult",
    "ThreadResult",
]
