"""Per-thread simulation statistics and derived metrics.

The figure of merit throughout the paper is **UIPC** — committed application
instructions per cycle (§V-C).  :class:`ThreadResult` also carries the MLP
occupancy histogram used by Fig. 7: the fraction of cycles with at least K
distinct-block data misses in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ThreadResult", "SimulationResult", "MLP_BUCKETS"]

#: Highest tracked concurrent-miss count; deeper occupancies saturate here.
MLP_BUCKETS = 8


@dataclass
class ThreadResult:
    """Measurement-phase statistics for one hardware thread."""

    thread: int
    workload: str
    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    rob_limit: int = 0
    lsq_limit: int = 0
    dispatch_stall_rob: int = 0
    dispatch_stall_lsq: int = 0
    mlp_cycles: list[int] = field(default_factory=lambda: [0] * (MLP_BUCKETS + 1))

    @property
    def uipc(self) -> float:
        """Committed application instructions per cycle (the paper's metric)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1d_mpki(self) -> float:
        return 1000.0 * self.l1d_misses / self.instructions if self.instructions else 0.0

    @property
    def l1i_mpki(self) -> float:
        return 1000.0 * self.l1i_misses / self.instructions if self.instructions else 0.0

    @property
    def branch_misprediction_rate(self) -> float:
        return self.branch_mispredicts / self.branches if self.branches else 0.0

    def mlp_at_least(self, k: int) -> float:
        """Fraction of cycles with >= k distinct-block misses in flight (Fig. 7)."""
        if not 0 <= k <= MLP_BUCKETS:
            raise ValueError(f"k must be in [0, {MLP_BUCKETS}]")
        total = sum(self.mlp_cycles)
        if total == 0:
            return 0.0
        return sum(self.mlp_cycles[k:]) / total


@dataclass
class SimulationResult:
    """Outcome of one simulation run (one or two threads)."""

    cycles: int
    threads: tuple[ThreadResult, ...]

    def thread(self, index: int) -> ThreadResult:
        return self.threads[index]

    @property
    def total_uipc(self) -> float:
        return sum(t.uipc for t in self.threads)
