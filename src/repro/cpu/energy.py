"""First-order core energy model (McPAT-flavored, event-based).

The paper's opening motivation is performance per Watt and per TCO dollar;
its evaluation stops at throughput.  This model closes that loop at first
order so the energy side of a Stretch decision can be examined:

* **dynamic energy** accrues per microarchitectural event — µop execution,
  ROB/LSQ allocation, cache accesses and misses, branch lookups — with
  per-event energies loosely scaled from published 22-32 nm figures;
* **static power** scales with the sizes of the provisioned structures
  (ROB/LSQ entries, cache capacity) and accrues per cycle.  Note that
  Stretch does *not* change total structure sizes — a mode switch moves
  entries between threads — so static power is mode-invariant; what changes
  with a mode is how much *work* each joule buys.

Outputs are joules and watts at the configured clock; absolute values are
order-of-magnitude estimates, and only comparisons between configurations
of the same model are meaningful (the usual McPAT caveat, inherited).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.config import CoreConfig
from repro.cpu.metrics import SimulationResult, ThreadResult

__all__ = ["EnergyParameters", "EnergyBreakdown", "EnergyModel"]

_PJ = 1e-12


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event dynamic energies (pJ) and static-power coefficients."""

    execute_pj: float = 8.0            # base per-µop execute + rename
    rob_entry_pj: float = 1.2          # allocate + release one ROB entry
    lsq_entry_pj: float = 1.5
    l1_access_pj: float = 12.0
    l1_miss_pj: float = 25.0           # fill + tag management
    llc_access_pj: float = 90.0
    memory_access_pj: float = 2200.0
    branch_lookup_pj: float = 3.0
    flush_pj: float = 150.0            # per pipeline flush event
    # Static power coefficients (watts per unit of capacity).
    rob_static_w_per_entry: float = 0.9e-3
    lsq_static_w_per_entry: float = 1.1e-3
    cache_static_w_per_kb: float = 0.35e-3
    base_static_w: float = 0.35        # everything not modeled explicitly

    def __post_init__(self) -> None:
        for name in ("execute_pj", "rob_entry_pj", "l1_access_pj",
                     "memory_access_pj", "base_static_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy accounting for one simulated window."""

    dynamic_j: float
    static_j: float
    cycles: int
    instructions: int
    frequency_ghz: float

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.static_j

    @property
    def seconds(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def watts(self) -> float:
        return self.total_j / self.seconds if self.seconds else 0.0

    @property
    def energy_per_instruction_nj(self) -> float:
        if not self.instructions:
            return 0.0
        return self.total_j / self.instructions * 1e9

    def performance_per_watt(self) -> float:
        """Committed instructions per joule (equivalently IPS per watt)."""
        return self.instructions / self.total_j if self.total_j else 0.0


class EnergyModel:
    """Event-based energy accounting over simulation results."""

    def __init__(self, config: CoreConfig,
                 parameters: EnergyParameters = EnergyParameters()):
        self.config = config
        self.parameters = parameters

    # ------------------------------------------------------------------

    def static_watts(self) -> float:
        """Static power of the provisioned structures (mode-invariant)."""
        p = self.parameters
        c = self.config
        cache_kb = (c.icache.size_bytes + c.dcache.size_bytes) / 1024
        return (
            p.base_static_w
            + c.rob_entries * p.rob_static_w_per_entry
            + c.lsq_entries * p.lsq_static_w_per_entry
            + cache_kb * p.cache_static_w_per_kb
        )

    def _thread_dynamic_j(self, t: ThreadResult) -> float:
        p = self.parameters
        mem_ops = t.loads + t.stores
        llc_accesses = t.l1d_misses + t.l1i_misses
        # Without per-level breakdowns, approximate memory reach as the
        # fraction of LLC accesses that miss a half-capacity partition:
        # the hierarchy reports only L1 misses, so split conservatively.
        memory_accesses = 0.35 * llc_accesses
        events_pj = (
            t.instructions * (p.execute_pj + p.rob_entry_pj)
            + mem_ops * (p.lsq_entry_pj + p.l1_access_pj)
            + t.l1d_misses * p.l1_miss_pj
            + t.l1i_misses * p.l1_miss_pj
            + llc_accesses * p.llc_access_pj
            + memory_accesses * p.memory_access_pj
            + t.branches * p.branch_lookup_pj
            + t.branch_mispredicts * p.flush_pj
        )
        return events_pj * _PJ

    def breakdown(self, result: SimulationResult) -> EnergyBreakdown:
        """Account a whole simulation window (all hardware threads)."""
        dynamic = sum(self._thread_dynamic_j(t) for t in result.threads)
        seconds = result.cycles / (self.config.uncore.frequency_ghz * 1e9)
        return EnergyBreakdown(
            dynamic_j=dynamic,
            static_j=self.static_watts() * seconds,
            cycles=result.cycles,
            instructions=sum(t.instructions for t in result.threads),
            frequency_ghz=self.config.uncore.frequency_ghz,
        )
