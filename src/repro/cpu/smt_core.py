"""Dual-thread SMT out-of-order core timing simulator.

Implements the simulated core of the paper's §V-A:

* every cycle, **thread-selection logic** picks which thread fetches /
  decodes / dispatches, using ICOUNT by default; if the selected thread
  cannot fill the core width, the core switches to the other thread;
* dispatch allocates into the per-thread **ROB and LSQ partitions**
  (limit/usage registers — the structures Stretch reprograms) and is blocked
  when a partition, the MSHR quota, or a functional-unit port is exhausted;
* instruction **completion** is dataflow-driven: ready time is the max of the
  producers' completion times; memory latency comes from the shared cache
  hierarchy; branches resolve at execute and a misprediction redirects the
  thread's front end after the 12-cycle flush penalty;
* **commit** retires up to 6 µops per cycle in order, round-robin between
  threads (the selected thread commits first, the other takes leftover
  bandwidth), freeing ROB/LSQ entries.  The fetch policy makes one selection
  per cycle that governs both commit priority and dispatch-slot ownership.

The model is cycle-approximate rather than cycle-accurate (DESIGN.md §4):
issue-queue scheduling is folded into the dataflow ready times, and
functional-unit contention is enforced at dispatch granularity.  When no
thread can dispatch or commit, the simulator fast-forwards the clock to the
next enabling event (a fill or flush completing), which is exact because all
intervening cycles would be idle.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter as _perf_counter

from repro.cpu.config import CoreConfig, PartitionPolicy
from repro.cpu.fetch import make_fetch_policy
from repro.cpu.branch import HybridBranchPredictor
from repro.cpu.isa import EXEC_LATENCY, OpClass
from repro.cpu.metrics import MLP_BUCKETS, SimulationResult, ThreadResult
from repro.cpu.rob import PartitionedResource
from repro.cpu.trace import Trace, TraceCursor
from repro.cpu.uncore import MemoryHierarchy

__all__ = ["SMTCore", "SimulationResult", "ThreadResult"]

_RING_SIZE = 256  # power of two >= MAX_DEP_DISTANCE
_RING_MASK = _RING_SIZE - 1

_OP_LOAD = int(OpClass.LOAD)
_OP_STORE = int(OpClass.STORE)
_OP_BRANCH = int(OpClass.BRANCH)
_OP_INT_MUL = int(OpClass.INT_MUL)
_OP_FP = int(OpClass.FP)

_LAT_ALU = EXEC_LATENCY[OpClass.INT_ALU]
_LAT_MUL = EXEC_LATENCY[OpClass.INT_MUL]
_LAT_FP = EXEC_LATENCY[OpClass.FP]
_LAT_STORE = EXEC_LATENCY[OpClass.STORE]
_LAT_BRANCH = EXEC_LATENCY[OpClass.BRANCH]


class _ThreadState:
    """Private per-thread microarchitectural state."""

    __slots__ = (
        "cursor", "ring", "seq", "rob_q", "fe_stall_until", "last_fetch_block",
        "committed", "branches", "mispredicts", "stall_rob", "stall_lsq",
        "ghosts", "squash_at",
    )

    def __init__(self, cursor: TraceCursor):
        self.cursor = cursor
        self.ring = [0] * _RING_SIZE
        self.seq = 0
        self.rob_q: deque[tuple[int, bool]] = deque()
        self.fe_stall_until = 0
        self.last_fetch_block = -1
        self.committed = 0
        self.branches = 0
        self.mispredicts = 0
        self.stall_rob = 0
        self.stall_lsq = 0
        # Wrong-path state: ghost µops dispatched past an unresolved
        # mispredicted branch occupy ROB entries until squashed at
        # resolution (squash_at).  This is what lets a miss-bound thread
        # clog a dynamically shared ROB (paper Fig. 11).
        self.ghosts = 0
        self.squash_at = 0

    def reset_stats(self) -> None:
        self.committed = 0
        self.branches = 0
        self.mispredicts = 0
        self.stall_rob = 0
        self.stall_lsq = 0


class SMTCore:
    """A dual-thread (or single-thread) SMT core bound to workload traces."""

    def __init__(self, config: CoreConfig, traces: tuple[Trace, ...]):
        if not 1 <= len(traces) <= 2:
            raise ValueError("SMTCore supports one or two hardware threads")
        self.config = config
        self.n_threads = len(traces)
        self.traces = traces
        self._threads = [_ThreadState(TraceCursor(t)) for t in traces]

        rob_limits, lsq_limits = self._effective_limits(config)
        self.rob = PartitionedResource("ROB", config.rob_entries, rob_limits)
        self.lsq = PartitionedResource("LSQ", config.lsq_entries, lsq_limits)
        self.hierarchy = MemoryHierarchy(config, n_threads=max(self.n_threads, 2))
        self.predictor = HybridBranchPredictor(
            config.branch, n_threads=max(self.n_threads, 2), private=config.private_bp
        )
        self.policy = make_fetch_policy(config.fetch_policy, config.fetch_ratio)
        self.cycle = 0
        self._mlp_hist = [[0] * (MLP_BUCKETS + 1) for _ in range(self.n_threads)]
        self.partition_switches = 0
        #: When set to a list, every dispatched µop appends
        #: ``(thread, seq, op, pc, dispatch, ready, completion)`` — consumed
        #: by :mod:`repro.cpu.pipeview` for waterfall rendering.
        self.event_log: list[tuple[int, int, int, int, int, int, int]] | None = None
        #: Optional :class:`repro.obs.sampler.IntervalSampler`: when set,
        #: the measured phase emits per-window signal samples (UIPC,
        #: occupancies, stall/miss breakdowns).  Detached by default — the
        #: hot loop then pays one ``is None`` check per cycle.
        self.sampler = None
        #: Optional :class:`repro.obs.profiler.Profiler`: when set, the
        #: simulation loop accumulates per-phase self-time (fetch
        #: arbitration, dispatch, wakeup/squash, commit, clock advance).
        self.profiler = None
        #: Optional :class:`repro.check.invariants.InvariantChecker`: when
        #: set, per-cycle conservation laws (ROB/LSQ accounting, monotonic
        #: clock, trace-cursor progress, MSHR quotas) are verified after
        #: every simulated cycle.  Detached by default — one ``is None``
        #: check per cycle, like ``sampler`` and ``profiler``.
        self.checker = None
        self._sample_at: int | None = None

    def _effective_limits(self, config: CoreConfig) -> tuple[tuple[int, ...], tuple[int, ...]]:
        n = self.n_threads if self.n_threads == 2 else 2
        if config.rob_policy is PartitionPolicy.SHARED:
            rob = tuple([config.rob_entries] * n)
            lsq = tuple([config.lsq_entries] * n)
        else:
            rob = tuple(config.rob_limits[:n])
            lsq = tuple(config.lsq_limits[:n])
        return rob, lsq

    # ------------------------------------------------------------------
    # Stretch hardware-software interface
    # ------------------------------------------------------------------

    def set_partitions(self, rob_limits: tuple[int, int], lsq_limits: tuple[int, int]) -> None:
        """Reprogram the ROB/LSQ limit registers (a Stretch mode change).

        Models the drain-and-flush sequence of §IV-C: both threads stop
        dispatching, in-flight µops retire, the limit registers are loaded,
        and both front ends pay the pipeline-flush penalty.
        """
        self._drain()
        self.rob.set_limits(rob_limits)
        self.lsq.set_limits(lsq_limits)
        flush_done = self.cycle + self.config.pipeline_flush_cycles
        for ts in self._threads:
            ts.fe_stall_until = max(ts.fe_stall_until, flush_done)
        self.partition_switches += 1

    def _drain(self) -> None:
        """Retire all in-flight µops without dispatching new ones."""
        width = self.config.width
        # Wrong-path ghosts are squashed immediately by the mode-change flush.
        for t, ts in enumerate(self._threads):
            for __ in range(ts.ghosts):
                self.rob.release(t)
            ts.ghosts = 0
        while any(ts.rob_q for ts in self._threads):
            next_event = None
            budget = width
            for ts in self._threads:
                q = ts.rob_q
                while q and budget and q[0][0] <= self.cycle:
                    self._commit_one(ts)
                    budget -= 1
                if q:
                    head = q[0][0]
                    if next_event is None or head < next_event:
                        next_event = head
            if any(ts.rob_q for ts in self._threads):
                # ``is not None``, not truthiness: an event at cycle 0 is a
                # legitimate event, not "no event".
                self.cycle = (
                    max(self.cycle + 1, next_event)
                    if next_event is not None
                    else self.cycle + 1
                )

    def _commit_one(self, ts: _ThreadState) -> None:
        __, is_mem = ts.rob_q.popleft()
        thread = self._threads.index(ts)
        self.rob.release(thread)
        if is_mem:
            self.lsq.release(thread)
        ts.committed += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        instructions: int,
        warmup_instructions: int = 0,
        max_cycles: int | None = None,
        require_all_threads: bool = False,
    ) -> SimulationResult:
        """Simulate until a thread commits ``instructions`` measured µops.

        By default the measurement window closes when the *first* thread
        reaches the target (both threads' UIPC is measured over the same
        cycle window, which is unbiased and keeps traces from wrapping);
        with ``require_all_threads=True`` the window closes when every
        thread has reached it.

        ``warmup_instructions`` are first committed with statistics discarded
        (cache/predictor state is kept — the paper's functional + detailed
        warmup).  ``max_cycles`` bounds the measured phase as a safety net;
        hitting it raises ``RuntimeError``.
        """
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        if warmup_instructions:
            # Warmup must complete for EVERY thread — otherwise the slower
            # thread starts measurement with cold caches and predictors and
            # its slowdown is overstated.
            self._simulate_until(warmup_instructions, max_cycles=None,
                                 require_all=True)
        # Each run() reports statistics for its own measured window only
        # (microarchitectural state always persists across runs).
        self._reset_measurement()
        start_cycle = self.cycle
        sampler = self.sampler
        if sampler is not None:
            self._sample_at = sampler.begin(self)
        try:
            self._simulate_until(instructions, max_cycles=max_cycles,
                                 require_all=require_all_threads)
        finally:
            self._sample_at = None
            if sampler is not None:
                sampler.finish(self)
        cycles = self.cycle - start_cycle
        return self._collect(cycles)

    def _reset_measurement(self) -> None:
        for ts in self._threads:
            ts.reset_stats()
        self.hierarchy.reset_stats()
        self.predictor.reset_stats()
        self.rob.reset_stats()
        self._mlp_hist = [[0] * (MLP_BUCKETS + 1) for _ in range(self.n_threads)]

    def _collect(self, cycles: int) -> SimulationResult:
        results = []
        h = self.hierarchy
        for t, ts in enumerate(self._threads):
            results.append(
                ThreadResult(
                    thread=t,
                    workload=self.traces[t].name,
                    instructions=ts.committed,
                    cycles=cycles,
                    loads=h.loads[t],
                    stores=h.stores[t],
                    l1d_misses=h.l1d_misses[t],
                    l1i_misses=h.l1i_misses[t],
                    branches=ts.branches,
                    branch_mispredicts=ts.mispredicts,
                    rob_limit=self.rob.limits[t],
                    lsq_limit=self.lsq.limits[t],
                    dispatch_stall_rob=ts.stall_rob,
                    dispatch_stall_lsq=ts.stall_lsq,
                    mlp_cycles=list(self._mlp_hist[t]),
                )
            )
        return SimulationResult(cycles=cycles, threads=tuple(results))

    def _earliest_event(self, cycle: int) -> int | None:
        """Earliest future cycle at which any thread can make progress.

        Considers in-flight completions (ROB heads), front-end refills and
        pending wrong-path squashes.  Returns ``None`` when nothing is
        pending.  A return of ``0`` is a real event (cycle 0), which is why
        callers must test ``is not None`` rather than truthiness.
        """
        next_event = None
        for ts in self._threads:
            if ts.rob_q:
                head = ts.rob_q[0][0]
                if next_event is None or head < next_event:
                    next_event = head
            if ts.fe_stall_until > cycle:
                ev = ts.fe_stall_until
                if next_event is None or ev < next_event:
                    next_event = ev
            if ts.squash_at > cycle:
                ev = ts.squash_at
                if next_event is None or ev < next_event:
                    next_event = ev
        return next_event

    def _simulate_until(
        self, target_committed: int, max_cycles: int | None, require_all: bool = False
    ) -> None:
        """Advance the core until thread(s) commit ``target_committed`` µops."""
        threads = self._threads
        n = self.n_threads
        width = self.config.width
        flush_penalty = self.config.pipeline_flush_cycles
        max_branches = self.config.max_branches_per_fetch
        rob = self.rob
        lsq = self.lsq
        hierarchy = self.hierarchy
        predictor = self.predictor
        policy_order = self.policy.order
        whole_cycle = self.policy.whole_cycle
        mshrs = hierarchy.mshrs
        mlp_hist = self._mlp_hist
        int_alus = self.config.int_alus
        int_muls = self.config.int_muls
        fpus = self.config.fpus
        lsus = self.config.lsus
        deadline = None if max_cycles is None else self.cycle + max_cycles

        base_committed = [ts.committed for ts in threads]
        check = all if require_all else any
        cycle = self.cycle

        # Observability hooks, hoisted so the common (detached) case costs
        # one false branch per cycle and phase.
        sampler = self.sampler
        sample_at = self._sample_at
        checker = self.checker
        prof = self.profiler
        profiling = prof is not None
        if profiling:
            p_squash = p_commit = p_fetch = p_dispatch = p_advance = 0.0
            p_loops = 0

        while True:
            done = check(
                ts.committed - base >= target_committed
                for ts, base in zip(threads, base_committed)
            )
            if done:
                break
            if deadline is not None and cycle >= deadline:
                self.cycle = cycle
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} before committing "
                    f"{target_committed} µops per thread"
                )

            committed_this = 0
            dispatched_this = 0
            if profiling:
                _t = _perf_counter()

            # ---- wrong-path squash: mispredicted branch resolved ----
            for t in range(n):
                ts = threads[t]
                if ts.squash_at and cycle >= ts.squash_at:
                    for __ in range(ts.ghosts):
                        rob.release(t)
                    ts.ghosts = 0
                    # Front-end redirect: refill penalty from resolution.
                    refill = ts.squash_at + flush_penalty
                    if ts.fe_stall_until < refill:
                        ts.fe_stall_until = refill
                    ts.squash_at = 0
            if profiling:
                _now = _perf_counter(); p_squash += _now - _t; _t = _now

            # ---- thread selection ----
            # One policy decision per cycle, made on the start-of-cycle
            # usage registers, governs both commit priority and dispatch
            # slot ownership ("the selected thread commits first", §V-A).
            if n == 2:
                order = policy_order(cycle, [rob.usage(0), rob.usage(1)])
            else:
                order = (0, 0)

            # ---- commit: policy-selected thread first, shared width ----
            budget = width
            first = order[0]
            for t in (first, 1 - first)[:n]:
                ts = threads[t]
                q = ts.rob_q
                while q and budget and q[0][0] <= cycle:
                    __, is_mem = q.popleft()
                    rob.release(t)
                    if is_mem:
                        lsq.release(t)
                    ts.committed += 1
                    budget -= 1
                    committed_this += 1
            if profiling:
                _now = _perf_counter(); p_commit += _now - _t; _t = _now

            # ---- fetch/dispatch ----
            # Slots interleave between the threads: the policy's preferred
            # thread takes even slots, the other odd slots, and any slot the
            # holder cannot use falls through to the other thread.  This
            # models concurrent per-cycle fetch/rename of both threads
            # (ICOUNT2.X-style) rather than strict whole-width priority.
            budget = width
            slots_alu = int_alus
            slots_mul = int_muls
            slots_fpu = fpus
            slots_lsu = lsus
            active = [False, False]
            branch_quota = [max_branches, max_branches]
            for t in order[:n]:
                active[t] = threads[t].fe_stall_until <= cycle
            if profiling:
                _now = _perf_counter(); p_fetch += _now - _t; _t = _now
            turn = 0
            while budget and (active[0] or active[1]):
                # Interleaved slots (ICOUNT2.X) or whole-cycle ownership
                # (fetch throttling) — see FetchPolicy.whole_cycle.
                t = order[0] if whole_cycle else order[turn & 1]
                if not active[t]:
                    t = order[1] if whole_cycle else order[1 - (turn & 1)]
                turn += 1
                ts = threads[t]
                if ts.squash_at > cycle:
                    # Wrong-path fetch: ghost µops occupy ROB entries until
                    # the mispredicted branch resolves and squashes them.
                    if not rob.can_allocate(t):
                        active[t] = False
                        continue
                    rob.allocate(t)
                    ts.ghosts += 1
                    budget -= 1
                    dispatched_this += 1
                    continue
                cursor = ts.cursor
                i = cursor.index
                op = cursor.op[i]
                if not rob.can_allocate(t):
                    ts.stall_rob += 1
                    active[t] = False
                    continue
                is_mem = op == _OP_LOAD or op == _OP_STORE
                if is_mem:
                    if not lsq.can_allocate(t):
                        ts.stall_lsq += 1
                        active[t] = False
                        continue
                    if slots_lsu == 0:
                        active[t] = False
                        continue
                elif op == _OP_BRANCH:
                    if branch_quota[t] == 0 or slots_alu == 0:
                        active[t] = False
                        continue
                elif op == _OP_INT_MUL:
                    if slots_mul == 0:
                        active[t] = False
                        continue
                elif op == _OP_FP:
                    if slots_fpu == 0:
                        active[t] = False
                        continue
                elif slots_alu == 0:
                    active[t] = False
                    continue

                # Instruction-side delivery.
                pc = cursor.pc[i]
                fetch_block = pc >> 6
                if fetch_block != ts.last_fetch_block:
                    ts.last_fetch_block = fetch_block
                    delay = hierarchy.fetch_block(t, pc)
                    if delay:
                        ts.fe_stall_until = cycle + delay
                        active[t] = False
                        continue

                # Dataflow ready time.
                ring = ts.ring
                seq = ts.seq
                ready = cycle
                d = cursor.dep1[i]
                if d:
                    r = ring[(seq - d) & _RING_MASK]
                    if r > ready:
                        ready = r
                d = cursor.dep2[i]
                if d:
                    r = ring[(seq - d) & _RING_MASK]
                    if r > ready:
                        ready = r

                if op == _OP_LOAD:
                    s = cursor.sid[i]
                    latency, __ = hierarchy.load(
                        t, pc if s == 0 else -s, cursor.addr[i], ready
                    )
                    completion = ready + latency
                    slots_lsu -= 1
                elif op == _OP_STORE:
                    s = cursor.sid[i]
                    hierarchy.store(t, pc if s == 0 else -s, cursor.addr[i], ready)
                    completion = ready + _LAT_STORE
                    slots_lsu -= 1
                elif op == _OP_BRANCH:
                    completion = ready + _LAT_BRANCH
                    ts.branches += 1
                    outcome = predictor.predict_and_update(
                        t, pc, cursor.taken[i], cursor.target[i]
                    )
                    branch_quota[t] -= 1
                    slots_alu -= 1
                    if not outcome.direction_correct:
                        # The front end keeps fetching down the wrong path
                        # until the branch resolves at `completion`; the
                        # squash + redirect happens then (see the squash
                        # phase above).
                        ts.mispredicts += 1
                        ts.squash_at = completion
                    elif not outcome.target_correct:
                        # Direction right but BTB missed: the target is
                        # recomputed at decode, costing a front-end bubble
                        # of half the flush depth.
                        ts.mispredicts += 1
                        ts.fe_stall_until = cycle + (flush_penalty // 2)
                        active[t] = False
                elif op == _OP_INT_MUL:
                    completion = ready + _LAT_MUL
                    slots_mul -= 1
                elif op == _OP_FP:
                    completion = ready + _LAT_FP
                    slots_fpu -= 1
                else:
                    completion = ready + _LAT_ALU
                    slots_alu -= 1

                ring[seq & _RING_MASK] = completion
                ts.seq = seq + 1
                rob.allocate(t)
                if is_mem:
                    lsq.allocate(t)
                ts.rob_q.append((completion, is_mem))
                cursor.advance()
                budget -= 1
                dispatched_this += 1
                if self.event_log is not None:
                    self.event_log.append(
                        (t, seq, op, pc, cycle, ready, completion)
                    )
            if profiling:
                _now = _perf_counter(); p_dispatch += _now - _t; _t = _now

            # ---- clock advance (with idle fast-forward) ----
            if dispatched_this == 0 and committed_this == 0:
                next_event = self._earliest_event(cycle)
                # ``is not None``, not truthiness: an enabling event at
                # cycle 0 is a legitimate event, not "no event".
                new_cycle = (
                    max(cycle + 1, next_event)
                    if next_event is not None
                    else cycle + 1
                )
            else:
                new_cycle = cycle + 1

            gap = new_cycle - cycle
            if gap == 1:
                # MLP accounting: occupancy sampled once per cycle.
                for t in range(n):
                    occ = mshrs.occupancy(t, cycle)
                    if occ > MLP_BUCKETS:
                        occ = MLP_BUCKETS
                    mlp_hist[t][occ] += 1
            else:
                # Idle fast-forward: account the skipped cycles exactly as a
                # cycle-by-cycle loop would.  MSHR occupancy drops at every
                # fill retiring inside the gap, so the histogram is built
                # from event-boundary segments rather than weighting the
                # occupancy at the gap start by the whole gap.  Dispatch
                # stalls recur every skipped cycle: a thread blocked on a
                # full ROB/LSQ partition at the gap start stays blocked (no
                # commit, squash or front-end event fires before gap end).
                skipped = gap - 1
                for t in range(n):
                    for span, occ in mshrs.occupancy_segments(t, cycle, new_cycle):
                        if occ > MLP_BUCKETS:
                            occ = MLP_BUCKETS
                        mlp_hist[t][occ] += span
                    ts = threads[t]
                    if ts.fe_stall_until > cycle or ts.squash_at > cycle:
                        continue
                    if not rob.can_allocate(t):
                        ts.stall_rob += skipped
                    else:
                        op = ts.cursor.op[ts.cursor.index]
                        if (op == _OP_LOAD or op == _OP_STORE) and not lsq.can_allocate(t):
                            ts.stall_lsq += skipped
            cycle = new_cycle
            if checker is not None:
                self.cycle = cycle
                checker.on_cycle(self, cycle)
            if profiling:
                p_advance += _perf_counter() - _t
                p_loops += 1
            if sample_at is not None and cycle >= sample_at:
                self.cycle = cycle
                sample_at = sampler.take(self, cycle)

        if profiling:
            prof.add("sim.wakeup_squash", p_squash, p_loops)
            prof.add("sim.commit", p_commit, p_loops)
            prof.add("sim.fetch_arbitration", p_fetch, p_loops)
            prof.add("sim.dispatch", p_dispatch, p_loops)
            prof.add("sim.clock_advance", p_advance, p_loops)
        self.cycle = cycle
