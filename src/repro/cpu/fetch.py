"""Fetch/dispatch thread-selection policies.

The baseline core uses ICOUNT (Tullsen et al. [17]): each cycle the thread
with the fewest in-flight instructions fetches first; if it cannot fill the
core width the other thread takes the remaining slots (paper §V-A).

``StaticRatioPolicy`` implements the fetch-throttling baseline of §VI-B: for
each cycle of fetch priority given to thread 0, thread 1 receives M cycles
(ratio 1:M), mimicking IBM POWER's fetch-priority knob.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["FetchPolicy", "ICountPolicy", "RoundRobinPolicy", "StaticRatioPolicy",
           "make_fetch_policy"]


class FetchPolicy(ABC):
    """Chooses the per-cycle thread priority order for fetch/dispatch.

    ``whole_cycle`` selects the slot-allocation semantics: False (ICOUNT,
    round-robin) interleaves dispatch slots between the threads each cycle
    (ICOUNT2.X-style concurrent fetch); True (fetch throttling) gives the
    preferred thread the entire cycle's slots, the other thread taking only
    what the preferred one cannot use (POWER-style fetch-priority cycles).
    """

    whole_cycle: bool = False

    @abstractmethod
    def order(self, cycle: int, icounts: list[int]) -> tuple[int, int]:
        """Return thread indices in priority order for this cycle."""

    def describe(self) -> str:
        """Compact policy spec for telemetry (``core_window`` metadata)."""
        return type(self).__name__.removesuffix("Policy").lower()


class ICountPolicy(FetchPolicy):
    """Prefer the thread with fewer in-flight instructions (ties alternate)."""

    def order(self, cycle: int, icounts: list[int]) -> tuple[int, int]:
        if icounts[0] < icounts[1]:
            return (0, 1)
        if icounts[1] < icounts[0]:
            return (1, 0)
        return (0, 1) if cycle & 1 else (1, 0)


class RoundRobinPolicy(FetchPolicy):
    """Strict alternation regardless of occupancy."""

    def order(self, cycle: int, icounts: list[int]) -> tuple[int, int]:
        return (0, 1) if cycle & 1 else (1, 0)


class StaticRatioPolicy(FetchPolicy):
    """1:M fetch-priority ratio between thread 0 and thread 1.

    Out of every ``m0 + m1`` cycles, thread 0 has priority in ``m0`` and
    thread 1 in ``m1``.  The deprioritized thread still takes leftover slots
    (fetch throttling controls priority, not admission — which is precisely
    why the paper finds it cannot stop a thread from clogging the ROB).
    """

    whole_cycle = True

    def __init__(self, m0: int, m1: int):
        if m0 <= 0 or m1 <= 0:
            raise ValueError("ratio terms must be positive")
        self.m0 = m0
        self.m1 = m1
        self._period = m0 + m1

    def order(self, cycle: int, icounts: list[int]) -> tuple[int, int]:
        return (0, 1) if (cycle % self._period) < self.m0 else (1, 0)

    def describe(self) -> str:
        return f"ratio {self.m0}:{self.m1}"


def make_fetch_policy(name: str, ratio: tuple[int, int] = (1, 1)) -> FetchPolicy:
    """Instantiate a policy from a :class:`~repro.cpu.config.CoreConfig` spec."""
    if name == "icount":
        return ICountPolicy()
    if name == "round_robin":
        return RoundRobinPolicy()
    if name == "ratio":
        return StaticRatioPolicy(*ratio)
    raise ValueError(f"unknown fetch policy {name!r}")
