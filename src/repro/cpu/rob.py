"""Partitionable back-end resources (ROB, LSQ) with limit/usage registers.

This is the hardware substrate Stretch reprograms (paper §IV-B): each thread
has a *limit register* (maximum entries it may occupy) and a *usage register*
(entries currently allocated).  Every cycle, allocation for a thread is
blocked when usage == limit — the only change Stretch requires over Intel's
equal static partitioning is making the limit registers programmable.

A dynamically shared structure (the paper's Fig. 11 baseline) is expressed by
setting every thread's limit to the full capacity; the global capacity bound
is always enforced in addition to the per-thread limits.
"""

from __future__ import annotations

__all__ = ["PartitionedResource"]


class PartitionedResource:
    """A capacity-limited structure divided between hardware threads."""

    def __init__(self, name: str, capacity: int, limits: tuple[int, ...]):
        if capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        if any(l <= 0 for l in limits):
            raise ValueError(f"{name}: all limits must be positive")
        if any(l > capacity for l in limits):
            raise ValueError(f"{name}: a limit register exceeds capacity {capacity}")
        self.name = name
        self.capacity = capacity
        self._limits = list(limits)
        self._usage = [0] * len(limits)
        self._total = 0
        self.peak_usage = [0] * len(limits)

    @property
    def limits(self) -> tuple[int, ...]:
        return tuple(self._limits)

    @property
    def n_threads(self) -> int:
        return len(self._limits)

    def usage(self, thread: int) -> int:
        """Value of the thread's usage register."""
        return self._usage[thread]

    @property
    def total_usage(self) -> int:
        return self._total

    def can_allocate(self, thread: int) -> bool:
        """True if the thread may allocate one more entry this cycle."""
        return self._usage[thread] < self._limits[thread] and self._total < self.capacity

    def allocate(self, thread: int) -> None:
        """Allocate one entry; raises if the limit or capacity is exhausted."""
        if not self.can_allocate(thread):
            raise RuntimeError(
                f"{self.name}: thread {thread} allocation beyond limit "
                f"(usage={self._usage[thread]}, limit={self._limits[thread]}, "
                f"total={self._total}/{self.capacity})"
            )
        self._usage[thread] += 1
        self._total += 1
        if self._usage[thread] > self.peak_usage[thread]:
            self.peak_usage[thread] = self._usage[thread]

    def release(self, thread: int) -> None:
        """Free one entry at commit."""
        if self._usage[thread] <= 0:
            raise RuntimeError(f"{self.name}: thread {thread} releasing with zero usage")
        self._usage[thread] -= 1
        self._total -= 1

    def set_limits(self, limits: tuple[int, ...]) -> None:
        """Reprogram the limit registers (Stretch mode change).

        The caller (the core) is responsible for draining/flushing so that
        usage fits under the new limits; reprogramming below current usage is
        rejected, mirroring the drain-then-switch hardware sequence.
        """
        if len(limits) != len(self._limits):
            raise ValueError(f"{self.name}: expected {len(self._limits)} limits")
        if any(l <= 0 for l in limits):
            raise ValueError(f"{self.name}: all limits must be positive")
        if any(l > self.capacity for l in limits):
            raise ValueError(f"{self.name}: a limit register exceeds capacity")
        for t, new_limit in enumerate(limits):
            if self._usage[t] > new_limit:
                raise RuntimeError(
                    f"{self.name}: thread {t} usage {self._usage[t]} exceeds new "
                    f"limit {new_limit}; drain before reprogramming"
                )
        self._limits = list(limits)

    def reset_stats(self) -> None:
        """Open a new measurement window.

        Peaks reset to the *current* usage registers, not zero: a window
        opened while entries are in flight must never report a peak below
        the occupancy it can already see.
        """
        self.peak_usage = list(self._usage)

    def __repr__(self) -> str:
        usage = ",".join(str(u) for u in self._usage)
        limits = ",".join(str(l) for l in self._limits)
        return f"PartitionedResource({self.name}, usage=[{usage}], limits=[{limits}])"
