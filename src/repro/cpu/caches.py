"""Set-associative caches and miss-status-holding registers (MSHRs).

Implements the L1-I / L1-D / LLC structures of the paper's Table II.  Caches
use true-LRU replacement; fills are timing-approximate (the line is installed
at access time, while the requester observes the computed fill latency).
The MSHR file bounds per-thread memory-level parallelism — 10 entries,
5 per thread, exactly the structure whose occupancy the paper's Fig. 7 MLP
study measures — and coalesces concurrent requests to the same block.
"""

from __future__ import annotations

from repro.cpu.config import CacheConfig

__all__ = ["SetAssociativeCache", "MSHRFile"]


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Operates on *block addresses* (byte address >> log2(line)).  Each set is
    an ordered list with the MRU block at the end.
    """

    def __init__(self, size_bytes: int, line_bytes: int, ways: int, name: str = "cache"):
        if size_bytes % (line_bytes * ways):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by line*ways "
                f"({line_bytes}*{ways})"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_config(cls, config: CacheConfig, name: str = "cache") -> "SetAssociativeCache":
        return cls(config.size_bytes, config.line_bytes, config.ways, name=name)

    def access(self, block: int) -> bool:
        """Access ``block``; returns True on hit.  Misses install the line."""
        entries = self._sets[block & self._set_mask]
        try:
            entries.remove(block)
        except ValueError:
            self.misses += 1
            if len(entries) >= self.ways:
                del entries[0]
            entries.append(block)
            return False
        self.hits += 1
        entries.append(block)
        return True

    def fill(self, block: int) -> None:
        """Install ``block`` without counting an access (prefetch fills)."""
        entries = self._sets[block & self._set_mask]
        try:
            entries.remove(block)
        except ValueError:
            if len(entries) >= self.ways:
                del entries[0]
        entries.append(block)

    def probe(self, block: int) -> bool:
        """Check residency without perturbing LRU state or statistics."""
        return block in self._sets[block & self._set_mask]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        """Zero counters, keeping cache contents (warmup boundary)."""
        self.hits = 0
        self.misses = 0

    def occupancy(self) -> int:
        """Number of valid lines (for tests / diagnostics)."""
        return sum(len(s) for s in self._sets)


class MSHRFile:
    """Miss-status holding registers with per-thread quotas and coalescing.

    ``acquire`` registers a miss issued at ``now`` that will fill at
    ``now + latency`` (or later, if the thread's MSHR quota is exhausted —
    the request then waits for the earliest in-flight fill to retire, which
    is exactly how a structural MSHR stall backs up a real pipeline).
    Requests to a block already in flight coalesce onto the existing entry.
    """

    def __init__(self, total: int, per_thread: int, n_threads: int = 2):
        if per_thread > total:
            raise ValueError("per-thread MSHR quota exceeds file capacity")
        if total <= 0 or per_thread <= 0:
            raise ValueError("MSHR counts must be positive")
        self.total = total
        self.per_thread = per_thread
        self.n_threads = n_threads
        # In-flight fills: per-thread {block: fill_cycle}.
        self._inflight: list[dict[int, int]] = [dict() for _ in range(n_threads)]
        self.coalesced = [0] * n_threads
        self.stalls = [0] * n_threads

    def _expire(self, thread: int, now: int) -> None:
        table = self._inflight[thread]
        if table:
            done = [b for b, fill in table.items() if fill <= now]
            for b in done:
                del table[b]

    def occupancy(self, thread: int, now: int) -> int:
        """Number of this thread's misses in flight at ``now`` (MLP metric)."""
        self._expire(thread, now)
        return len(self._inflight[thread])

    def occupancy_segments(
        self, thread: int, start: int, end: int
    ) -> list[tuple[int, int]]:
        """Piecewise-constant occupancy over ``[start, end)``.

        Returns ``(cycles, occupancy)`` spans whose lengths sum to
        ``end - start``, splitting at every fill that retires inside the
        window.  This is what lets the core's idle fast-forward account MLP
        per cycle exactly as a cycle-by-cycle loop would, instead of
        weighting the occupancy at ``start`` by the whole gap.
        """
        if end <= start:
            return []
        self._expire(thread, start)
        fills = sorted(self._inflight[thread].values())
        occupancy = len(fills)
        prev = start
        segments: list[tuple[int, int]] = []
        for fill in fills:
            if fill >= end:
                break
            if fill > prev:
                segments.append((fill - prev, occupancy))
                prev = fill
            occupancy -= 1
        if end > prev:
            segments.append((end - prev, occupancy))
        return segments

    def total_occupancy(self, now: int) -> int:
        return sum(self.occupancy(t, now) for t in range(self.n_threads))

    def acquire(self, thread: int, block: int, now: int, latency: int) -> int:
        """Register a miss; return the cycle at which the fill completes."""
        self._expire(thread, now)
        table = self._inflight[thread]
        existing = table.get(block)
        if existing is not None:
            self.coalesced[thread] += 1
            return existing
        start = now
        # Structural stall: wait for the earliest fill if quota or file is full.
        while (
            len(table) >= self.per_thread
            or sum(len(d) for d in self._inflight) >= self.total
        ):
            earliest = min(
                min(d.values()) for d in self._inflight if d
            )
            start = max(start, earliest)
            for t in range(self.n_threads):
                self._expire(t, start)
            self.stalls[thread] += 1
        fill = start + latency
        table[block] = fill
        return fill

    def reset_stats(self) -> None:
        self.coalesced = [0] * self.n_threads
        self.stalls = [0] * self.n_threads
