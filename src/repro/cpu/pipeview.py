"""Pipeline waterfall views — a debugging lens on the timing model.

Records per-µop dispatch/ready/completion events from an :class:`SMTCore`
run and renders them as a monospace waterfall, one µop per row:

.. code-block:: text

    t0 #102 LOAD   |   D--------------------------C      |
    t1 #377 INT_ALU|    D.C                              |

``D`` marks dispatch, ``.``/``-`` the wait-for-operands and execution span,
``C`` completion (``*`` when both collapse onto one column at small
scales).  Reading a waterfall makes window stalls visible: under a
small ROB partition a long `D----...----C` load is followed by rows that
dispatch only after it completes — the mechanism behind Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import OpClass
from repro.cpu.smt_core import SMTCore

__all__ = ["PipeEvent", "record_pipeline", "render_waterfall"]


@dataclass(frozen=True)
class PipeEvent:
    """One dispatched µop's timing."""

    thread: int
    seq: int
    op: OpClass
    pc: int
    dispatch: int
    ready: int
    completion: int

    @property
    def latency(self) -> int:
        return self.completion - self.dispatch


def record_pipeline(
    core: SMTCore, instructions: int, warmup_instructions: int = 0
) -> list[PipeEvent]:
    """Run ``core`` while recording every dispatched µop's timing."""
    core.event_log = []
    try:
        core.run(instructions, warmup_instructions=warmup_instructions,
                 require_all_threads=True)
        events = [
            PipeEvent(thread=t, seq=seq, op=OpClass(op), pc=pc,
                      dispatch=dispatch, ready=ready, completion=completion)
            for t, seq, op, pc, dispatch, ready, completion in core.event_log
        ]
    finally:
        core.event_log = None
    return events


def render_waterfall(
    events: list[PipeEvent],
    max_rows: int = 40,
    width: int = 72,
) -> str:
    """Render up to ``max_rows`` events as a cycle-aligned waterfall."""
    if not events:
        raise ValueError("no pipeline events to render")
    rows = sorted(events, key=lambda e: (e.dispatch, e.thread, e.seq))[:max_rows]
    t0 = min(e.dispatch for e in rows)
    t1 = max(e.completion for e in rows)
    span = max(t1 - t0, 1)
    scale = min(1.0, (width - 1) / span)

    def col(cycle: int) -> int:
        return min(int((cycle - t0) * scale), width - 1)

    lines = [f"cycles {t0}..{t1} ({span} cycles, {scale:.2f} cols/cycle)"]
    for e in rows:
        canvas = [" "] * width
        d, r, c = col(e.dispatch), col(e.ready), col(e.completion)
        for x in range(d, c + 1):
            canvas[x] = "-"
        for x in range(d, min(r, c) + 1):
            canvas[x] = "."
        canvas[d] = "D"
        canvas[c] = "C"
        if d == c:
            # Both markers land on one column at collapsed scale; a plain
            # assignment order would silently hide the dispatch marker.
            canvas[d] = "*"
        lines.append(
            f"t{e.thread} #{e.seq:<6} {e.op.name:<8}|{''.join(canvas)}|"
        )
    return "\n".join(lines)
