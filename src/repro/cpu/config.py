"""Simulated processor configuration (paper Table II).

All structure sizes and latencies default to the values the paper simulates:
a 6-wide dual-thread core at 2.5 GHz with a 192-entry ROB, 64-entry LSQ,
64 KB L1 caches, a hybrid gShare/bimodal predictor, an 8 MB NUCA LLC and
75 ns memory.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

__all__ = [
    "PartitionPolicy",
    "CacheConfig",
    "BranchPredictorConfig",
    "UncoreConfig",
    "CoreConfig",
]


class PartitionPolicy(enum.Enum):
    """How a back-end structure (ROB, LSQ) is divided between hardware threads.

    ``PARTITIONED`` models Intel-style static partitioning with per-thread
    limit registers — the substrate Stretch reprograms.  ``SHARED`` models a
    dynamically shared structure where any thread may occupy any entry
    (evaluated as a baseline in the paper's Fig. 11).
    """

    PARTITIONED = "partitioned"
    SHARED = "shared"


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache with banking and optional MSHRs."""

    size_bytes: int = 64 * 1024
    line_bytes: int = 64
    ways: int = 8
    banks: int = 2
    hit_latency: int = 2
    mshrs: int = 10
    mshrs_per_thread: int = 5

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways * self.banks):
            raise ValueError(
                f"cache geometry does not divide evenly: size={self.size_bytes} "
                f"line={self.line_bytes} ways={self.ways} banks={self.banks}"
            )
        if self.mshrs_per_thread > self.mshrs:
            raise ValueError("per-thread MSHR quota exceeds total MSHRs")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Hybrid predictor: 16K-entry gShare + 4K-entry bimodal, 2K-entry BTB."""

    gshare_entries: int = 16 * 1024
    bimodal_entries: int = 4 * 1024
    chooser_entries: int = 4 * 1024
    btb_entries: int = 2 * 1024
    history_bits: int = 12
    ras_entries: int = 16

    def __post_init__(self) -> None:
        for name in ("gshare_entries", "bimodal_entries", "chooser_entries", "btb_entries"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class UncoreConfig:
    """LLC + NoC + memory model.

    The paper partitions the 8 MB NUCA LLC between the colocated applications
    (via Intel CAT-style way partitioning) to isolate the study from LLC
    contention; ``llc_partitioned=True`` (the default) models the same by
    giving each hardware thread a private half of the LLC.  Setting it to
    False models a fully shared LLC instead — used by the ablation that
    quantifies how much the paper's idealization hides.  The average LLC
    access latency of 28 cycles already includes the mesh traversal.
    """

    llc_size_bytes: int = 8 * 1024 * 1024
    llc_ways: int = 16
    llc_latency: int = 28
    llc_partitioned: bool = True
    memory_latency_ns: float = 75.0
    frequency_ghz: float = 2.5

    @property
    def memory_latency_cycles(self) -> int:
        return int(math.ceil(self.memory_latency_ns * self.frequency_ghz))


@dataclass(frozen=True)
class CoreConfig:
    """Full simulated-core configuration (defaults reproduce paper Table II)."""

    width: int = 6
    rob_entries: int = 192
    lsq_entries: int = 64
    rob_limits: tuple[int, int] = (96, 96)
    lsq_limits: tuple[int, int] = (32, 32)
    rob_policy: PartitionPolicy = PartitionPolicy.PARTITIONED
    pipeline_flush_cycles: int = 12
    fetch_policy: str = "icount"
    fetch_ratio: tuple[int, int] = (1, 1)
    int_alus: int = 4
    int_muls: int = 2
    fpus: int = 3
    lsus: int = 2
    max_branches_per_fetch: int = 1
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(mshrs=10, mshrs_per_thread=5))
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    uncore: UncoreConfig = field(default_factory=UncoreConfig)
    #: Give each hardware thread a private copy of a normally shared
    #: structure.  Used by the per-resource contention studies (Figs. 4-5)
    #: and the ideal-software-scheduling baseline (Fig. 13).
    private_l1i: bool = False
    private_l1d: bool = False
    private_bp: bool = False
    #: Stride prefetching at the L1-D (Table II); disable for ablations.
    enable_prefetcher: bool = True
    #: Execution engine: ``"fast"`` (event-skipping :class:`FastCore`, the
    #: default) or ``"legacy"`` (instrumented per-cycle loop).  Both produce
    #: bit-identical results — enforced by the three-way differential sweep —
    #: so the engine is an implementation choice, not a timing parameter:
    #: it is excluded from ``repr``/equality and therefore from the
    #: content-addressed result-store keys.  Overridable per-process via the
    #: ``REPRO_CORE`` environment variable (see :mod:`repro.cpu.fast_core`).
    engine: str = field(default="fast", repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("core width must be positive")
        if self.engine not in ("fast", "legacy"):
            raise ValueError(f"unknown core engine {self.engine!r}")
        if any(l > self.rob_entries for l in self.rob_limits):
            raise ValueError(
                f"a ROB limit register in {self.rob_limits} exceeds capacity {self.rob_entries}"
            )
        if any(l > self.lsq_entries for l in self.lsq_limits):
            raise ValueError(
                f"an LSQ limit register in {self.lsq_limits} exceeds capacity {self.lsq_entries}"
            )
        if any(l <= 0 for l in self.rob_limits) or any(l <= 0 for l in self.lsq_limits):
            raise ValueError("per-thread limits must be positive")
        if self.fetch_policy not in ("icount", "ratio", "round_robin"):
            raise ValueError(f"unknown fetch policy {self.fetch_policy!r}")
        if self.fetch_ratio[0] <= 0 or self.fetch_ratio[1] <= 0:
            raise ValueError("fetch ratio terms must be positive")

    def with_rob_partition(self, thread0: int, thread1: int) -> "CoreConfig":
        """Return a copy with an N-M ROB split; the LSQ scales proportionally.

        The paper manages the LSQ "in proportion to the ROB" (§IV footnote),
        so a 56-136 ROB skew yields a floor-proportional LSQ split whose
        halves always sum to at most the LSQ capacity.
        """
        if thread0 + thread1 > self.rob_entries:
            raise ValueError(
                f"partition {thread0}+{thread1} exceeds ROB capacity {self.rob_entries}"
            )
        lsq0 = max(1, (thread0 * self.lsq_entries) // self.rob_entries)
        lsq1 = max(1, (thread1 * self.lsq_entries) // self.rob_entries)
        return replace(
            self,
            rob_limits=(thread0, thread1),
            lsq_limits=(lsq0, lsq1),
            rob_policy=PartitionPolicy.PARTITIONED,
        )

    def single_thread(self, rob_entries: int | None = None) -> "CoreConfig":
        """Configuration for an isolated (non-SMT) run with the full machine.

        Used by the paper's ROB-sensitivity study (Fig. 6), which varies the
        ROB of an isolated core from 16 to 192 entries.
        """
        rob = self.rob_entries if rob_entries is None else rob_entries
        if not 1 <= rob <= self.rob_entries:
            raise ValueError(f"single-thread ROB must be in [1, {self.rob_entries}]")
        lsq = max(1, (rob * self.lsq_entries) // self.rob_entries)
        return replace(
            self,
            rob_limits=(rob, 1),
            lsq_limits=(lsq, 1),
            rob_policy=PartitionPolicy.PARTITIONED,
        )
