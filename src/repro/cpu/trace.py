"""Instruction-trace representation and streaming cursor.

A :class:`Trace` stores a fixed-length µop sequence in parallel NumPy arrays
(struct-of-arrays, for compact storage and fast generation).  The simulator
consumes traces through a :class:`TraceCursor`, which replays the sequence
cyclically — matching the paper's sampling methodology, where each simulation
sample observes a short region of a much longer execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cpu.isa import OpClass

__all__ = ["Trace", "TraceCursor"]

_COLUMNS = ("op", "dep1", "dep2", "pc", "addr", "taken", "target", "sid")


@dataclass(frozen=True)
class Trace:
    """A µop stream in struct-of-arrays form.

    Attributes
    ----------
    name:
        Workload name (for reporting).
    op:
        ``uint8`` array of :class:`OpClass` values.
    dep1, dep2:
        Register-dependency distances: µop ``i`` reads the results of µops
        ``i - dep1[i]`` and ``i - dep2[i]``; ``0`` means no dependency.
    pc:
        Instruction program counter (byte address).
    addr:
        Effective byte address for loads/stores, ``0`` otherwise.
    taken:
        Branch outcome (``True`` = taken); meaningful only for branches.
    target:
        Branch target PC; meaningful only for branches.
    sid:
        Stream id for strided memory accesses (``0`` = not part of a stream).
        Stands in for the static instruction identity a PC-indexed stride
        prefetcher would key on (the synthetic trace assigns op classes
        dynamically, so PCs alone cannot carry that correlation).
    """

    name: str
    op: np.ndarray
    dep1: np.ndarray
    dep2: np.ndarray
    pc: np.ndarray
    addr: np.ndarray
    taken: np.ndarray
    target: np.ndarray
    sid: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.op)
        for field_name in ("dep1", "dep2", "pc", "addr", "taken", "target", "sid"):
            arr = getattr(self, field_name)
            if len(arr) != n:
                raise ValueError(
                    f"trace column {field_name!r} has length {len(arr)}, expected {n}"
                )
        if n == 0:
            raise ValueError("trace must contain at least one µop")

    def __len__(self) -> int:
        return len(self.op)

    @property
    def mix(self) -> dict[OpClass, float]:
        """Fraction of µops in each operation class."""
        counts = np.bincount(self.op, minlength=len(OpClass))
        total = float(len(self.op))
        return {cls: counts[cls] / total for cls in OpClass}

    def validate(self) -> None:
        """Check structural invariants (dependencies in range, ops valid)."""
        n = len(self)
        idx = np.arange(n)
        if np.any(self.dep1 > idx) or np.any(self.dep2 > idx):
            raise ValueError("a dependency distance reaches before the trace start")
        if np.any(self.dep1 < 0) or np.any(self.dep2 < 0):
            raise ValueError("dependency distances must be non-negative")
        if np.any(self.op >= len(OpClass)):
            raise ValueError("invalid op class in trace")
        is_mem = (self.op == OpClass.LOAD) | (self.op == OpClass.STORE)
        if np.any(self.addr[~is_mem] != 0):
            raise ValueError("non-memory µops must carry addr == 0")
        if np.any(self.sid[~is_mem] != 0):
            raise ValueError("non-memory µops must carry sid == 0")
        if np.any(self.sid < 0):
            raise ValueError("stream ids must be non-negative")

    # ------------------------------------------------------------------
    # Serialization (compressed .npz)
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the trace as a compressed ``.npz`` archive."""
        columns = {name: getattr(self, name) for name in _COLUMNS}
        np.savez_compressed(Path(path), name=np.array(self.name), **columns)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace previously written by :meth:`save` (validated)."""
        with np.load(Path(path), allow_pickle=False) as data:
            trace = cls(
                name=str(data["name"]),
                **{column: data[column] for column in _COLUMNS},
            )
        trace.validate()
        return trace


class TraceCursor:
    """Cyclic reader over a :class:`Trace`.

    Exposes the trace columns as plain Python lists (attribute access on
    NumPy scalars is an order of magnitude slower in the simulator's
    per-µop hot loop).
    """

    def __init__(self, trace: Trace, start: int = 0):
        self.trace = trace
        self.length = len(trace)
        self.index = start % self.length
        self.consumed = 0
        # Hot-loop friendly copies.
        self.op = trace.op.tolist()
        self.dep1 = trace.dep1.tolist()
        self.dep2 = trace.dep2.tolist()
        self.pc = trace.pc.tolist()
        self.addr = trace.addr.tolist()
        self.taken = trace.taken.tolist()
        self.target = trace.target.tolist()
        self.sid = trace.sid.tolist()

    def peek(self) -> int:
        """Index of the next µop to be consumed."""
        return self.index

    def advance(self) -> int:
        """Consume one µop, returning its index within the trace."""
        i = self.index
        self.index += 1
        if self.index == self.length:
            self.index = 0
        self.consumed += 1
        return i
