"""Fitted UIPC surrogate over the SMT-core sampling simulator.

A full-figure sweep runs hundreds of ``(config, workload, sample)`` core
simulations even at quick fidelity — the remaining cost of every
``fig03``–``fig13`` regeneration and of any search loop that needs fresh
``measure()`` profiles.  For the partitioned-ROB configuration families
those sweeps vary exactly one axis (the thread-0 ROB limit; the LSQ
follows proportionally), so the sweep can be answered by a fitted curve
instead, the same way :mod:`repro.fleet.surrogate` answers per-window
tail queries without a DES run:

* **Calibration** runs the exact sampler at a handful of anchor points of
  the ROB axis — through the content-addressed result store, with the
  experiment's own ``SamplingConfig`` (common random numbers: anchor
  samples reuse the exact tier's per-sample trace seeds), keeping the
  **sorted per-sample UIPCs** at each anchor as an empirical window
  distribution.
* **Prediction** interpolates the anchor means piecewise-linearly, so a
  query *at* an anchor reproduces the exact tier's mean bit-for-bit;
  :meth:`UipcSurrogate.sample` draws window-to-window variation by
  inverse-CDF over deterministic per-(workload, sample) uniforms
  (:func:`repro.cpu.sampling.sample_uniforms`).
* **Validation** replays the exact sampler with *held-out* derived seeds
  at off-anchor midpoints; the worst absolute mean-UIPC error times a
  safety margin is reported as :attr:`UipcSurrogate.error_bound` next to
  every prediction, and ``stretch-repro check --surrogate`` gates the
  empirical error of fresh held-out configurations against it.

Configurations outside the partitioned-ROB family (dynamically shared
ROB, custom LSQ splits) raise :class:`UnsupportedConfigError`; the
fidelity tier falls back to the exact sampler for those, so the surrogate
never silently answers a question it was not fitted for.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from repro.cpu.config import CoreConfig
from repro.cpu.sampling import (
    SamplingConfig,
    evaluate_sample_windows,
    sample_uniforms,
)
from repro.util.rng import derive_seed

__all__ = [
    "UIPC_SURROGATE_VERSION",
    "UnsupportedConfigError",
    "UipcGrid",
    "UipcSurrogate",
    "UipcFitJob",
    "family_axis",
    "family_config_at",
    "axis_scale",
    "calibration_jobs",
    "fit_uipc_surrogate",
]

#: Bump to invalidate cached UIPC-surrogate fits after calibration changes.
UIPC_SURROGATE_VERSION = 1


class UnsupportedConfigError(ValueError):
    """The configuration is outside the partitioned-ROB surrogate family."""


def _scaled(fractions: tuple[float, ...], scale: int) -> tuple[int, ...]:
    """Map axis fractions onto integer ROB entries, deduplicated and sorted."""
    values = sorted({max(1, round(f * scale)) for f in fractions})
    return tuple(v for v in values if v < scale or v == scale)


@dataclass(frozen=True)
class UipcGrid:
    """Calibration design for :func:`fit_uipc_surrogate`.

    Anchor and validation positions are *fractions of the axis scale* —
    the ROB capacity for solo families, the partition total for pair
    families — so one grid serves the stock 192-entry core and the
    double-capacity private-structure configs alike.  The solo anchors
    land exactly on the Fig. 6 sweep's {16, 32, 48, 64, 96, 128, 192}
    points at scale 192; the pair anchors on {32, 56, 96, 136, 160}
    (baseline plus the headline B/Q modes and the extreme skews).
    ``n_val_reps`` exact replays with held-out derived seeds at each
    validation midpoint measure the reported error bound:
    ``error_margin`` times the worst observed validation error, plus
    ``noise_z`` standard errors of the exact reference itself (estimated
    from the anchor window replicates — the reference is a mean of only
    ``n_samples`` windows, so even a perfect fit sees seed-to-seed
    scatter).  Both terms are deliberately conservative: at quick-tier
    sampling the reference noise is heavy-tailed and the max of 8
    validation observations under-estimates its tail — the 50-config
    held-out gate of :mod:`repro.check.surrogate` (run in CI) caught
    plain 1.5x/2.0x/2.5x margins without the noise floor as dishonest,
    with fresh configs up to ~2.7x the pre-margin worst.  Expect
    reported bounds ~2-4x the typical observed error.
    """

    solo_anchors: tuple[float, ...] = (
        1 / 12, 1 / 6, 1 / 4, 1 / 3, 1 / 2, 2 / 3, 1.0
    )
    solo_validation: tuple[float, ...] = (5 / 24, 5 / 12, 7 / 12, 5 / 6)
    pair_anchors: tuple[float, ...] = (1 / 6, 7 / 24, 1 / 2, 17 / 24, 5 / 6)
    pair_validation: tuple[float, ...] = (11 / 48, 19 / 48, 29 / 48, 37 / 48)
    n_val_reps: int = 2
    error_margin: float = 2.5
    noise_z: float = 3.0

    def __post_init__(self) -> None:
        for name in ("solo_anchors", "pair_anchors"):
            if len(getattr(self, name)) < 2:
                raise ValueError(f"{name} needs at least 2 points")
        if not self.solo_validation or not self.pair_validation:
            raise ValueError("validation needs at least 1 point")
        if self.n_val_reps < 1:
            raise ValueError("n_val_reps must be >= 1")
        if self.error_margin < 1.0:
            raise ValueError("error_margin must be >= 1.0")
        if self.noise_z < 0.0:
            raise ValueError("noise_z must be >= 0")

    def anchor_values(self, kind: str, scale: int) -> tuple[int, ...]:
        fractions = self.solo_anchors if kind == "solo" else self.pair_anchors
        values = _scaled(fractions, scale)
        if len(values) < 2:
            raise UnsupportedConfigError(
                f"axis scale {scale} leaves fewer than 2 distinct anchors"
            )
        return values

    def validation_values(self, kind: str, scale: int) -> tuple[int, ...]:
        fractions = (
            self.solo_validation if kind == "solo" else self.pair_validation
        )
        anchors = set(self.anchor_values(kind, scale))
        return tuple(v for v in _scaled(fractions, scale) if v not in anchors)


# ----------------------------------------------------------------------
# Configuration families
# ----------------------------------------------------------------------


def family_axis(kind: str, config: CoreConfig) -> tuple[CoreConfig, int]:
    """Split a config into its surrogate family and ROB-axis value.

    The family is the configuration with the ROB/LSQ partition normalized
    out (solo: the full-capacity single-thread config; pair: the equal
    split of the same partition total); the axis is the thread-0 ROB
    limit.  Raises :class:`UnsupportedConfigError` when the config does
    not round-trip through the paper's proportional-LSQ partitioning —
    e.g. a dynamically shared ROB or a hand-set LSQ split — which the
    fidelity tier treats as "run this one exactly".
    """
    if kind == "solo":
        x = config.rob_limits[0]
        canon = config.single_thread(config.rob_entries)
        if config != canon.single_thread(x):
            raise UnsupportedConfigError(
                f"config is not a proportional single-thread partition "
                f"(limits {config.rob_limits}/{config.lsq_limits})"
            )
        return canon, x
    if kind == "pair":
        t0, t1 = config.rob_limits
        total = t0 + t1
        canon = config.with_rob_partition(total // 2, total - total // 2)
        if config != canon.with_rob_partition(t0, t1):
            raise UnsupportedConfigError(
                f"config is not a proportional ROB partition "
                f"(policy {config.rob_policy}, limits "
                f"{config.rob_limits}/{config.lsq_limits})"
            )
        return canon, t0
    raise ValueError(f"kind must be 'solo' or 'pair', got {kind!r}")


def family_config_at(kind: str, canon: CoreConfig, x: int) -> CoreConfig:
    """The family member at axis value ``x`` (inverse of :func:`family_axis`)."""
    if kind == "solo":
        return canon.single_thread(x)
    total = sum(canon.rob_limits)
    return canon.with_rob_partition(x, total - x)


def axis_scale(kind: str, canon: CoreConfig) -> int:
    """The axis capacity anchor fractions scale against (ROB total)."""
    return canon.rob_entries if kind == "solo" else sum(canon.rob_limits)


# ----------------------------------------------------------------------
# The fitted surrogate
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UipcSurrogate:
    """Fitted per-mode UIPC model for one (workloads, family, sampling).

    ``quantiles`` has shape ``(n_threads, n_anchors, n_samples)`` and is
    sorted along the sample axis — the empirical window-UIPC distribution
    at each ROB-axis anchor.  Means interpolate linearly between anchors
    (and are bit-identical to the exact sampler *at* anchors, since the
    anchors were measured with the experiment's own sampling seeds).
    """

    kind: str
    workloads: tuple[str, ...]
    anchors: tuple[int, ...]
    quantiles: np.ndarray  # (n_threads, n_anchors, n_samples), sorted
    error_bound: float

    @property
    def n_samples(self) -> int:
        return self.quantiles.shape[2]

    @property
    def mean_curve(self) -> np.ndarray:
        """Mean UIPC per anchor — shape (n_threads, n_anchors)."""
        return self.quantiles.mean(axis=2)

    def _check_range(self, xs: np.ndarray) -> None:
        lo, hi = self.anchors[0], self.anchors[-1]
        if np.any(xs < lo) or np.any(xs > hi):
            raise ValueError(
                f"axis value(s) outside the fitted range [{lo}, {hi}]: "
                f"{np.asarray(xs)[(xs < lo) | (xs > hi)].tolist()}"
            )

    def predict(self, x, thread: int = 0) -> float:
        """Predicted mean UIPC at ROB-axis value ``x`` (+- error_bound)."""
        return float(self.predict_many(np.asarray([x]), thread)[0])

    def predict_many(self, xs, thread: int = 0) -> np.ndarray:
        """Vectorized :meth:`predict` over a whole axis grid."""
        xs = np.asarray(xs, dtype=float)
        self._check_range(xs)
        return np.interp(xs, self.anchors, self.mean_curve[thread])

    def sample(self, xs, uniforms, thread: int = 0) -> np.ndarray:
        """Window-to-window UIPC draws by inverse-CDF over ``uniforms``.

        Returns a ``(len(xs), len(uniforms))`` grid; pass the CRN uniforms
        from :func:`repro.cpu.sampling.sample_uniforms` so draws are
        paired across configurations like the exact tier's shared trace
        seeds.
        """
        xs = np.asarray(xs, dtype=float)
        self._check_range(xs)
        return evaluate_sample_windows(
            np.asarray(self.anchors, dtype=float),
            self.quantiles[thread],
            xs,
            uniforms,
        )

    def evaluate_grid(
        self, xs, sampling: SamplingConfig, n_samples: int | None = None
    ) -> np.ndarray:
        """Whole sample grid as one array op — shape (n_threads, n_xs, n).

        Thread ``t``'s uniforms derive from ``(sampling.seed,
        workloads[t], sample)``, mirroring the exact tier's per-workload
        trace-seed convention.
        """
        return np.stack([
            self.sample(
                xs, sample_uniforms(sampling, name, n_samples), thread=t
            )
            for t, name in enumerate(self.workloads)
        ])

    # -- content-addressed persistence ---------------------------------

    def to_values(self) -> tuple[float, ...]:
        """Flatten to a float tuple (the result-store value format)."""
        n_threads, n_anchors, n_samples = self.quantiles.shape
        header = [
            float(n_threads),
            float(n_anchors),
            float(n_samples),
            float(self.error_bound),
        ]
        return tuple(
            header
            + [float(a) for a in self.anchors]
            + [float(v) for v in self.quantiles.ravel()]
        )

    @classmethod
    def from_values(cls, values, workloads) -> "UipcSurrogate":
        values = tuple(values)
        n_threads, n_anchors, n_samples = (int(v) for v in values[:3])
        error_bound = float(values[3])
        cursor = 4
        anchors = tuple(int(v) for v in values[cursor:cursor + n_anchors])
        cursor += n_anchors
        size = n_threads * n_anchors * n_samples
        quantiles = np.array(values[cursor:cursor + size]).reshape(
            n_threads, n_anchors, n_samples
        )
        if cursor + size != len(values):
            raise ValueError("surrogate payload has trailing values")
        workloads = tuple(workloads)
        if len(workloads) != n_threads:
            raise ValueError(
                f"payload has {n_threads} thread(s), got workloads {workloads!r}"
            )
        return cls(
            kind="solo" if n_threads == 1 else "pair",
            workloads=workloads,
            anchors=anchors,
            quantiles=quantiles,
            error_bound=error_bound,
        )


# ----------------------------------------------------------------------
# Calibration through the result store
# ----------------------------------------------------------------------


def _sample_job(kind, workloads, config, sampling):
    from repro.engine.job import SimJob

    if kind == "solo":
        return SimJob.solo_samples(workloads[0], config, sampling)
    return SimJob.pair_samples(workloads[0], workloads[1], config, sampling)


def _mean_job(kind, workloads, config, sampling):
    from repro.engine.job import SimJob

    if kind == "solo":
        return SimJob.solo(workloads[0], config, sampling)
    return SimJob.pair(workloads[0], workloads[1], config, sampling)


def _validation_sampling(sampling: SamplingConfig, rep: int) -> SamplingConfig:
    # Held-out seeds: derived from — but never equal to — the fit seed, so
    # the reported bound covers seed-to-seed sampling variation on top of
    # interpolation error.
    return replace(
        sampling, seed=derive_seed(sampling.seed, "uipc-surrogate-val", rep)
    )


def calibration_jobs(
    kind: str,
    workloads: tuple[str, ...],
    config: CoreConfig,
    sampling: SamplingConfig,
    grid: UipcGrid = UipcGrid(),
) -> list:
    """Every store job a fit needs (for execution-engine pre-warming)."""
    canon, __ = family_axis(kind, config)
    scale = axis_scale(kind, canon)
    jobs = [
        _sample_job(
            kind, workloads, family_config_at(kind, canon, x), sampling
        )
        for x in grid.anchor_values(kind, scale)
    ]
    for v in grid.validation_values(kind, scale):
        for rep in range(grid.n_val_reps):
            jobs.append(_mean_job(
                kind, workloads, family_config_at(kind, canon, v),
                _validation_sampling(sampling, rep),
            ))
    return jobs


def fit_uipc_surrogate(
    kind: str,
    workloads: tuple[str, ...],
    config: CoreConfig,
    sampling: SamplingConfig,
    grid: UipcGrid = UipcGrid(),
    compute=None,
) -> UipcSurrogate:
    """Calibrate a :class:`UipcSurrogate` for ``config``'s family.

    ``compute`` maps a job to its result tuple; it defaults to the
    content-addressed store, so anchors and validation replays memoize
    (and a re-fit after a grid change reuses every overlapping point).
    """
    if compute is None:
        from repro.engine.store import default_store

        compute = default_store().compute
    canon, __ = family_axis(kind, config)
    scale = axis_scale(kind, canon)
    anchors = grid.anchor_values(kind, scale)
    n_threads = 1 if kind == "solo" else 2

    quantiles = np.empty((n_threads, len(anchors), sampling.n_samples))
    for k, x in enumerate(anchors):
        values = compute(_sample_job(
            kind, workloads, family_config_at(kind, canon, x), sampling
        ))
        per_thread = np.asarray(values, dtype=float).reshape(n_threads, -1)
        quantiles[:, k, :] = np.sort(per_thread, axis=1)

    surrogate = UipcSurrogate(
        kind=kind,
        workloads=tuple(workloads),
        anchors=anchors,
        quantiles=quantiles,
        error_bound=0.0,
    )

    # Held-out validation: fresh derived seeds at off-anchor midpoints.
    worst = 0.0
    for v in grid.validation_values(kind, scale):
        member = family_config_at(kind, canon, v)
        for rep in range(grid.n_val_reps):
            exact = compute(_mean_job(
                kind, workloads, member, _validation_sampling(sampling, rep)
            ))
            for t in range(n_threads):
                worst = max(
                    worst, abs(surrogate.predict(v, thread=t) - exact[t])
                )

    # Seed-noise floor: the exact reference is a mean of ``n_samples``
    # windows, so its seed-to-seed standard error is the window std over
    # sqrt(n_samples); the anchor replicates estimate that std directly.
    noise = 0.0
    if sampling.n_samples > 1:
        sigma_mean = (
            quantiles.std(axis=2, ddof=1).mean(axis=1)
            / np.sqrt(sampling.n_samples)
        )
        noise = grid.noise_z * float(sigma_mean.max())
    return replace(
        surrogate, error_bound=worst * grid.error_margin + noise
    )


@dataclass(frozen=True)
class UipcFitJob:
    """Content-addressed surrogate calibration (cacheable, picklable).

    Runs on the execution engine like any simulation job: ``key``
    content-addresses the workloads (full profile definitions), the
    *family* configuration, the sampling config and the calibration grid;
    ``run`` returns the flattened surrogate.  ``config`` must already be
    the family's canonical member (see :func:`family_axis`), so every
    member of a sweep maps to the same fit entry.
    """

    kind: str
    workloads: tuple[str, ...]
    config: CoreConfig
    sampling: SamplingConfig
    grid: UipcGrid = UipcGrid()

    def __post_init__(self) -> None:
        canon, __ = family_axis(self.kind, self.config)
        if canon != self.config:
            raise ValueError(
                "UipcFitJob.config must be the family's canonical member; "
                "use family_axis() to normalize"
            )

    @property
    def key(self) -> str:
        from repro.engine.store import CACHE_VERSION
        from repro.workloads.registry import get_profile

        profiles = tuple(repr(get_profile(name)) for name in self.workloads)
        payload = repr((
            CACHE_VERSION,
            UIPC_SURROGATE_VERSION,
            "uipc-surrogate",
            self.kind,
            self.workloads,
            profiles,
            self.config,
            self.sampling,
            self.grid,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()

    def run(self) -> tuple[float, ...]:
        return fit_uipc_surrogate(
            self.kind, self.workloads, self.config, self.sampling, self.grid
        ).to_values()

    def load(self, values) -> UipcSurrogate:
        """Rehydrate a stored fit result."""
        return UipcSurrogate.from_values(values, self.workloads)
