"""Event-skipping fast execution path for the SMT core (:class:`FastCore`).

``SMTCore._simulate_until`` is the hot loop under every figure harness: a
pure-Python per-cycle scheduler whose cost is dominated by interpreter
overhead — attribute lookups, small-method calls (``rob.can_allocate``,
``cursor.advance``, ``policy.order``, ``hierarchy.load``,
``mshrs.occupancy``) and a generator-expression completion test, paid once
per cycle or per µop.

:class:`FastCore` re-implements the *same* per-cycle machine with an
event-skipping organization:

* **Next-event horizon.** The loop tracks the earliest enabling event
  across both threads — ROB-head completion times, front-end refills
  (``fe_stall_until``), wrong-path squash resolutions (``squash_at``) and
  sampler window edges — and jumps the clock straight to it whenever no
  dispatch is possible, instead of re-running idle cycles.  On top of the
  legacy core's idle fast-forward (which only fires when *nothing* happened
  in a cycle), FastCore also **parks** after commit-only cycles: when µops
  retired but no thread could dispatch and commit bandwidth was not
  exhausted, every cycle until the next event is provably identical, so the
  clock jumps there directly.
* **Batched gap accounting.** Cycles inside a jump are accounted in closed
  form: the MLP histogram is rebuilt from the piecewise-constant
  :meth:`~repro.cpu.caches.MSHRFile.occupancy_segments` spans (splitting at
  every fill that retires inside the gap), and dispatch-stall counters
  accrue once per skipped cycle for threads pinned on a full ROB/LSQ
  partition — exactly what a cycle-by-cycle loop would have recorded.
* **Inlined commit/dispatch.** Inside each stepped cycle the ROB/LSQ
  limit-register checks, trace-cursor advance, ring-buffer dataflow
  lookups, ICOUNT/round-robin/ratio thread selection, the L1-D/L1-I hit
  paths (including LLC fills, stride-prefetcher training and the MSHR
  allocate/coalesce fast path) and MSHR occupancy sampling are all inlined;
  the loop holds the usage registers and cursor positions in locals and
  writes them back at observation points (invariant checker, interval
  sampler, loop exit).

The contract — enforced by the three-way sweep in
:mod:`repro.check.differential` — is **bit-identical**
:class:`~repro.cpu.metrics.SimulationResult`\\ s with both the legacy
``SMTCore`` loop and the unoptimized
:class:`~repro.check.reference.ReferenceCore`: every counter, cycle count
and histogram bucket.  Subdividing an idle gap is timing-neutral
(re-attempting dispatch mid-gap reproduces the decision made at the gap
start, because no state changes between events), which is why FastCore may
additionally stop at sampler window edges without perturbing results.

Engine selection: :func:`make_core` builds the core every sampling entry
point uses, honoring ``CoreConfig.engine`` (default ``"fast"``) and the
``REPRO_CORE`` environment variable (``legacy`` falls back to the
instrumented per-cycle loop; the variable is inherited by
:mod:`repro.engine` pool workers).  When a
:class:`~repro.obs.profiler.Profiler` is attached, FastCore delegates to
the legacy loop so the per-phase self-time breakdown stays meaningful —
results are bit-identical either way.
"""

from __future__ import annotations

import os

from repro.cpu.config import CoreConfig
from repro.cpu.fetch import ICountPolicy, RoundRobinPolicy, StaticRatioPolicy
from repro.cpu.metrics import MLP_BUCKETS
from repro.cpu.prefetcher import _Entry as _PFEntry
from repro.cpu.smt_core import (
    SMTCore,
    _LAT_ALU,
    _LAT_BRANCH,
    _LAT_FP,
    _LAT_MUL,
    _LAT_STORE,
    _OP_BRANCH,
    _OP_FP,
    _OP_INT_MUL,
    _OP_LOAD,
    _OP_STORE,
    _RING_MASK,
)
from repro.cpu.trace import Trace
from repro.cpu.uncore import _THREAD_TAG_SHIFT

__all__ = ["CORE_ENV", "ENGINES", "FastCore", "make_core", "resolve_engine"]

#: Environment variable overriding ``CoreConfig.engine`` (``fast``/``legacy``).
CORE_ENV = "REPRO_CORE"
#: Valid execution-engine names.
ENGINES = ("fast", "legacy")


def resolve_engine(config: CoreConfig | None = None) -> str:
    """Effective core engine: ``REPRO_CORE`` wins, else ``config.engine``.

    The environment override is what CI and ad-hoc A/B runs set; it reaches
    :mod:`repro.engine` pool workers through the inherited environment, so
    one setting flips every core in a run.
    """
    env = os.environ.get(CORE_ENV, "").strip().lower()
    if env:
        if env not in ENGINES:
            raise ValueError(f"{CORE_ENV} must be one of {ENGINES}, got {env!r}")
        return env
    return config.engine if config is not None else "fast"


def make_core(config: CoreConfig, traces: tuple[Trace, ...]) -> SMTCore:
    """Build the configured core implementation for ``traces``.

    Every sampling entry point goes through here, so ``CoreConfig.engine``
    / ``REPRO_CORE`` select the execution path process-wide — including
    inside engine pool workers.
    """
    if resolve_engine(config) == "fast":
        return FastCore(config, traces)
    return SMTCore(config, traces)


class FastCore(SMTCore):
    """Event-skipping twin of :class:`SMTCore` (bit-identical results)."""

    def __init__(self, config: CoreConfig, traces: tuple[Trace, ...]):
        super().__init__(config, traces)
        #: When set to a list, every multi-cycle clock jump appends
        #: ``(from_cycle, to_cycle, pending_events)`` — consumed by the
        #: event-horizon property tests; ``None`` (default) costs one
        #: ``is None`` test per jump.
        self.jump_log: list[tuple[int, int, tuple[int, ...]]] | None = None
        # Fetch-block pre-decode: ``pc >> 6`` is a pure function of the
        # (immutable) trace and is compared on every dispatched µop, so it
        # is computed once, vectorized — lazily, at the first simulate call.
        self._fbs: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------

    def pending_events(self, cycle: int) -> list[int]:
        """Sorted event horizon: enabling events the clock may not pass.

        Candidates per thread: the ROB head's completion (first commit),
        the front-end refill (``fe_stall_until``) and the wrong-path squash
        resolution (``squash_at``), the latter two only while still in the
        future; plus the next sampler window edge when an
        :class:`~repro.obs.sampler.IntervalSampler` is attached.  The jump
        logic targets the minimum of these; the sorted list exists for
        introspection and as the property-test oracle.
        """
        events = []
        for ts in self._threads:
            if ts.rob_q:
                events.append(ts.rob_q[0][0])
            if ts.fe_stall_until > cycle:
                events.append(ts.fe_stall_until)
            if ts.squash_at > cycle:
                events.append(ts.squash_at)
        if self._sample_at is not None:
            events.append(self._sample_at)
        return sorted(events)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _simulate_until(
        self, target_committed: int, max_cycles: int | None, require_all: bool = False
    ) -> None:
        if self.profiler is not None:
            # Per-phase profiling instruments the legacy loop (bit-identical
            # results), keeping the sim.* self-time categories meaningful.
            return SMTCore._simulate_until(
                self, target_committed, max_cycles, require_all
            )
        if self._fbs is None:
            self._fbs = [(tr.pc >> 6).tolist() for tr in self.traces]

        threads = self._threads
        n = self.n_threads
        n2 = n == 2
        config = self.config
        width = config.width
        flush_penalty = config.pipeline_flush_cycles
        half_flush = flush_penalty // 2
        max_branches = config.max_branches_per_fetch
        int_alus = config.int_alus
        int_muls = config.int_muls
        fpus = config.fpus
        lsus = config.lsus
        buckets = MLP_BUCKETS
        ringmask = _RING_MASK
        opl = _OP_LOAD
        opst = _OP_STORE
        opb = _OP_BRANCH
        opm = _OP_INT_MUL
        opf = _OP_FP
        lat_alu = _LAT_ALU
        lat_mul = _LAT_MUL
        lat_fp = _LAT_FP
        lat_br = _LAT_BRANCH
        lat_st = _LAT_STORE

        rob = self.rob
        lsq = self.lsq
        rob_usage = rob._usage
        rob_limits = rob._limits
        rob_peak = rob.peak_usage
        rob_capacity = rob.capacity
        lsq_usage = lsq._usage
        lsq_limits = lsq._limits
        lsq_peak = lsq.peak_usage
        lsq_capacity = lsq.capacity
        rob_total = rob._total          # mirrored: written back at sync points
        lsq_total = lsq._total

        hierarchy = self.hierarchy
        predictor = self.predictor
        # Branch predictor internals, fully inlined (the per-branch
        # BranchOutcome allocation and method dispatch are measurable on
        # branchy workloads).  Table objects are never replaced after
        # construction, so the bytearray/list references are loop-stable;
        # shared tables simply alias between the two thread-local views.
        _bt0 = predictor._tables_for(0)
        bgsh0 = _bt0.gshare
        bbim0 = _bt0.bimodal
        bcho0 = _bt0.chooser
        bbtag0 = _bt0.btb_tag
        bbtgt0 = _bt0.btb_target
        bgm0 = _bt0.gshare_mask
        bbm0 = _bt0.bimodal_mask
        bcm0 = _bt0.chooser_mask
        btm0 = _bt0.btb_mask
        bhmask = predictor._history_mask
        bh0 = predictor._history[0]
        plk0 = predictor.lookups[0]
        pmp0 = predictor.mispredictions[0]
        if n2:
            _bt1 = predictor._tables_for(1)
            bgsh1 = _bt1.gshare
            bbim1 = _bt1.bimodal
            bcho1 = _bt1.chooser
            bbtag1 = _bt1.btb_tag
            bbtgt1 = _bt1.btb_target
            bgm1 = _bt1.gshare_mask
            bbm1 = _bt1.bimodal_mask
            bcm1 = _bt1.chooser_mask
            btm1 = _bt1.btb_mask
            bh1 = predictor._history[1]
            plk1 = predictor.lookups[1]
            pmp1 = predictor.mispredictions[1]
        else:
            bh1 = 0
            plk1 = 0
            pmp1 = 0
        mshrs = hierarchy.mshrs
        inflight = mshrs._inflight
        infl0 = inflight[0]
        infl1 = inflight[1] if len(inflight) > 1 else {}
        mshr_per_thread = mshrs.per_thread
        mshr_total = mshrs.total
        mshr_coalesced = mshrs.coalesced
        mshr_acquire = mshrs.acquire
        # Earliest in-flight fill per thread (conservative lower bound:
        # outside deletions only raise the true minimum, so ``cycle < nf``
        # proves no MSHR entry can expire this cycle and occupancy is just
        # ``len(table)`` — no scan.  Retightened after every expiry.
        inf_fill = 1 << 62
        nf0 = min(infl0.values(), default=inf_fill)
        nf1 = min(infl1.values(), default=inf_fill)
        bshift = hierarchy._block_shift
        l1d = hierarchy.l1d
        l1i = hierarchy.l1i
        h_loads = hierarchy.loads
        h_stores = hierarchy.stores
        h_l1d_misses = hierarchy.l1d_misses
        h_l1i_misses = hierarchy.l1i_misses
        hit_lat = hierarchy.l1_hit_latency
        llc_lat = hierarchy.llc_latency
        llc_lat_mem = llc_lat + hierarchy.memory_latency
        pf_enabled = hierarchy.prefetch_enabled
        mlp_hist = self._mlp_hist

        policy = self.policy
        whole_cycle = policy.whole_cycle
        policy_order = policy.order
        ptype = type(policy)
        if ptype is ICountPolicy:
            mode = 0
        elif ptype is RoundRobinPolicy:
            mode = 1
        elif ptype is StaticRatioPolicy:
            mode = 2
            ratio_m0 = policy.m0
            ratio_period = policy._period
        else:
            mode = 3

        # Thread state lives in flat locals inside the loop (committed
        # counts, cursor positions, usage registers, stall/branch/memory
        # counters, front-end state); it is written back via sync0/sync1 at
        # every observation point (invariant checker, sampler window edge,
        # jump-log capture, deadline, loop exit) and re-read afterwards so
        # attached observers see — and may adjust — exactly the state the
        # legacy per-cycle loop would expose.
        ts0 = threads[0]
        cur0 = ts0.cursor
        ops0 = cur0.op
        dep1s0 = cur0.dep1
        dep2s0 = cur0.dep2
        pcs0 = cur0.pc
        addrs0 = cur0.addr
        takens0 = cur0.taken
        targets0 = cur0.target
        sids0 = cur0.sid
        len0 = cur0.length
        i0 = cur0.index
        cons0 = cur0.consumed
        fbs0 = self._fbs[0]
        q0 = ts0.rob_q
        pop0 = q0.popleft
        app0 = q0.append
        ring0 = ts0.ring
        seq0 = ts0.seq
        cm0 = ts0.committed
        fe0 = ts0.fe_stall_until
        sq0 = ts0.squash_at
        gh0 = ts0.ghosts
        lfb0 = ts0.last_fetch_block
        sr0 = ts0.stall_rob
        sl0 = ts0.stall_lsq
        br0 = ts0.branches
        mp0 = ts0.mispredicts
        ld0 = h_loads[0]
        st0 = h_stores[0]
        dm0 = h_l1d_misses[0]
        im0 = h_l1i_misses[0]
        co0 = mshr_coalesced[0]
        ru0 = rob_usage[0]
        lu0 = lsq_usage[0]
        pkr0 = rob_peak[0]
        pkl0 = lsq_peak[0]
        rlim0 = rob_limits[0]
        llim0 = lsq_limits[0]
        dc0 = l1d[0]
        ic0 = l1i[0]
        dset0 = dc0._sets
        dmask0 = dc0._set_mask
        dways0 = dc0.ways
        iset0 = ic0._sets
        imask0 = ic0._set_mask
        iways0 = ic0.ways
        llc0 = hierarchy.llc[0].access
        dfill0 = dc0.fill
        pf0 = hierarchy.prefetchers[0]
        pftab0 = pf0._table
        pfsize0 = pf0.table_size
        pfdeg0 = pf0.degree
        pfthr0 = pf0.confidence_threshold
        pfline0 = pf0.line_bytes
        hist0 = mlp_hist[0]
        tt0 = 0
        tt1 = 1 << (_THREAD_TAG_SHIFT - bshift)

        if n2:
            ts1 = threads[1]
            cur1 = ts1.cursor
            ops1 = cur1.op
            dep1s1 = cur1.dep1
            dep2s1 = cur1.dep2
            pcs1 = cur1.pc
            addrs1 = cur1.addr
            takens1 = cur1.taken
            targets1 = cur1.target
            sids1 = cur1.sid
            len1 = cur1.length
            i1 = cur1.index
            cons1 = cur1.consumed
            fbs1 = self._fbs[1]
            q1 = ts1.rob_q
            pop1 = q1.popleft
            app1 = q1.append
            ring1 = ts1.ring
            seq1 = ts1.seq
            cm1 = ts1.committed
            fe1 = ts1.fe_stall_until
            sq1 = ts1.squash_at
            gh1 = ts1.ghosts
            lfb1 = ts1.last_fetch_block
            sr1 = ts1.stall_rob
            sl1 = ts1.stall_lsq
            br1 = ts1.branches
            mp1 = ts1.mispredicts
            ld1 = h_loads[1]
            st1 = h_stores[1]
            dm1 = h_l1d_misses[1]
            im1 = h_l1i_misses[1]
            co1 = mshr_coalesced[1]
            ru1 = rob_usage[1]
            lu1 = lsq_usage[1]
            pkr1 = rob_peak[1]
            pkl1 = lsq_peak[1]
            rlim1 = rob_limits[1]
            llim1 = lsq_limits[1]
            dc1 = l1d[1]
            ic1 = l1i[1]
            dset1 = dc1._sets
            dmask1 = dc1._set_mask
            dways1 = dc1.ways
            iset1 = ic1._sets
            imask1 = ic1._set_mask
            iways1 = ic1.ways
            llc1 = hierarchy.llc[1].access
            dfill1 = dc1.fill
            pf1 = hierarchy.prefetchers[1]
            pftab1 = pf1._table
            pfsize1 = pf1.table_size
            pfdeg1 = pf1.degree
            pfthr1 = pf1.confidence_threshold
            pfline1 = pf1.line_bytes
            hist1 = mlp_hist[1]
        else:
            ts1 = None
            q1 = None
            cm1 = 0
            ru1 = 0
            fe1 = 0
            sq1 = 0

        def sync0(i_, cons_, seq_, cm_, fe_, sq_, gh_, lfb_, sr_, sl_, br_,
                  mp_, ld_, st_, dm_, im_, co_, ru_, lu_, pkr_, pkl_,
                  bh_, plk_, pmp_):
            predictor._history[0] = bh_
            predictor.lookups[0] = plk_
            predictor.mispredictions[0] = pmp_
            cur0.index = i_
            cur0.consumed = cons_
            ts0.seq = seq_
            ts0.committed = cm_
            ts0.fe_stall_until = fe_
            ts0.squash_at = sq_
            ts0.ghosts = gh_
            ts0.last_fetch_block = lfb_
            ts0.stall_rob = sr_
            ts0.stall_lsq = sl_
            ts0.branches = br_
            ts0.mispredicts = mp_
            h_loads[0] = ld_
            h_stores[0] = st_
            h_l1d_misses[0] = dm_
            h_l1i_misses[0] = im_
            mshr_coalesced[0] = co_
            rob_usage[0] = ru_
            lsq_usage[0] = lu_
            rob_peak[0] = pkr_
            lsq_peak[0] = pkl_

        def sync1(i_, cons_, seq_, cm_, fe_, sq_, gh_, lfb_, sr_, sl_, br_,
                  mp_, ld_, st_, dm_, im_, co_, ru_, lu_, pkr_, pkl_,
                  bh_, plk_, pmp_):
            predictor._history[1] = bh_
            predictor.lookups[1] = plk_
            predictor.mispredictions[1] = pmp_
            cur1.index = i_
            cur1.consumed = cons_
            ts1.seq = seq_
            ts1.committed = cm_
            ts1.fe_stall_until = fe_
            ts1.squash_at = sq_
            ts1.ghosts = gh_
            ts1.last_fetch_block = lfb_
            ts1.stall_rob = sr_
            ts1.stall_lsq = sl_
            ts1.branches = br_
            ts1.mispredicts = mp_
            h_loads[1] = ld_
            h_stores[1] = st_
            h_l1d_misses[1] = dm_
            h_l1i_misses[1] = im_
            mshr_coalesced[1] = co_
            rob_usage[1] = ru_
            lsq_usage[1] = lu_
            rob_peak[1] = pkr_
            lsq_peak[1] = pkl_

        cycle = self.cycle
        deadline = None if max_cycles is None else cycle + max_cycles
        tgt0 = cm0 + target_committed
        tgt1 = (cm1 + target_committed) if n2 else 0

        sampler = self.sampler
        sample_at = self._sample_at
        checker = self.checker
        elog = self.event_log
        jump_log = self.jump_log
        first = 0
        second = 0

        while True:
            if deadline is not None and cycle >= deadline:
                sync0(i0, cons0, seq0, cm0, fe0, sq0, gh0, lfb0, sr0, sl0,
                      br0, mp0, ld0, st0, dm0, im0, co0, ru0, lu0, pkr0, pkl0,
                      bh0, plk0, pmp0)
                if n2:
                    sync1(i1, cons1, seq1, cm1, fe1, sq1, gh1, lfb1, sr1, sl1,
                          br1, mp1, ld1, st1, dm1, im1, co1, ru1, lu1, pkr1,
                          pkl1, bh1, plk1, pmp1)
                rob._total = rob_total
                lsq._total = lsq_total
                self.cycle = cycle
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} before committing "
                    f"{target_committed} µops per thread"
                )

            committed_this = 0
            dispatched_this = 0

            # ---- wrong-path squash: mispredicted branch resolved ----
            if sq0 and cycle >= sq0:
                if gh0:
                    ru0 -= gh0
                    rob_total -= gh0
                    gh0 = 0
                refill = sq0 + flush_penalty
                if fe0 < refill:
                    fe0 = refill
                sq0 = 0
            if n2 and sq1 and cycle >= sq1:
                if gh1:
                    ru1 -= gh1
                    rob_total -= gh1
                    gh1 = 0
                refill = sq1 + flush_penalty
                if fe1 < refill:
                    fe1 = refill
                sq1 = 0

            # ---- thread selection: one policy decision per cycle ----
            if n2:
                if mode == 0:
                    if ru0 < ru1:
                        first = 0
                    elif ru1 < ru0:
                        first = 1
                    else:
                        first = 0 if cycle & 1 else 1
                elif mode == 1:
                    first = 0 if cycle & 1 else 1
                elif mode == 2:
                    first = 0 if (cycle % ratio_period) < ratio_m0 else 1
                else:
                    first = policy_order(cycle, [ru0, ru1])[0]
                second = 1 - first

            # ---- commit: policy-selected thread first, shared width ----
            # Per-entry work is the retirement scan itself; the usage
            # registers are updated once per thread-run (same outcome as
            # the legacy per-µop release calls).
            budget = width
            if first:
                if q1 and budget:
                    head = q1[0]
                    if head[0] <= cycle:
                        k = 0
                        m = 0
                        while True:
                            pop1()
                            k += 1
                            if head[1]:
                                m += 1
                            if k == budget or not q1:
                                break
                            head = q1[0]
                            if head[0] > cycle:
                                break
                        ru1 -= k
                        rob_total -= k
                        cm1 += k
                        budget -= k
                        committed_this += k
                        if m:
                            lu1 -= m
                            lsq_total -= m
                if q0 and budget:
                    head = q0[0]
                    if head[0] <= cycle:
                        k = 0
                        m = 0
                        while True:
                            pop0()
                            k += 1
                            if head[1]:
                                m += 1
                            if k == budget or not q0:
                                break
                            head = q0[0]
                            if head[0] > cycle:
                                break
                        ru0 -= k
                        rob_total -= k
                        cm0 += k
                        budget -= k
                        committed_this += k
                        if m:
                            lu0 -= m
                            lsq_total -= m
            else:
                if q0 and budget:
                    head = q0[0]
                    if head[0] <= cycle:
                        k = 0
                        m = 0
                        while True:
                            pop0()
                            k += 1
                            if head[1]:
                                m += 1
                            if k == budget or not q0:
                                break
                            head = q0[0]
                            if head[0] > cycle:
                                break
                        ru0 -= k
                        rob_total -= k
                        cm0 += k
                        budget -= k
                        committed_this += k
                        if m:
                            lu0 -= m
                            lsq_total -= m
                if q1 and budget:
                    head = q1[0]
                    if head[0] <= cycle:
                        k = 0
                        m = 0
                        while True:
                            pop1()
                            k += 1
                            if head[1]:
                                m += 1
                            if k == budget or not q1:
                                break
                            head = q1[0]
                            if head[0] > cycle:
                                break
                        ru1 -= k
                        rob_total -= k
                        cm1 += k
                        budget -= k
                        committed_this += k
                        if m:
                            lu1 -= m
                            lsq_total -= m

            # ---- fetch/dispatch: interleaved slots ----
            dbudget = width
            slots_alu = int_alus
            slots_mul = int_muls
            slots_fpu = fpus
            slots_lsu = lsus
            a0 = fe0 <= cycle
            a1 = n2 and fe1 <= cycle
            b0 = max_branches
            b1 = max_branches
            turn = 0
            while dbudget and (a0 or a1):
                # Thread pick: with one thread active every slot is its
                # (parity is unread from then on — active flags never come
                # back mid-cycle); with both active, the policy-preferred
                # alternation.  Identical outcomes to the legacy
                # pick-then-fallback, one branch cheaper in the common case.
                if a1:
                    if a0:
                        if whole_cycle:
                            t = first
                        elif turn & 1:
                            t = second
                        else:
                            t = first
                        turn += 1
                    else:
                        t = 1
                else:
                    t = 0

                if t == 0:
                    if sq0 > cycle:
                        # Wrong-path (ghost) dispatch occupies ROB entries.
                        if ru0 >= rlim0 or rob_total >= rob_capacity:
                            a0 = False
                            continue
                        if not a1:
                            # Sole active thread: every remaining slot this
                            # cycle falls to it, so fill the ROB in one
                            # batched step — identical to dispatching the
                            # ghosts one per slot.
                            g = dbudget
                            room = rlim0 - ru0
                            if g > room:
                                g = room
                            room = rob_capacity - rob_total
                            if g > room:
                                g = room
                            ru0 += g
                            if ru0 > pkr0:
                                pkr0 = ru0
                            rob_total += g
                            gh0 += g
                            dbudget -= g
                            dispatched_this += g
                            if dbudget:
                                a0 = False
                            continue
                        ru0 += 1
                        if ru0 > pkr0:
                            pkr0 = ru0
                        rob_total += 1
                        gh0 += 1
                        dbudget -= 1
                        dispatched_this += 1
                        continue
                    i = i0
                    op = ops0[i]
                    if ru0 >= rlim0 or rob_total >= rob_capacity:
                        sr0 += 1
                        a0 = False
                        continue
                    if op == opl or op == opst:
                        is_mem = True
                        if lu0 >= llim0 or lsq_total >= lsq_capacity:
                            sl0 += 1
                            a0 = False
                            continue
                        if slots_lsu == 0:
                            a0 = False
                            continue
                    elif op == opb:
                        is_mem = False
                        if b0 == 0 or slots_alu == 0:
                            a0 = False
                            continue
                    elif op == opm:
                        is_mem = False
                        if slots_mul == 0:
                            a0 = False
                            continue
                    elif op == opf:
                        is_mem = False
                        if slots_fpu == 0:
                            a0 = False
                            continue
                    else:
                        is_mem = False
                        if slots_alu == 0:
                            a0 = False
                            continue

                    # Instruction-side delivery (inlined fetch_block).
                    fb = fbs0[i]
                    if fb != lfb0:
                        lfb0 = fb
                        iblock = (pcs0[i] >> bshift) | tt0
                        ientries = iset0[iblock & imask0]
                        try:
                            ientries.remove(iblock)
                            ic0.hits += 1
                            ientries.append(iblock)
                        except ValueError:
                            ic0.misses += 1
                            if len(ientries) >= iways0:
                                del ientries[0]
                            ientries.append(iblock)
                            im0 += 1
                            fe0 = cycle + (
                                llc_lat if llc0(iblock) else llc_lat_mem
                            )
                            a0 = False
                            continue

                    # Dataflow ready time from the ring buffer.
                    seq = seq0
                    ready = cycle
                    d = dep1s0[i]
                    if d:
                        r = ring0[(seq - d) & ringmask]
                        if r > ready:
                            ready = r
                    d = dep2s0[i]
                    if d:
                        r = ring0[(seq - d) & ringmask]
                        if r > ready:
                            ready = r

                    if op == opl:
                        # Inlined hierarchy.load: L1-D access, prefetcher
                        # train, LLC fill and MSHR allocate/coalesce.
                        ld0 += 1
                        block = (addrs0[i] >> bshift) | tt0
                        entries = dset0[block & dmask0]
                        if entries and entries[-1] == block:
                            # MRU hit: remove+append would be a no-op.
                            dc0.hits += 1
                            hit = True
                        else:
                            try:
                                entries.remove(block)
                                dc0.hits += 1
                                entries.append(block)
                                hit = True
                            except ValueError:
                                dc0.misses += 1
                                if len(entries) >= dways0:
                                    del entries[0]
                                entries.append(block)
                                hit = False
                        s = sids0[i]
                        if s != 0 and pf_enabled:
                            # Inlined StridePrefetcher.train + fill loop.
                            addr = addrs0[i]
                            e = pftab0.get(-s)
                            if e is None:
                                if len(pftab0) >= pfsize0:
                                    pftab0.pop(next(iter(pftab0)))
                                pftab0[-s] = _PFEntry(-s, addr)
                            else:
                                stride = addr - e.last_addr
                                if stride != 0 and stride == e.stride:
                                    if e.confidence < 3:
                                        e.confidence += 1
                                else:
                                    e.stride = stride
                                    e.confidence = 0
                                e.last_addr = addr
                                if e.confidence >= pfthr0 and e.stride != 0:
                                    st_ = e.stride
                                    base_block = addr // pfline0
                                    for k in range(1, pfdeg0 + 1):
                                        blk = (addr + k * st_) // pfline0
                                        if blk != base_block:
                                            pf0.issued += 1
                                            tagged = blk | tt0
                                            if tagged not in dset0[
                                                tagged & dmask0
                                            ]:
                                                llc0(tagged)
                                                dfill0(tagged)
                        if hit:
                            completion = ready + hit_lat
                        else:
                            dm0 += 1
                            latency = (
                                llc_lat if llc0(block) else llc_lat_mem
                            )
                            if nf0 <= ready and infl0:
                                stale = [
                                    b for b, f in infl0.items() if f <= ready
                                ]
                                for b in stale:
                                    del infl0[b]
                                nf0 = min(infl0.values(), default=inf_fill)
                            fill = infl0.get(block)
                            if fill is not None:
                                co0 += 1
                            elif (
                                len(infl0) < mshr_per_thread
                                and len(infl0) + len(infl1) < mshr_total
                            ):
                                fill = ready + latency
                                infl0[block] = fill
                                if fill < nf0:
                                    nf0 = fill
                            else:
                                # Structural stall: quota or file exhausted.
                                fill = mshr_acquire(0, block, ready, latency)
                                nf0 = min(infl0.values(), default=inf_fill)
                                nf1 = min(infl1.values(), default=inf_fill)
                            completion = fill + hit_lat
                        slots_lsu -= 1
                    elif op == opst:
                        # Inlined hierarchy.store: write-allocate, no MSHR.
                        st0 += 1
                        block = (addrs0[i] >> bshift) | tt0
                        entries = dset0[block & dmask0]
                        if entries and entries[-1] == block:
                            dc0.hits += 1
                            hit = True
                        else:
                            try:
                                entries.remove(block)
                                dc0.hits += 1
                                entries.append(block)
                                hit = True
                            except ValueError:
                                dc0.misses += 1
                                if len(entries) >= dways0:
                                    del entries[0]
                                entries.append(block)
                                hit = False
                        s = sids0[i]
                        if s != 0 and pf_enabled:
                            # Inlined StridePrefetcher.train + fill loop.
                            addr = addrs0[i]
                            e = pftab0.get(-s)
                            if e is None:
                                if len(pftab0) >= pfsize0:
                                    pftab0.pop(next(iter(pftab0)))
                                pftab0[-s] = _PFEntry(-s, addr)
                            else:
                                stride = addr - e.last_addr
                                if stride != 0 and stride == e.stride:
                                    if e.confidence < 3:
                                        e.confidence += 1
                                else:
                                    e.stride = stride
                                    e.confidence = 0
                                e.last_addr = addr
                                if e.confidence >= pfthr0 and e.stride != 0:
                                    st_ = e.stride
                                    base_block = addr // pfline0
                                    for k in range(1, pfdeg0 + 1):
                                        blk = (addr + k * st_) // pfline0
                                        if blk != base_block:
                                            pf0.issued += 1
                                            tagged = blk | tt0
                                            if tagged not in dset0[
                                                tagged & dmask0
                                            ]:
                                                llc0(tagged)
                                                dfill0(tagged)
                        if not hit:
                            dm0 += 1
                            llc0(block)
                        completion = ready + lat_st
                        slots_lsu -= 1
                    elif op == opb:
                        completion = ready + lat_br
                        br0 += 1
                        pc = pcs0[i]
                        taken = takens0[i]
                        pci = pc >> 2
                        g_idx = (pci ^ bh0) & bgm0
                        b_idx = pci & bbm0
                        g_ctr = bgsh0[g_idx]
                        b_ctr = bbim0[b_idx]
                        c_idx = pci & bcm0
                        if bcho0[c_idx] >= 2:
                            pred_taken = g_ctr >= 2
                        else:
                            pred_taken = b_ctr >= 2
                        if taken:
                            if g_ctr < 3:
                                bgsh0[g_idx] = g_ctr + 1
                            if b_ctr < 3:
                                bbim0[b_idx] = b_ctr + 1
                            g_right = g_ctr >= 2
                            b_right = b_ctr >= 2
                            bh0 = ((bh0 << 1) | 1) & bhmask
                        else:
                            if g_ctr > 0:
                                bgsh0[g_idx] = g_ctr - 1
                            if b_ctr > 0:
                                bbim0[b_idx] = b_ctr - 1
                            g_right = g_ctr < 2
                            b_right = b_ctr < 2
                            bh0 = (bh0 << 1) & bhmask
                        if g_right != b_right:
                            ctr = bcho0[c_idx]
                            if g_right:
                                if ctr < 3:
                                    bcho0[c_idx] = ctr + 1
                            elif ctr > 0:
                                bcho0[c_idx] = ctr - 1
                        plk0 += 1
                        b0 -= 1
                        slots_alu -= 1
                        if taken:
                            bt_idx = pci & btm0
                            tgt = targets0[i]
                            t_ok = (bbtag0[bt_idx] == pc
                                    and bbtgt0[bt_idx] == tgt)
                            bbtag0[bt_idx] = pc
                            bbtgt0[bt_idx] = tgt
                            if not pred_taken:
                                pmp0 += 1
                                mp0 += 1
                                sq0 = completion
                            elif not t_ok:
                                # Direction right but BTB missed: front-end
                                # bubble of half the flush depth.
                                pmp0 += 1
                                mp0 += 1
                                fe0 = cycle + half_flush
                                a0 = False
                        elif pred_taken:
                            pmp0 += 1
                            mp0 += 1
                            sq0 = completion
                    elif op == opm:
                        completion = ready + lat_mul
                        slots_mul -= 1
                    elif op == opf:
                        completion = ready + lat_fp
                        slots_fpu -= 1
                    else:
                        completion = ready + lat_alu
                        slots_alu -= 1

                    ring0[seq & ringmask] = completion
                    seq0 = seq + 1
                    ru0 += 1
                    if ru0 > pkr0:
                        pkr0 = ru0
                    rob_total += 1
                    if is_mem:
                        lu0 += 1
                        if lu0 > pkl0:
                            pkl0 = lu0
                        lsq_total += 1
                    app0((completion, is_mem))
                    if elog is not None:
                        elog.append(
                            (0, seq, op, pcs0[i], cycle, ready, completion)
                        )
                    i += 1
                    i0 = 0 if i == len0 else i
                    cons0 += 1
                    dbudget -= 1
                    dispatched_this += 1
                else:
                    if sq1 > cycle:
                        if ru1 >= rlim1 or rob_total >= rob_capacity:
                            a1 = False
                            continue
                        if not a0:
                            g = dbudget
                            room = rlim1 - ru1
                            if g > room:
                                g = room
                            room = rob_capacity - rob_total
                            if g > room:
                                g = room
                            ru1 += g
                            if ru1 > pkr1:
                                pkr1 = ru1
                            rob_total += g
                            gh1 += g
                            dbudget -= g
                            dispatched_this += g
                            if dbudget:
                                a1 = False
                            continue
                        ru1 += 1
                        if ru1 > pkr1:
                            pkr1 = ru1
                        rob_total += 1
                        gh1 += 1
                        dbudget -= 1
                        dispatched_this += 1
                        continue
                    i = i1
                    op = ops1[i]
                    if ru1 >= rlim1 or rob_total >= rob_capacity:
                        sr1 += 1
                        a1 = False
                        continue
                    if op == opl or op == opst:
                        is_mem = True
                        if lu1 >= llim1 or lsq_total >= lsq_capacity:
                            sl1 += 1
                            a1 = False
                            continue
                        if slots_lsu == 0:
                            a1 = False
                            continue
                    elif op == opb:
                        is_mem = False
                        if b1 == 0 or slots_alu == 0:
                            a1 = False
                            continue
                    elif op == opm:
                        is_mem = False
                        if slots_mul == 0:
                            a1 = False
                            continue
                    elif op == opf:
                        is_mem = False
                        if slots_fpu == 0:
                            a1 = False
                            continue
                    else:
                        is_mem = False
                        if slots_alu == 0:
                            a1 = False
                            continue

                    fb = fbs1[i]
                    if fb != lfb1:
                        lfb1 = fb
                        iblock = (pcs1[i] >> bshift) | tt1
                        ientries = iset1[iblock & imask1]
                        try:
                            ientries.remove(iblock)
                            ic1.hits += 1
                            ientries.append(iblock)
                        except ValueError:
                            ic1.misses += 1
                            if len(ientries) >= iways1:
                                del ientries[0]
                            ientries.append(iblock)
                            im1 += 1
                            fe1 = cycle + (
                                llc_lat if llc1(iblock) else llc_lat_mem
                            )
                            a1 = False
                            continue

                    seq = seq1
                    ready = cycle
                    d = dep1s1[i]
                    if d:
                        r = ring1[(seq - d) & ringmask]
                        if r > ready:
                            ready = r
                    d = dep2s1[i]
                    if d:
                        r = ring1[(seq - d) & ringmask]
                        if r > ready:
                            ready = r

                    if op == opl:
                        ld1 += 1
                        block = (addrs1[i] >> bshift) | tt1
                        entries = dset1[block & dmask1]
                        if entries and entries[-1] == block:
                            dc1.hits += 1
                            hit = True
                        else:
                            try:
                                entries.remove(block)
                                dc1.hits += 1
                                entries.append(block)
                                hit = True
                            except ValueError:
                                dc1.misses += 1
                                if len(entries) >= dways1:
                                    del entries[0]
                                entries.append(block)
                                hit = False
                        s = sids1[i]
                        if s != 0 and pf_enabled:
                            addr = addrs1[i]
                            e = pftab1.get(-s)
                            if e is None:
                                if len(pftab1) >= pfsize1:
                                    pftab1.pop(next(iter(pftab1)))
                                pftab1[-s] = _PFEntry(-s, addr)
                            else:
                                stride = addr - e.last_addr
                                if stride != 0 and stride == e.stride:
                                    if e.confidence < 3:
                                        e.confidence += 1
                                else:
                                    e.stride = stride
                                    e.confidence = 0
                                e.last_addr = addr
                                if e.confidence >= pfthr1 and e.stride != 0:
                                    st_ = e.stride
                                    base_block = addr // pfline1
                                    for k in range(1, pfdeg1 + 1):
                                        blk = (addr + k * st_) // pfline1
                                        if blk != base_block:
                                            pf1.issued += 1
                                            tagged = blk | tt1
                                            if tagged not in dset1[
                                                tagged & dmask1
                                            ]:
                                                llc1(tagged)
                                                dfill1(tagged)
                        if hit:
                            completion = ready + hit_lat
                        else:
                            dm1 += 1
                            latency = (
                                llc_lat if llc1(block) else llc_lat_mem
                            )
                            if nf1 <= ready and infl1:
                                stale = [
                                    b for b, f in infl1.items() if f <= ready
                                ]
                                for b in stale:
                                    del infl1[b]
                                nf1 = min(infl1.values(), default=inf_fill)
                            fill = infl1.get(block)
                            if fill is not None:
                                co1 += 1
                            elif (
                                len(infl1) < mshr_per_thread
                                and len(infl0) + len(infl1) < mshr_total
                            ):
                                fill = ready + latency
                                infl1[block] = fill
                                if fill < nf1:
                                    nf1 = fill
                            else:
                                fill = mshr_acquire(1, block, ready, latency)
                                nf0 = min(infl0.values(), default=inf_fill)
                                nf1 = min(infl1.values(), default=inf_fill)
                            completion = fill + hit_lat
                        slots_lsu -= 1
                    elif op == opst:
                        st1 += 1
                        block = (addrs1[i] >> bshift) | tt1
                        entries = dset1[block & dmask1]
                        if entries and entries[-1] == block:
                            dc1.hits += 1
                            hit = True
                        else:
                            try:
                                entries.remove(block)
                                dc1.hits += 1
                                entries.append(block)
                                hit = True
                            except ValueError:
                                dc1.misses += 1
                                if len(entries) >= dways1:
                                    del entries[0]
                                entries.append(block)
                                hit = False
                        s = sids1[i]
                        if s != 0 and pf_enabled:
                            addr = addrs1[i]
                            e = pftab1.get(-s)
                            if e is None:
                                if len(pftab1) >= pfsize1:
                                    pftab1.pop(next(iter(pftab1)))
                                pftab1[-s] = _PFEntry(-s, addr)
                            else:
                                stride = addr - e.last_addr
                                if stride != 0 and stride == e.stride:
                                    if e.confidence < 3:
                                        e.confidence += 1
                                else:
                                    e.stride = stride
                                    e.confidence = 0
                                e.last_addr = addr
                                if e.confidence >= pfthr1 and e.stride != 0:
                                    st_ = e.stride
                                    base_block = addr // pfline1
                                    for k in range(1, pfdeg1 + 1):
                                        blk = (addr + k * st_) // pfline1
                                        if blk != base_block:
                                            pf1.issued += 1
                                            tagged = blk | tt1
                                            if tagged not in dset1[
                                                tagged & dmask1
                                            ]:
                                                llc1(tagged)
                                                dfill1(tagged)
                        if not hit:
                            dm1 += 1
                            llc1(block)
                        completion = ready + lat_st
                        slots_lsu -= 1
                    elif op == opb:
                        completion = ready + lat_br
                        br1 += 1
                        pc = pcs1[i]
                        taken = takens1[i]
                        pci = pc >> 2
                        g_idx = (pci ^ bh1) & bgm1
                        b_idx = pci & bbm1
                        g_ctr = bgsh1[g_idx]
                        b_ctr = bbim1[b_idx]
                        c_idx = pci & bcm1
                        if bcho1[c_idx] >= 2:
                            pred_taken = g_ctr >= 2
                        else:
                            pred_taken = b_ctr >= 2
                        if taken:
                            if g_ctr < 3:
                                bgsh1[g_idx] = g_ctr + 1
                            if b_ctr < 3:
                                bbim1[b_idx] = b_ctr + 1
                            g_right = g_ctr >= 2
                            b_right = b_ctr >= 2
                            bh1 = ((bh1 << 1) | 1) & bhmask
                        else:
                            if g_ctr > 0:
                                bgsh1[g_idx] = g_ctr - 1
                            if b_ctr > 0:
                                bbim1[b_idx] = b_ctr - 1
                            g_right = g_ctr < 2
                            b_right = b_ctr < 2
                            bh1 = (bh1 << 1) & bhmask
                        if g_right != b_right:
                            ctr = bcho1[c_idx]
                            if g_right:
                                if ctr < 3:
                                    bcho1[c_idx] = ctr + 1
                            elif ctr > 0:
                                bcho1[c_idx] = ctr - 1
                        plk1 += 1
                        b1 -= 1
                        slots_alu -= 1
                        if taken:
                            bt_idx = pci & btm1
                            tgt = targets1[i]
                            t_ok = (bbtag1[bt_idx] == pc
                                    and bbtgt1[bt_idx] == tgt)
                            bbtag1[bt_idx] = pc
                            bbtgt1[bt_idx] = tgt
                            if not pred_taken:
                                pmp1 += 1
                                mp1 += 1
                                sq1 = completion
                            elif not t_ok:
                                pmp1 += 1
                                mp1 += 1
                                fe1 = cycle + half_flush
                                a1 = False
                        elif pred_taken:
                            pmp1 += 1
                            mp1 += 1
                            sq1 = completion
                    elif op == opm:
                        completion = ready + lat_mul
                        slots_mul -= 1
                    elif op == opf:
                        completion = ready + lat_fp
                        slots_fpu -= 1
                    else:
                        completion = ready + lat_alu
                        slots_alu -= 1

                    ring1[seq & ringmask] = completion
                    seq1 = seq + 1
                    ru1 += 1
                    if ru1 > pkr1:
                        pkr1 = ru1
                    rob_total += 1
                    if is_mem:
                        lu1 += 1
                        if lu1 > pkl1:
                            pkl1 = lu1
                        lsq_total += 1
                    app1((completion, is_mem))
                    if elog is not None:
                        elog.append(
                            (1, seq, op, pcs1[i], cycle, ready, completion)
                        )
                    i += 1
                    i1 = 0 if i == len1 else i
                    cons1 += 1
                    dbudget -= 1
                    dispatched_this += 1

            # ---- clock advance over the event horizon ----
            done = False
            if dispatched_this:
                new_cycle = cycle + 1
            else:
                jump = True
                if committed_this:
                    if require_all and n2:
                        done = cm0 >= tgt0 and cm1 >= tgt1
                    else:
                        done = cm0 >= tgt0 or (n2 and cm1 >= tgt1)
                    if done or budget == 0:
                        # The window just closed, or commit bandwidth was
                        # exhausted (more µops retire next cycle): step.
                        jump = False
                        new_cycle = cycle + 1
                if jump:
                    # No dispatch, and any commits drained every due µop
                    # with bandwidth to spare: the machine state is frozen
                    # until the next event — jump straight to it.
                    ne = -1
                    if q0:
                        ne = q0[0][0]
                    if fe0 > cycle and (ne < 0 or fe0 < ne):
                        ne = fe0
                    if sq0 > cycle and (ne < 0 or sq0 < ne):
                        ne = sq0
                    if n2:
                        if q1:
                            ev = q1[0][0]
                            if ne < 0 or ev < ne:
                                ne = ev
                        if fe1 > cycle and (ne < 0 or fe1 < ne):
                            ne = fe1
                        if sq1 > cycle and (ne < 0 or sq1 < ne):
                            ne = sq1
                    new_cycle = ne if ne > cycle + 1 else cycle + 1
                    if sample_at is not None and cycle < sample_at < new_cycle:
                        # Sampler window edges are horizon events: stopping
                        # mid-gap is timing-neutral and keeps windows exact.
                        new_cycle = sample_at
                    if jump_log is not None and new_cycle > cycle + 1:
                        ts0.fe_stall_until = fe0
                        ts0.squash_at = sq0
                        if n2:
                            ts1.fe_stall_until = fe1
                            ts1.squash_at = sq1
                        self._sample_at = sample_at
                        jump_log.append(
                            (cycle, new_cycle,
                             tuple(self.pending_events(cycle)))
                        )

            gap = new_cycle - cycle
            if gap == 1:
                # MLP accounting: one MSHR occupancy sample per cycle
                # (inlined mshrs.occupancy, preserving expiry semantics).
                if infl0:
                    if cycle < nf0:
                        occ = len(infl0)
                    else:
                        occ = 0
                        for f in infl0.values():
                            if f > cycle:
                                occ += 1
                        if occ != len(infl0):
                            for b in [
                                b for b, f in infl0.items() if f <= cycle
                            ]:
                                del infl0[b]
                            nf0 = min(infl0.values(), default=inf_fill)
                    hist0[occ if occ <= buckets else buckets] += 1
                else:
                    hist0[0] += 1
                if n2:
                    if infl1:
                        if cycle < nf1:
                            occ = len(infl1)
                        else:
                            occ = 0
                            for f in infl1.values():
                                if f > cycle:
                                    occ += 1
                            if occ != len(infl1):
                                for b in [
                                    b for b, f in infl1.items() if f <= cycle
                                ]:
                                    del infl1[b]
                                nf1 = min(infl1.values(), default=inf_fill)
                        hist1[occ if occ <= buckets else buckets] += 1
                    else:
                        hist1[0] += 1
            else:
                # Batched gap accounting, exactly as a per-cycle loop would:
                # MLP from piecewise-constant occupancy segments (inlined
                # mshrs.occupancy_segments), dispatch stalls once per
                # skipped cycle for pinned threads.
                skipped = gap - 1
                if nf0 <= cycle and infl0:
                    stale = [b for b, f in infl0.items() if f <= cycle]
                    for b in stale:
                        del infl0[b]
                    nf0 = min(infl0.values(), default=inf_fill)
                if infl0:
                    fills = sorted(infl0.values())
                    occ = len(fills)
                    prev = cycle
                    for fill in fills:
                        if fill >= new_cycle:
                            break
                        if fill > prev:
                            hist0[occ if occ <= buckets else buckets] += (
                                fill - prev
                            )
                            prev = fill
                        occ -= 1
                    if new_cycle > prev:
                        hist0[occ if occ <= buckets else buckets] += (
                            new_cycle - prev
                        )
                else:
                    hist0[0] += gap
                if fe0 <= cycle and sq0 <= cycle:
                    if ru0 >= rlim0 or rob_total >= rob_capacity:
                        sr0 += skipped
                    else:
                        op = ops0[i0]
                        if (op == opl or op == opst) and (
                            lu0 >= llim0 or lsq_total >= lsq_capacity
                        ):
                            sl0 += skipped
                if n2:
                    if nf1 <= cycle and infl1:
                        stale = [b for b, f in infl1.items() if f <= cycle]
                        for b in stale:
                            del infl1[b]
                        nf1 = min(infl1.values(), default=inf_fill)
                    if infl1:
                        fills = sorted(infl1.values())
                        occ = len(fills)
                        prev = cycle
                        for fill in fills:
                            if fill >= new_cycle:
                                break
                            if fill > prev:
                                hist1[occ if occ <= buckets else buckets] += (
                                    fill - prev
                                )
                                prev = fill
                            occ -= 1
                        if new_cycle > prev:
                            hist1[occ if occ <= buckets else buckets] += (
                                new_cycle - prev
                            )
                    else:
                        hist1[0] += gap
                    if fe1 <= cycle and sq1 <= cycle:
                        if ru1 >= rlim1 or rob_total >= rob_capacity:
                            sr1 += skipped
                        else:
                            op = ops1[i1]
                            if (op == opl or op == opst) and (
                                lu1 >= llim1 or lsq_total >= lsq_capacity
                            ):
                                sl1 += skipped
            cycle = new_cycle

            if checker is not None:
                sync0(i0, cons0, seq0, cm0, fe0, sq0, gh0, lfb0, sr0, sl0,
                      br0, mp0, ld0, st0, dm0, im0, co0, ru0, lu0, pkr0, pkl0,
                      bh0, plk0, pmp0)
                if n2:
                    sync1(i1, cons1, seq1, cm1, fe1, sq1, gh1, lfb1, sr1, sl1,
                          br1, mp1, ld1, st1, dm1, im1, co1, ru1, lu1, pkr1,
                          pkl1, bh1, plk1, pmp1)
                rob._total = rob_total
                lsq._total = lsq_total
                self.cycle = cycle
                checker.on_cycle(self, cycle)
                i0 = cur0.index
                cons0 = cur0.consumed
                seq0 = ts0.seq
                cm0 = ts0.committed
                fe0 = ts0.fe_stall_until
                sq0 = ts0.squash_at
                gh0 = ts0.ghosts
                lfb0 = ts0.last_fetch_block
                sr0 = ts0.stall_rob
                sl0 = ts0.stall_lsq
                br0 = ts0.branches
                mp0 = ts0.mispredicts
                ld0 = h_loads[0]
                st0 = h_stores[0]
                dm0 = h_l1d_misses[0]
                im0 = h_l1i_misses[0]
                co0 = mshr_coalesced[0]
                ru0 = rob_usage[0]
                lu0 = lsq_usage[0]
                pkr0 = rob_peak[0]
                pkl0 = lsq_peak[0]
                if n2:
                    i1 = cur1.index
                    cons1 = cur1.consumed
                    seq1 = ts1.seq
                    cm1 = ts1.committed
                    fe1 = ts1.fe_stall_until
                    sq1 = ts1.squash_at
                    gh1 = ts1.ghosts
                    lfb1 = ts1.last_fetch_block
                    sr1 = ts1.stall_rob
                    sl1 = ts1.stall_lsq
                    br1 = ts1.branches
                    mp1 = ts1.mispredicts
                    ld1 = h_loads[1]
                    st1 = h_stores[1]
                    dm1 = h_l1d_misses[1]
                    im1 = h_l1i_misses[1]
                    co1 = mshr_coalesced[1]
                    ru1 = rob_usage[1]
                    lu1 = lsq_usage[1]
                    pkr1 = rob_peak[1]
                    pkl1 = lsq_peak[1]
                rob_total = rob._total
                lsq_total = lsq._total
                nf0 = min(infl0.values(), default=inf_fill)
                nf1 = min(infl1.values(), default=inf_fill)
                bh0 = predictor._history[0]
                plk0 = predictor.lookups[0]
                pmp0 = predictor.mispredictions[0]
                if n2:
                    bh1 = predictor._history[1]
                    plk1 = predictor.lookups[1]
                    pmp1 = predictor.mispredictions[1]
            if sample_at is not None and cycle >= sample_at:
                sync0(i0, cons0, seq0, cm0, fe0, sq0, gh0, lfb0, sr0, sl0,
                      br0, mp0, ld0, st0, dm0, im0, co0, ru0, lu0, pkr0, pkl0,
                      bh0, plk0, pmp0)
                if n2:
                    sync1(i1, cons1, seq1, cm1, fe1, sq1, gh1, lfb1, sr1, sl1,
                          br1, mp1, ld1, st1, dm1, im1, co1, ru1, lu1, pkr1,
                          pkl1, bh1, plk1, pmp1)
                rob._total = rob_total
                lsq._total = lsq_total
                self.cycle = cycle
                sample_at = sampler.take(self, cycle)
                self._sample_at = sample_at
                i0 = cur0.index
                cons0 = cur0.consumed
                seq0 = ts0.seq
                cm0 = ts0.committed
                fe0 = ts0.fe_stall_until
                sq0 = ts0.squash_at
                gh0 = ts0.ghosts
                lfb0 = ts0.last_fetch_block
                sr0 = ts0.stall_rob
                sl0 = ts0.stall_lsq
                br0 = ts0.branches
                mp0 = ts0.mispredicts
                ld0 = h_loads[0]
                st0 = h_stores[0]
                dm0 = h_l1d_misses[0]
                im0 = h_l1i_misses[0]
                co0 = mshr_coalesced[0]
                ru0 = rob_usage[0]
                lu0 = lsq_usage[0]
                pkr0 = rob_peak[0]
                pkl0 = lsq_peak[0]
                if n2:
                    i1 = cur1.index
                    cons1 = cur1.consumed
                    seq1 = ts1.seq
                    cm1 = ts1.committed
                    fe1 = ts1.fe_stall_until
                    sq1 = ts1.squash_at
                    gh1 = ts1.ghosts
                    lfb1 = ts1.last_fetch_block
                    sr1 = ts1.stall_rob
                    sl1 = ts1.stall_lsq
                    br1 = ts1.branches
                    mp1 = ts1.mispredicts
                    ld1 = h_loads[1]
                    st1 = h_stores[1]
                    dm1 = h_l1d_misses[1]
                    im1 = h_l1i_misses[1]
                    co1 = mshr_coalesced[1]
                    ru1 = rob_usage[1]
                    lu1 = lsq_usage[1]
                    pkr1 = rob_peak[1]
                    pkl1 = lsq_peak[1]
                rob_total = rob._total
                lsq_total = lsq._total
                nf0 = min(infl0.values(), default=inf_fill)
                nf1 = min(infl1.values(), default=inf_fill)
                bh0 = predictor._history[0]
                plk0 = predictor.lookups[0]
                pmp0 = predictor.mispredictions[0]
                if n2:
                    bh1 = predictor._history[1]
                    plk1 = predictor.lookups[1]
                    pmp1 = predictor.mispredictions[1]
            if committed_this and not done:
                if require_all and n2:
                    done = cm0 >= tgt0 and cm1 >= tgt1
                else:
                    done = cm0 >= tgt0 or (n2 and cm1 >= tgt1)
            if done:
                break

        sync0(i0, cons0, seq0, cm0, fe0, sq0, gh0, lfb0, sr0, sl0,
              br0, mp0, ld0, st0, dm0, im0, co0, ru0, lu0, pkr0, pkl0,
              bh0, plk0, pmp0)
        if n2:
            sync1(i1, cons1, seq1, cm1, fe1, sq1, gh1, lfb1, sr1, sl1,
                  br1, mp1, ld1, st1, dm1, im1, co1, ru1, lu1, pkr1, pkl1,
                  bh1, plk1, pmp1)
        rob._total = rob_total
        lsq._total = lsq_total
        self.cycle = cycle
