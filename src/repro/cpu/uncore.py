"""Memory hierarchy: L1-I / L1-D, LLC partitions, and main memory.

Combines the cache structures into per-access latency computations for the
core.  Key modeling choices mirror the paper:

* **L1 caches are dynamically shared** between hardware threads in the SMT
  baseline (any thread can allocate any entry) and can be made private for
  the per-resource contention studies (Figs. 4-5) and the ideal
  software-scheduling study (Fig. 13).
* **The LLC is partitioned per application** (Intel CAT-style), so LLC
  capacity contention never pollutes the results — each hardware thread owns
  a private half of the 8 MB NUCA cache with the 28-cycle average access
  latency of Table II.
* **Memory** is a flat 75 ns (≈188 cycles at 2.5 GHz) behind the LLC.
* Thread address spaces are disjoint (distinct tag bits) but *index into the
  same shared L1 sets*, producing genuine capacity/conflict contention.
"""

from __future__ import annotations

from repro.cpu.caches import MSHRFile, SetAssociativeCache
from repro.cpu.config import CoreConfig
from repro.cpu.prefetcher import StridePrefetcher

__all__ = ["MemoryHierarchy"]

#: Shift applied to fold the thread id into the physical block address so the
#: two threads' working sets are distinct yet contend for the same L1 sets.
_THREAD_TAG_SHIFT = 44


class MemoryHierarchy:
    """Per-core memory system shared by both hardware threads."""

    def __init__(self, config: CoreConfig, n_threads: int = 2):
        self.config = config
        self.n_threads = n_threads
        line = config.dcache.line_bytes
        self.line_bytes = line
        self._block_shift = line.bit_length() - 1

        def l1d() -> SetAssociativeCache:
            return SetAssociativeCache(
                config.dcache.size_bytes, line, config.dcache.ways, name="L1-D"
            )

        def l1i() -> SetAssociativeCache:
            return SetAssociativeCache(
                config.icache.size_bytes, config.icache.line_bytes,
                config.icache.ways, name="L1-I",
            )

        if config.private_l1d:
            self.l1d = [l1d() for _ in range(n_threads)]
        else:
            shared_d = l1d()
            self.l1d = [shared_d] * n_threads
        if config.private_l1i:
            self.l1i = [l1i() for _ in range(n_threads)]
        else:
            shared_i = l1i()
            self.l1i = [shared_i] * n_threads

        if config.uncore.llc_partitioned:
            # Private LLC partition per thread (half of the 8 MB NUCA cache),
            # the paper's CAT-style idealization.
            llc_partition = config.uncore.llc_size_bytes // n_threads
            self.llc = [
                SetAssociativeCache(llc_partition, line, config.uncore.llc_ways,
                                    name="LLC")
                for _ in range(n_threads)
            ]
        else:
            # Fully shared LLC: both threads contend for the whole capacity
            # (used to quantify the idealization, not by paper experiments).
            shared_llc = SetAssociativeCache(
                config.uncore.llc_size_bytes, line, config.uncore.llc_ways,
                name="LLC",
            )
            self.llc = [shared_llc] * n_threads

        self.mshrs = MSHRFile(
            config.dcache.mshrs, config.dcache.mshrs_per_thread, n_threads
        )
        self.prefetch_enabled = config.enable_prefetcher
        self.prefetchers = [StridePrefetcher(line_bytes=line) for _ in range(n_threads)]

        self.l1_hit_latency = config.dcache.hit_latency
        self.llc_latency = config.uncore.llc_latency
        self.memory_latency = config.uncore.memory_latency_cycles

        self.l1d_misses = [0] * n_threads
        self.l1i_misses = [0] * n_threads
        self.loads = [0] * n_threads
        self.stores = [0] * n_threads

    # ------------------------------------------------------------------

    def _block(self, thread: int, addr: int) -> int:
        return (addr >> self._block_shift) | (thread << (_THREAD_TAG_SHIFT - self._block_shift))

    def _miss_latency(self, thread: int, block: int) -> int:
        """Latency beyond L1 for a block, filling the LLC partition."""
        if self.llc[thread].access(block):
            return self.llc_latency
        return self.llc_latency + self.memory_latency

    def load(self, thread: int, pf_key: int, addr: int, issue_cycle: int) -> tuple[int, bool]:
        """Perform a load access issued at ``issue_cycle``.

        ``pf_key`` identifies the accessing static instruction for the stride
        prefetcher (the PC, or a synthetic stream handle for stream accesses).
        Returns ``(total latency in cycles, was L1-D miss)``.  Misses consume
        an MSHR; a full MSHR quota delays the fill (structural stall).
        """
        self.loads[thread] += 1
        block = self._block(thread, addr)
        cache = self.l1d[thread]
        hit = cache.access(block)
        if pf_key < 0:  # stream handle: trackable by the PC-indexed RPT
            self._train_prefetcher(thread, pf_key, addr)
        if hit:
            return self.l1_hit_latency, False
        self.l1d_misses[thread] += 1
        latency = self._miss_latency(thread, block)
        fill = self.mshrs.acquire(thread, block, issue_cycle, latency)
        return (fill - issue_cycle) + self.l1_hit_latency, True

    def _train_prefetcher(self, thread: int, pf_key: int, addr: int) -> None:
        """Train the stride prefetcher and apply its fills.

        Only stream-tagged accesses train the table: the synthetic traces
        give irregular accesses effectively unique PCs, which would thrash
        the 32-entry reference-prediction table in a way real (static,
        recurring) load PCs do not.  This models an RPT with an allocation
        filter; see DESIGN.md deviations.
        """
        if not self.prefetch_enabled:
            return
        cache = self.l1d[thread]
        for pf_block in self.prefetchers[thread].train(pf_key, addr):
            tagged = pf_block | (thread << (_THREAD_TAG_SHIFT - self._block_shift))
            if not cache.probe(tagged):
                self._miss_latency(thread, tagged)  # fetch through the LLC path
                cache.fill(tagged)

    def store(self, thread: int, pf_key: int, addr: int, issue_cycle: int) -> bool:
        """Perform a store (write-allocate; latency hidden by the store buffer).

        Returns True if the store missed L1-D.  Store misses still allocate
        lines (capacity pressure — lbm's streaming stores) but do not consume
        MSHRs or stall the pipeline; the drain happens post-commit.
        """
        self.stores[thread] += 1
        block = self._block(thread, addr)
        cache = self.l1d[thread]
        hit = cache.access(block)
        if pf_key < 0:
            self._train_prefetcher(thread, pf_key, addr)
        if hit:
            return False
        self.l1d_misses[thread] += 1
        self._miss_latency(thread, block)
        return True

    def fetch_block(self, thread: int, pc: int) -> int:
        """Access the L1-I for the block containing ``pc``.

        Returns the extra front-end delay in cycles (0 on hit).
        """
        block = self._block(thread, pc)
        if self.l1i[thread].access(block):
            return 0
        self.l1i_misses[thread] += 1
        return self._miss_latency(thread, block)

    # ------------------------------------------------------------------
    # Checkpoint warming (SimFlex-style): install lines without statistics.
    # ------------------------------------------------------------------

    def install_data(self, thread: int, addr: int, l1: bool = False) -> None:
        """Install a data line into the thread's LLC partition (and L1-D)."""
        block = self._block(thread, addr)
        self.llc[thread].fill(block)
        if l1:
            self.l1d[thread].fill(block)

    def install_code(self, thread: int, pc: int, l1: bool = False) -> None:
        """Install a code line into the thread's LLC partition (and L1-I)."""
        block = self._block(thread, pc)
        self.llc[thread].fill(block)
        if l1:
            self.l1i[thread].fill(block)

    # ------------------------------------------------------------------

    def mlp_occupancy(self, thread: int, now: int) -> int:
        """In-flight data misses for ``thread`` (distinct blocks, per Fig. 7)."""
        return self.mshrs.occupancy(thread, now)

    def reset_stats(self) -> None:
        """Zero all statistics, preserving cache/predictor state (warmup)."""
        seen: set[int] = set()
        for group in (self.l1d, self.l1i, self.llc):
            for cache in group:
                if id(cache) not in seen:
                    cache.reset_stats()
                    seen.add(id(cache))
        self.mshrs.reset_stats()
        for pf in self.prefetchers:
            pf.reset_stats()
        self.l1d_misses = [0] * self.n_threads
        self.l1i_misses = [0] * self.n_threads
        self.loads = [0] * self.n_threads
        self.stores = [0] * self.n_threads
