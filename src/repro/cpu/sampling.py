"""Sampling methodology (paper §V-C, after SimFlex/SMARTS).

The paper simulates 320 short samples of each workload: every sample warms
caches and predictors functionally, then runs cycle-accurate simulation for
150K instructions (100K warmup + 50K measured), reporting UIPC.

We reproduce the same structure at configurable scale: each sample
instantiates a fresh core, generates an independent trace segment per
workload (a different region of the synthetic execution — different seed),
runs a warmup phase whose statistics are discarded, and measures UIPC over
the following instructions.  Results aggregate by averaging UIPC across
samples.  The same per-sample seeds are used across all configurations of an
experiment (the paper's "same set of sampling points across all colocations"),
which makes config-to-config comparisons paired and low-variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.config import CoreConfig
from repro.cpu.fast_core import make_core
from repro.cpu.isa import OpClass
from repro.cpu.metrics import SimulationResult
from repro.cpu.smt_core import SMTCore
from repro.cpu.trace import Trace
from repro.obs.sampler import attach_core_observers
from repro.util.rng import derive_seed
from repro.workloads.generator import MemoryMap, TraceGenerator
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "SamplingConfig",
    "sample_solo",
    "sample_colocation",
    "mean_uipc",
    "sample_uniforms",
    "evaluate_sample_windows",
]


@dataclass(frozen=True)
class SamplingConfig:
    """How many samples to run and how long each one is.

    The defaults are sized for fast regression runs; experiment harnesses
    scale them up (see ``repro.experiments.common.fidelity``).
    """

    n_samples: int = 3
    warmup_instructions: int = 5000
    measure_instructions: int = 4000
    seed: int = 42
    #: Close the measurement window only when EVERY thread has committed the
    #: target (long, unbiased windows for the slower thread).  With False the
    #: window closes at the first thread — cheaper, but the slow thread's
    #: statistics are noisy and phase-biased.
    require_all_threads: bool = True
    #: Statistically warm the LLC with steady-state-resident lines before
    #: each sample (the analogue of SimFlex's checkpointed warm state; a
    #: detailed-warmup-only run would see an unrealistically cold LLC).
    checkpoint_warming: bool = True
    #: Safety bound on measured-phase length, in cycles per measured µop.
    max_cycles_per_instruction: int = 1200

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if self.warmup_instructions < 0 or self.measure_instructions <= 0:
            raise ValueError("instruction counts must be positive")

    @property
    def trace_length(self) -> int:
        """Trace length per sample.

        Warmup and measurement both run until *every* thread reaches the
        target, so a faster co-runner consumes a multiple of the nominal
        instruction counts; the 6x headroom keeps replay from wrapping for
        thread-speed ratios up to ~6 (beyond that, a wrap revisits lines the
        checkpoint warming already installed, mildly flattering the fast
        thread).
        """
        return int(6.9 * (self.warmup_instructions + self.measure_instructions)) + 1024

    @property
    def max_cycles(self) -> int:
        return self.measure_instructions * self.max_cycles_per_instruction


def _trace_for(
    profile: WorkloadProfile, sampling: SamplingConfig, sample: int
) -> tuple[Trace, MemoryMap]:
    seed = derive_seed(sampling.seed, profile.name, "sample", sample)
    generator = TraceGenerator(profile, seed=seed)
    return generator.generate(sampling.trace_length), generator.memory_map


def _checkpoint_warm(
    core: SMTCore,
    thread: int,
    trace: Trace,
    memmap: MemoryMap,
    sampling: SamplingConfig,
    sample: int,
) -> None:
    """Install steady-state-resident lines of ``trace`` into the LLC.

    Hot-region and code lines are always resident (tiny working sets).  Each
    unique cold-region line is installed with the steady-state residency
    probability of an LRU-managed partition: the fraction of the cold region
    that fits in the LLC space left after hot data and code.  Streaming lines
    are never resident (no reuse).
    """
    hierarchy = core.hierarchy
    llc_bytes = hierarchy.llc[thread].num_sets * hierarchy.llc[thread].ways * 64
    if len(hierarchy.llc) > 1 and hierarchy.llc[0] is hierarchy.llc[1]:
        # Shared LLC: each thread can count on roughly half the capacity.
        llc_bytes //= 2

    code_blocks = np.unique(trace.pc >> 6)
    for block in code_blocks.tolist():
        hierarchy.install_code(thread, int(block) << 6)

    # Warm the branch predictor: saturate each static branch's bimodal
    # counter toward its dominant direction and install its BTB target.
    is_branch = trace.op == OpClass.BRANCH
    br_pc = trace.pc[is_branch]
    br_taken = trace.taken[is_branch]
    br_target = trace.target[is_branch]
    unique_pc, inverse = np.unique(br_pc, return_inverse=True)
    taken_votes = np.bincount(inverse, weights=br_taken.astype(np.float64))
    counts = np.bincount(inverse)
    last_index = np.zeros(len(unique_pc), dtype=np.int64)
    last_index[inverse] = np.arange(len(br_pc))
    for k in range(len(unique_pc)):
        core.predictor.install(
            thread,
            int(unique_pc[k]),
            bool(taken_votes[k] * 2 > counts[k]),
            int(br_target[last_index[k]]),
        )

    is_mem = (trace.op == OpClass.LOAD) | (trace.op == OpClass.STORE)
    addrs = trace.addr[is_mem]
    hot = np.unique(addrs[(addrs >= memmap.hot_start) & (addrs < memmap.hot_end)] >> 6)
    cold = np.unique(
        addrs[(addrs >= memmap.cold_start) & (addrs < memmap.cold_end)] >> 6
    )
    for block in hot.tolist():
        hierarchy.install_data(thread, int(block) << 6)

    hot_bytes = memmap.hot_end - memmap.hot_start
    code_bytes = len(code_blocks) * 64
    cold_region_bytes = max(memmap.cold_end - memmap.cold_start, 64)
    residency = min(1.0, max(llc_bytes - hot_bytes - code_bytes, 0) / cold_region_bytes)
    if residency > 0.0 and len(cold):
        rng = np.random.default_rng(
            derive_seed(sampling.seed, trace.name, "ckpt", sample, thread)
        )
        resident = cold[rng.random(len(cold)) < residency]
        for block in resident.tolist():
            hierarchy.install_data(thread, int(block) << 6)


def sample_solo(
    profile: WorkloadProfile,
    config: CoreConfig,
    sampling: SamplingConfig = SamplingConfig(),
) -> list[SimulationResult]:
    """Run ``profile`` alone on the core, one result per sample."""
    results = []
    for s in range(sampling.n_samples):
        trace, memmap = _trace_for(profile, sampling, s)
        core = make_core(config, (trace,))
        attach_core_observers(core, {"kind": "solo", "workloads": [profile.name],
                                     "sample": s})
        if sampling.checkpoint_warming:
            _checkpoint_warm(core, 0, trace, memmap, sampling, s)
        results.append(
            core.run(
                sampling.measure_instructions,
                warmup_instructions=sampling.warmup_instructions,
                max_cycles=sampling.max_cycles,
                require_all_threads=sampling.require_all_threads,
            )
        )
    return results


def sample_colocation(
    profile0: WorkloadProfile,
    profile1: WorkloadProfile,
    config: CoreConfig,
    sampling: SamplingConfig = SamplingConfig(),
) -> list[SimulationResult]:
    """Run two workloads colocated on the SMT core, one result per sample.

    Thread 0 runs ``profile0`` (the latency-sensitive thread, by the
    conventions of ``repro.core.partitioning``), thread 1 runs ``profile1``.
    """
    results = []
    for s in range(sampling.n_samples):
        trace0, memmap0 = _trace_for(profile0, sampling, s)
        trace1, memmap1 = _trace_for(profile1, sampling, s)
        core = make_core(config, (trace0, trace1))
        attach_core_observers(
            core, {"kind": "pair", "workloads": [profile0.name, profile1.name],
                   "sample": s},
        )
        if sampling.checkpoint_warming:
            _checkpoint_warm(core, 0, trace0, memmap0, sampling, s)
            _checkpoint_warm(core, 1, trace1, memmap1, sampling, s)
        results.append(
            core.run(
                sampling.measure_instructions,
                warmup_instructions=sampling.warmup_instructions,
                max_cycles=sampling.max_cycles,
                require_all_threads=sampling.require_all_threads,
            )
        )
    return results


def mean_uipc(results: list[SimulationResult], thread: int = 0) -> float:
    """Average UIPC of one hardware thread across samples."""
    if not results:
        raise ValueError("no simulation results to aggregate")
    return sum(r.threads[thread].uipc for r in results) / len(results)


# ----------------------------------------------------------------------
# Batched sample-window evaluation (the surrogate tier's fast path)
# ----------------------------------------------------------------------
#
# The surrogate fidelity tier (:mod:`repro.cpu.surrogate`) replaces serial
# per-config core runs with array operations over a fitted per-anchor
# sample distribution.  Two pieces live here, next to the sampling
# methodology they mirror:
#
# * :func:`sample_uniforms` — the deterministic per-(workload, sample)
#   uniforms that stand in for a sample's exogenous window draw.  They are
#   derived exactly like the per-sample trace seeds above (same
#   ``derive_seed(seed, name, …, sample)`` convention), so surrogate-tier
#   comparisons across configurations are paired the same way the exact
#   tier's "same sampling points across all colocations" pairing works.
# * :func:`evaluate_sample_windows` — the pure-numpy inverse-CDF
#   evaluation of whole (config x sample) grids against sorted per-anchor
#   quantile stacks.


def sample_uniforms(
    sampling: SamplingConfig, name: str, n_samples: int | None = None
) -> np.ndarray:
    """Deterministic per-sample uniforms in [0, 1) for one workload.

    Sample ``s``'s uniform depends only on ``(sampling.seed, name, s)`` —
    not on the core configuration — so every configuration of a sweep sees
    the same window draws (common random numbers, the surrogate analogue
    of reusing trace seeds across configs).
    """
    n = sampling.n_samples if n_samples is None else int(n_samples)
    return np.array([
        np.random.default_rng(
            derive_seed(sampling.seed, name, "window-u", s)
        ).random()
        for s in range(n)
    ])


def evaluate_sample_windows(
    anchors: np.ndarray,
    quantiles: np.ndarray,
    xs: np.ndarray,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Inverse-CDF sample-window evaluation over a whole config grid.

    ``anchors`` (n_anchors,) is the increasing calibration axis;
    ``quantiles`` (n_anchors, n_reps) holds the sorted per-sample UIPCs at
    each anchor; ``xs`` (n_configs,) are the queried axis values and
    ``uniforms`` (n_windows,) the callers' deterministic window draws.
    Returns a ``(n_configs, n_windows)`` UIPC array: the quantile stacks
    of the two neighboring anchors are blended linearly (sortedness is
    preserved), then each uniform picks an order statistic with midpoint
    plotting positions — one numpy expression instead of
    ``n_configs x n_windows`` core simulations.
    """
    anchors = np.asarray(anchors, dtype=float)
    quantiles = np.asarray(quantiles, dtype=float)
    xs = np.asarray(xs, dtype=float)
    uniforms = np.asarray(uniforms, dtype=float)
    li = np.clip(
        np.searchsorted(anchors, xs, side="right") - 1, 0, len(anchors) - 2
    )
    span = anchors[li + 1] - anchors[li]
    weight = np.clip((xs - anchors[li]) / span, 0.0, 1.0)
    stack = (
        quantiles[li] * (1.0 - weight)[:, None]
        + quantiles[li + 1] * weight[:, None]
    )  # (n_configs, n_reps)

    n_reps = stack.shape[1]
    position = np.clip(uniforms * n_reps - 0.5, 0.0, n_reps - 1.0)
    j0 = np.floor(position).astype(np.int64)
    j1 = np.minimum(j0 + 1, n_reps - 1)
    fraction = position - j0
    v0 = stack[:, j0]  # (n_configs, n_windows)
    v1 = stack[:, j1]
    return v0 * (1.0 - fraction) + v1 * fraction
