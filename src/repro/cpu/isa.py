"""Micro-operation model.

The simulator is trace-driven: a workload is a stream of µops, each carrying
its operation class, register-dependency distances, program counter, and (for
memory and control operations) an effective address / branch outcome.  This
corresponds to the information a functional front-end (Simics, in the paper's
Flexus setup) would feed the timing model.
"""

from __future__ import annotations

import enum

__all__ = ["OpClass", "EXEC_LATENCY", "FU_CLASS"]


class OpClass(enum.IntEnum):
    """Operation classes, each mapping onto a functional-unit pool."""

    INT_ALU = 0
    INT_MUL = 1
    FP = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5


#: Execution latency in cycles once operands are ready, excluding memory
#: hierarchy time for loads (which is added from the cache model).
EXEC_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.FP: 4,
    OpClass.LOAD: 0,  # memory latency supplied by the cache hierarchy
    OpClass.STORE: 1,  # stores complete at address generation; data drains post-commit
    OpClass.BRANCH: 1,
}

#: Functional-unit pool each class issues to (key into per-cycle slot counters).
FU_CLASS: dict[OpClass, str] = {
    OpClass.INT_ALU: "int_alu",
    OpClass.INT_MUL: "int_mul",
    OpClass.FP: "fpu",
    OpClass.LOAD: "lsu",
    OpClass.STORE: "lsu",
    OpClass.BRANCH: "int_alu",
}
