"""PC-indexed stride prefetcher (paper Table II: tracks up to 32 load/store PCs).

Classic reference-prediction-table design: each entry remembers the last
address and stride observed for one memory-instruction PC, with a 2-bit
confidence counter.  Once confident, it prefetches ``degree`` lines ahead.
Prefetches fill the L1-D directly (timing-approximate: the simulator treats
a prefetched line as resident, modelling a timely prefetch; untimely
prefetches are not modeled — see DESIGN.md deviations).
"""

from __future__ import annotations

__all__ = ["StridePrefetcher"]


class _Entry:
    __slots__ = ("pc", "last_addr", "stride", "confidence")

    def __init__(self, pc: int, addr: int):
        self.pc = pc
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Reference prediction table with LRU-managed PC entries."""

    def __init__(self, table_size: int = 32, degree: int = 2,
                 confidence_threshold: int = 2, line_bytes: int = 64):
        if table_size <= 0 or degree <= 0:
            raise ValueError("table size and degree must be positive")
        self.table_size = table_size
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self.line_bytes = line_bytes
        self._table: dict[int, _Entry] = {}
        self.issued = 0

    def train(self, pc: int, addr: int) -> list[int]:
        """Observe one access; return block addresses to prefetch (maybe empty)."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # Evict the oldest entry (dict preserves insertion order).
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _Entry(pc, addr)
            return []
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            if entry.confidence < 3:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence >= self.confidence_threshold and entry.stride != 0:
            line = self.line_bytes
            base_block = addr // line
            prefetches = []
            for k in range(1, self.degree + 1):
                block = (addr + k * entry.stride) // line
                if block != base_block:
                    prefetches.append(block)
            self.issued += len(prefetches)
            return prefetches
        return []

    def reset_stats(self) -> None:
        self.issued = 0

    def __len__(self) -> int:
        return len(self._table)
