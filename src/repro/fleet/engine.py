"""Numpy-vectorized fleet simulation engine.

Advances **all servers of a window as array operations**: per-server
Stretch monitor state lives in integer arrays (mode index, compliant and
violation streaks, remaining throttle windows) and each window applies the
extracted :func:`repro.core.monitor.monitor_transition` rules element-wise
via :func:`monitor_transition_vec`.  Tail latency comes from either

* ``tail="surrogate"`` — the fitted queueing surrogate
  (:mod:`repro.fleet.surrogate`), one vectorized evaluation per window,
  which is what makes 100k+ servers × 144 windows tractable; or
* ``tail="exact"`` — one :class:`~repro.qos.queueing.ServiceSimulator` per
  server, driven with the *identical* seeds, peak calibration and request
  streams as the legacy per-object
  :class:`~repro.core.cluster.ClusterSimulator` loop.  With the
  ``jittered`` policy the exact path is bit-compatible with the legacy
  cluster — the fidelity anchor for the seeded equivalence gate.

``run_day(server_range=(lo, hi))`` simulates any contiguous slice of the
fleet while drawing every per-server random stream from the *global*
server index, so sharding the fleet across processes
(:mod:`repro.fleet.shard`) changes nothing but wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.colocation import ColocationPerformance
from repro.core.monitor import (
    MODE_ORDER,
    MonitorConfig,
    validate_monitor_config,
)
from repro.core.stretch import StretchMode
from repro.fleet.policies import PolicyContext, make_policy, resolve_load_curve
from repro.fleet.surrogate import SurrogateFitJob, SurrogateGrid, TailSurrogate
from repro.obs.metrics import MetricsRegistry
from repro.qos.queueing import ServiceSimulator
from repro.util.rng import derive_seed
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "FleetConfig",
    "FleetTimeline",
    "FleetEngine",
    "monitor_transition_vec",
]

#: Mode indices, identical to ``MODE_ORDER`` positions.
_BASELINE, _B_MODE, _Q_MODE = 0, 1, 2
#: Extra perf row used while the co-runner is throttled (service owns the core).
_THROTTLED_ROW = 3


def monitor_transition_vec(
    mode: np.ndarray,
    compliant: np.ndarray,
    violation: np.ndarray,
    throttle: np.ndarray,
    violated: np.ndarray,
    slack: np.ndarray,
    config: MonitorConfig,
    q_mode_available: bool = True,
) -> np.ndarray:
    """Element-wise :func:`~repro.core.monitor.monitor_transition`.

    Updates the four state arrays in place and returns the mask of servers
    that *ordered* a fresh throttle interval this window.  Equivalence with
    the scalar transition is enforced by an exhaustive state-space test
    (``tests/test_fleet.py``).
    """
    throttling = throttle > 0
    throttle[throttling] -= 1
    active = ~throttling

    hit = active & violated
    compliant[hit] = 0
    from_b = hit & (mode == _B_MODE)
    mode[from_b] = _Q_MODE if q_mode_available else _BASELINE
    violation[from_b] = 1
    other = hit & ~from_b
    violation[other] += 1
    if q_mode_available:
        mode[other & (mode == _BASELINE)] = _Q_MODE
    ordered = other & (violation >= config.violation_windows_to_throttle)
    violation[ordered] = 0
    throttle[ordered] = config.throttle_windows

    ok = active & ~violated
    violation[ok] = 0
    slacking = ok & slack
    compliant[slacking] += 1
    engage = slacking & (mode != _B_MODE) & (compliant >= config.engage_windows)
    mode[engage] = _B_MODE
    tight = ok & ~slack
    compliant[tight] = 0
    mode[tight & (mode != _BASELINE)] = _BASELINE
    return ordered


@dataclass(frozen=True)
class FleetConfig:
    """Shape and control parameters of one fleet run.

    Mirrors :class:`~repro.core.cluster.ClusterSimulator`'s knobs (same
    defaults, same validation — eagerly, at construction) plus the fleet
    policy selection.  ``policy`` is a name from
    :data:`repro.fleet.policies.POLICY_NAMES` so configurations stay
    content-addressable for the shard-job cache.
    """

    n_servers: int = 1000
    overprovision: float = 1.2
    balance_jitter: float = 0.05
    policy: str = "jittered"
    window_minutes: float = 10.0
    requests_per_window: int = 2000
    n_workers: int = 8
    q_mode_available: bool = True
    seed: int = 0
    monitor: MonitorConfig = field(default_factory=MonitorConfig)

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.overprovision < 1.0:
            raise ValueError("overprovision must be at least 1.0")
        if not 0.0 <= self.balance_jitter < 0.5:
            raise ValueError("balance_jitter must be in [0, 0.5)")
        if self.window_minutes <= 0:
            raise ValueError("window_minutes must be positive")
        if self.requests_per_window < 1:
            raise ValueError("requests_per_window must be positive")
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        make_policy(self.policy)
        validate_monitor_config(self.monitor)

    @property
    def n_windows(self) -> int:
        return int(round(24 * 60 / self.window_minutes))


@dataclass
class FleetTimeline:
    """Aggregated day trace of a fleet slice (array-of-windows form).

    The fleet engine never materializes per-(server, window) records; this
    is the vectorized counterpart of
    :class:`~repro.core.cluster.ClusterTimeline`, carrying per-window
    fleet aggregates plus per-server day totals (the straggler axis).
    """

    n_servers: int
    shard_lo: int
    window_minutes: float
    hours: np.ndarray  # (W,)
    mode_counts: np.ndarray  # (W, 3) servers per mode, pre-transition
    violations: np.ndarray  # (W,)
    throttled: np.ndarray  # (W,)
    tail_ms_sum: np.ndarray  # (W,)
    batch_uipc_sum: np.ndarray  # (W,)
    server_violations: np.ndarray  # (n_servers,)
    server_bmode_windows: np.ndarray  # (n_servers,)

    @property
    def n_windows(self) -> int:
        return len(self.hours)

    @property
    def total_windows(self) -> int:
        return self.n_servers * self.n_windows

    @property
    def violation_rate(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.violations.sum()) / self.total_windows

    @property
    def bmode_fraction(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.mode_counts[:, _B_MODE].sum()) / self.total_windows

    @property
    def mode_occupancy(self) -> np.ndarray:
        """Fraction of (server, window) pairs per mode — shape (3,)."""
        if self.total_windows == 0:
            return np.zeros(3)
        return self.mode_counts.sum(axis=0) / self.total_windows

    @property
    def throttled_fraction(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.throttled.sum()) / self.total_windows

    @property
    def mean_tail_ms(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.tail_ms_sum.sum()) / self.total_windows

    @property
    def straggler_p99_violations(self) -> float:
        """99th percentile of per-server daily violation counts."""
        if len(self.server_violations) == 0:
            return 0.0
        return float(np.percentile(self.server_violations, 99))

    def batch_throughput_gain(self, baseline_batch_uipc: float) -> float:
        """Fleet batch throughput gain vs an always-Baseline pool."""
        if self.total_windows == 0 or baseline_batch_uipc <= 0:
            return 0.0
        mean = float(self.batch_uipc_sum.sum()) / self.total_windows
        return mean / baseline_batch_uipc - 1.0

    # -- composition and transport --------------------------------------

    @classmethod
    def merge(cls, parts: list["FleetTimeline"]) -> "FleetTimeline":
        """Stitch contiguous shard timelines back into one fleet timeline."""
        if not parts:
            raise ValueError("cannot merge zero fleet timelines")
        parts = sorted(parts, key=lambda t: t.shard_lo)
        first = parts[0]
        for part in parts[1:]:
            if part.n_windows != first.n_windows or (
                part.window_minutes != first.window_minutes
            ):
                raise ValueError("shard timelines disagree on window grid")
        return cls(
            n_servers=sum(p.n_servers for p in parts),
            shard_lo=first.shard_lo,
            window_minutes=first.window_minutes,
            hours=first.hours.copy(),
            mode_counts=np.sum([p.mode_counts for p in parts], axis=0),
            violations=np.sum([p.violations for p in parts], axis=0),
            throttled=np.sum([p.throttled for p in parts], axis=0),
            tail_ms_sum=np.sum([p.tail_ms_sum for p in parts], axis=0),
            batch_uipc_sum=np.sum([p.batch_uipc_sum for p in parts], axis=0),
            server_violations=np.concatenate(
                [p.server_violations for p in parts]
            ),
            server_bmode_windows=np.concatenate(
                [p.server_bmode_windows for p in parts]
            ),
        )

    @classmethod
    def from_cluster(
        cls, timeline, window_minutes: float, shard_lo: int = 0
    ) -> "FleetTimeline":
        """Aggregate a legacy :class:`~repro.core.cluster.ClusterTimeline`.

        Bridges the per-object loop into the fleet representation so the
        equivalence gate (and ``engine="legacy"`` fleet runs) compare
        identical quantities.
        """
        servers = timeline.servers
        if not servers:
            raise ValueError("cluster timeline has no servers")
        n_windows = len(servers[0].windows)
        out = cls.empty(len(servers), n_windows, window_minutes, shard_lo)
        for s, server in enumerate(servers):
            if len(server.windows) != n_windows:
                raise ValueError("servers disagree on window count")
            for k, w in enumerate(server.windows):
                out.hours[k] = w.hour
                out.mode_counts[k, MODE_ORDER.index(w.mode)] += 1
                out.violations[k] += bool(w.qos_violated)
                out.throttled[k] += bool(w.throttled)
                out.tail_ms_sum[k] += w.tail_latency_ms
                out.batch_uipc_sum[k] += w.batch_uipc
                out.server_violations[s] += bool(w.qos_violated)
                out.server_bmode_windows[s] += w.mode is StretchMode.B_MODE
        return out

    @classmethod
    def empty(
        cls,
        n_servers: int,
        n_windows: int,
        window_minutes: float,
        shard_lo: int = 0,
    ) -> "FleetTimeline":
        return cls(
            n_servers=n_servers,
            shard_lo=shard_lo,
            window_minutes=window_minutes,
            hours=np.zeros(n_windows),
            mode_counts=np.zeros((n_windows, 3), dtype=np.int64),
            violations=np.zeros(n_windows, dtype=np.int64),
            throttled=np.zeros(n_windows, dtype=np.int64),
            tail_ms_sum=np.zeros(n_windows),
            batch_uipc_sum=np.zeros(n_windows),
            server_violations=np.zeros(n_servers, dtype=np.int64),
            server_bmode_windows=np.zeros(n_servers, dtype=np.int64),
        )

    def to_values(self) -> tuple[float, ...]:
        """Flatten for the content-addressed result store (shard transport)."""
        return tuple(
            [
                float(self.n_servers),
                float(self.shard_lo),
                float(self.n_windows),
                float(self.window_minutes),
            ]
            + [float(v) for v in self.mode_counts.ravel()]
            + [float(v) for v in self.violations]
            + [float(v) for v in self.throttled]
            + [float(v) for v in self.tail_ms_sum]
            + [float(v) for v in self.batch_uipc_sum]
            + [float(v) for v in self.server_violations]
            + [float(v) for v in self.server_bmode_windows]
        )

    @classmethod
    def from_values(cls, values) -> "FleetTimeline":
        values = np.asarray(values, dtype=float)
        n_servers, shard_lo, n_windows = (int(v) for v in values[:3])
        window_minutes = float(values[3])
        cursor = 4

        def take(count: int) -> np.ndarray:
            nonlocal cursor
            chunk = values[cursor:cursor + count]
            cursor += count
            return chunk

        out = cls(
            n_servers=n_servers,
            shard_lo=shard_lo,
            window_minutes=window_minutes,
            hours=np.arange(n_windows) * window_minutes / 60.0,
            mode_counts=take(n_windows * 3).astype(np.int64).reshape(n_windows, 3),
            violations=take(n_windows).astype(np.int64),
            throttled=take(n_windows).astype(np.int64),
            tail_ms_sum=take(n_windows).copy(),
            batch_uipc_sum=take(n_windows).copy(),
            server_violations=take(n_servers).astype(np.int64),
            server_bmode_windows=take(n_servers).astype(np.int64),
        )
        if cursor != len(values):
            raise ValueError("fleet timeline payload has trailing values")
        return out


class FleetEngine:
    """Vectorized day simulation of a Stretch-managed server fleet."""

    def __init__(
        self,
        ls_profile: WorkloadProfile,
        performance: ColocationPerformance,
        config: FleetConfig | None = None,
        *,
        surrogate: TailSurrogate | None = None,
        store=None,
        metrics: MetricsRegistry | None = None,
    ):
        if ls_profile.qos is None:
            raise ValueError(f"{ls_profile.name!r} has no QoS contract")
        if ls_profile.name != performance.ls_workload:
            raise ValueError(
                f"performance model is for {performance.ls_workload!r}, "
                f"not {ls_profile.name!r}"
            )
        self.ls_profile = ls_profile
        self.performance = performance
        self.config = config if config is not None else FleetConfig()
        self.metrics = metrics
        self._store = store
        self._surrogate = surrogate
        # Rows 0..2: per-mode LS perf factor / batch UIPC with the legacy
        # clamps; row 3: throttled (service owns the core, batch suspended).
        self._perf_rows = np.array(
            [max(performance.ls_perf_factor(m), 0.05) for m in MODE_ORDER]
            + [1.0]
        )
        self._batch_rows = np.array(
            [performance.per_mode[m].batch_uipc for m in MODE_ORDER] + [0.0]
        )

    @property
    def baseline_batch_uipc(self) -> float:
        return self.performance.per_mode[StretchMode.BASELINE].batch_uipc

    @property
    def perf_factors(self) -> tuple[float, ...]:
        """The perf-factor set a surrogate must cover for this fleet."""
        return tuple(sorted(set(float(p) for p in self._perf_rows)))

    def surrogate_grid(self) -> SurrogateGrid:
        """Calibration grid matched to this fleet's window parameters."""
        rpw = self.config.requests_per_window
        return SurrogateGrid(
            n_requests=rpw, peak_requests=max(20000, rpw)
        )

    def ensure_surrogate(self) -> TailSurrogate:
        """Fit (or fetch from the result store) the tail surrogate."""
        if self._surrogate is None:
            job = SurrogateFitJob(
                qos=self.ls_profile.qos,
                perf_factors=self.perf_factors,
                grid=self.surrogate_grid(),
                n_workers=self.config.n_workers,
            )
            store = self._store
            if store is None:
                from repro.engine.store import default_store

                store = default_store()
            self._surrogate = TailSurrogate.from_values(store.compute(job))
        return self._surrogate

    # -- evaluation ------------------------------------------------------

    def run_day(
        self,
        load,
        *,
        tail: str = "surrogate",
        server_range: tuple[int, int] | None = None,
    ) -> FleetTimeline:
        """Simulate 24 hours for fleet servers ``[lo, hi)``.

        ``load`` is a cluster-level diurnal curve: a registered name, a
        ``"flat:<x>"`` spec, or a callable ``hour -> fraction``.  ``tail``
        selects the evaluator (``"surrogate"`` or ``"exact"``).  All
        per-server randomness keys off the *global* server index, so a
        sliced run reproduces exactly the slice of a full run.
        """
        cfg = self.config
        lo, hi = server_range if server_range is not None else (0, cfg.n_servers)
        if not 0 <= lo < hi <= cfg.n_servers:
            raise ValueError(
                f"server_range {(lo, hi)} outside fleet [0, {cfg.n_servers})"
            )
        if tail not in ("surrogate", "exact"):
            raise ValueError("tail must be 'surrogate' or 'exact'")
        _, load_fn = resolve_load_curve(load)
        evaluate = (
            self._surrogate_evaluator(lo, hi)
            if tail == "surrogate"
            else self._exact_evaluator(lo, hi)
        )

        n = hi - lo
        n_windows = cfg.n_windows
        policy = make_policy(cfg.policy)
        ctx = PolicyContext(
            n_servers=cfg.n_servers,
            n_windows=n_windows,
            overprovision=cfg.overprovision,
            balance_jitter=cfg.balance_jitter,
            seed=cfg.seed,
        )
        qos = self.ls_profile.qos
        engage_ms = qos.target_ms * cfg.monitor.engage_fraction

        mode = np.zeros(n, dtype=np.int64)
        compliant = np.zeros(n, dtype=np.int64)
        violation = np.zeros(n, dtype=np.int64)
        throttle = np.zeros(n, dtype=np.int64)
        out = FleetTimeline.empty(n, n_windows, cfg.window_minutes, shard_lo=lo)

        for k in range(n_windows):
            hour = k * cfg.window_minutes / 60.0
            # The legacy loop indexes jitter with int(hour * 60 / wm); keep
            # the float-faithful expression so both paths pick identical
            # per-window streams even when the division does not round-trip.
            window_index = int(hour * 60.0 / cfg.window_minutes)
            loads = policy.server_loads(load_fn(hour), window_index, ctx)[lo:hi]
            loads = np.maximum(np.clip(loads, 0.0, 1.2), 0.02)

            throttled_now = throttle > 0
            rows = np.where(throttled_now, _THROTTLED_ROW, mode)
            perf = self._perf_rows[rows]
            tails = evaluate(k, loads, perf)
            violated = tails > qos.target_ms
            slack = tails <= engage_ms

            out.hours[k] = hour
            out.mode_counts[k] = np.bincount(mode, minlength=3)
            out.violations[k] = int(violated.sum())
            out.throttled[k] = int(throttled_now.sum())
            out.tail_ms_sum[k] = float(tails.sum())
            out.batch_uipc_sum[k] = float(self._batch_rows[rows].sum())
            out.server_violations += violated
            out.server_bmode_windows += mode == _B_MODE

            monitor_transition_vec(
                mode, compliant, violation, throttle, violated, slack,
                cfg.monitor, cfg.q_mode_available,
            )

        if self.metrics is not None:
            from repro.obs.fleet import publish_fleet_metrics

            publish_fleet_metrics(self.metrics, out)
        return out

    def _surrogate_evaluator(self, lo: int, hi: int) -> Callable:
        surrogate = self.ensure_surrogate()
        n_total = self.config.n_servers
        seed = self.config.seed

        def evaluate(window: int, loads, perf):
            # One uniform per (server, window), drawn for the whole fleet
            # and sliced, so shard boundaries never change the streams.
            rng = np.random.default_rng(
                derive_seed(seed, "fleet-noise", window)
            )
            u = rng.random(n_total)[lo:hi]
            return surrogate.sample(loads, perf, u)

        return evaluate

    def _exact_evaluator(self, lo: int, hi: int) -> Callable:
        cfg = self.config
        qos = self.ls_profile.qos
        sims = [
            ServiceSimulator(
                qos,
                n_workers=cfg.n_workers,
                seed=derive_seed(cfg.seed, "server", k) & 0x7FFFFF,
            )
            for k in range(lo, hi)
        ]
        horizon = max(20000, cfg.requests_per_window)
        peaks = [sim.peak_load(n_requests=horizon) for sim in sims]

        def evaluate(window: int, loads, perf):
            tails = np.empty(len(sims))
            for i, sim in enumerate(sims):
                stats = sim.run(
                    peaks[i] * loads[i],
                    perf[i],
                    cfg.requests_per_window,
                    seed_offset=window + 1,
                )
                tails[i] = stats.percentile(qos.percentile)
            return tails

        return evaluate
