"""Numpy-vectorized fleet simulation engine.

Advances **all servers of a window as array operations**: per-server
Stretch monitor state lives in integer arrays (mode index, compliant and
violation streaks, remaining throttle windows) and each window applies the
extracted :func:`repro.core.monitor.monitor_transition` rules element-wise
via :func:`monitor_transition_vec`.  Tail latency comes from either

* ``tail="surrogate"`` — the fitted queueing surrogate
  (:mod:`repro.fleet.surrogate`), one vectorized evaluation per window,
  which is what makes 100k+ servers × 144 windows tractable; or
* ``tail="exact"`` — one :class:`~repro.qos.queueing.ServiceSimulator` per
  server, driven with the *identical* seeds, peak calibration and request
  streams as the legacy per-object
  :class:`~repro.core.cluster.ClusterSimulator` loop.  With the
  ``jittered`` policy the exact path is bit-compatible with the legacy
  cluster — the fidelity anchor for the seeded equivalence gate.

``run_day(server_range=(lo, hi))`` simulates any contiguous slice of the
fleet while drawing every per-server random stream from the *global*
server index, so sharding the fleet across processes
(:mod:`repro.fleet.shard`) changes nothing but wall-clock time.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.colocation import ColocationPerformance
from repro.core.monitor import (
    MODE_ORDER,
    MonitorConfig,
    validate_monitor_config,
)
from repro.core.stretch import StretchMode
from repro.fleet.placement import (
    CorunnerTable,
    PlacementContext,
    make_placement,
    mix_counts,
)
from repro.fleet.policies import PolicyContext, make_policy, resolve_load_curve
from repro.fleet.surrogate import SurrogateFitJob, SurrogateGrid, TailSurrogate
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import active_profiler
from repro.qos.queueing import ServiceSimulator
from repro.scenarios import ScenarioSampler, ScenarioSpec
from repro.util.rng import derive_seed
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "DEFAULT_CHUNK_SERVERS",
    "FleetConfig",
    "FleetState",
    "FleetStepper",
    "FleetTimeline",
    "FleetEngine",
    "monitor_transition_vec",
]

#: Mode indices, identical to ``MODE_ORDER`` positions.
_BASELINE, _B_MODE, _Q_MODE = 0, 1, 2
#: Extra perf row used while the co-runner is throttled (service owns the core).
_THROTTLED_ROW = 3

#: Servers advanced per inner chunk of a window.  Chunking keeps the
#: ~dozen per-server temporaries of one window step inside the last-level
#: cache at 100k–1M+ servers (the ``server_windows_per_s`` falloff in
#: BENCH_fleet.json is a working-set effect); every chunked operation is
#: element-wise, so integer aggregates are chunk-count-invariant and float
#: window sums differ from the unchunked order only by summation-order
#: noise.  Override with ``REPRO_FLEET_CHUNK`` for profiling.
DEFAULT_CHUNK_SERVERS = 65536
_CHUNK_ENV = "REPRO_FLEET_CHUNK"

#: "Inherit the engine's scenario" sentinel for stepper()/run_day().
_UNSET = object()


def _resolve_chunk_size(chunk_size: int | None) -> int:
    source = "chunk_size"
    if chunk_size is None:
        raw = os.environ.get(_CHUNK_ENV)
        if raw is None:
            return DEFAULT_CHUNK_SERVERS
        source = _CHUNK_ENV
        try:
            chunk_size = int(raw)
        except ValueError:
            raise ValueError(
                f"{_CHUNK_ENV}={raw!r} is not an integer"
            ) from None
    if chunk_size < 1:
        raise ValueError(f"{source} must be positive")
    return chunk_size


def monitor_transition_vec(
    mode: np.ndarray,
    compliant: np.ndarray,
    violation: np.ndarray,
    throttle: np.ndarray,
    violated: np.ndarray,
    slack: np.ndarray,
    config: MonitorConfig,
    q_mode_available: bool = True,
) -> np.ndarray:
    """Element-wise :func:`~repro.core.monitor.monitor_transition`.

    Updates the four state arrays in place and returns the mask of servers
    that *ordered* a fresh throttle interval this window.  Equivalence with
    the scalar transition is enforced by an exhaustive state-space test
    (``tests/test_fleet.py``).
    """
    throttling = throttle > 0
    throttle[throttling] -= 1
    active = ~throttling

    hit = active & violated
    compliant[hit] = 0
    from_b = hit & (mode == _B_MODE)
    mode[from_b] = _Q_MODE if q_mode_available else _BASELINE
    violation[from_b] = 1
    other = hit & ~from_b
    violation[other] += 1
    if q_mode_available:
        mode[other & (mode == _BASELINE)] = _Q_MODE
    ordered = other & (violation >= config.violation_windows_to_throttle)
    violation[ordered] = 0
    throttle[ordered] = config.throttle_windows

    ok = active & ~violated
    violation[ok] = 0
    slacking = ok & slack
    compliant[slacking] += 1
    engage = slacking & (mode != _B_MODE) & (compliant >= config.engage_windows)
    mode[engage] = _B_MODE
    tight = ok & ~slack
    compliant[tight] = 0
    mode[tight & (mode != _BASELINE)] = _BASELINE
    return ordered


@dataclass(frozen=True)
class FleetConfig:
    """Shape and control parameters of one fleet run.

    Mirrors :class:`~repro.core.cluster.ClusterSimulator`'s knobs (same
    defaults, same validation — eagerly, at construction) plus the fleet
    policy selection.  ``policy`` is a name from
    :data:`repro.fleet.policies.POLICY_NAMES` so configurations stay
    content-addressable for the shard-job cache.

    ``population`` names the heterogeneous batch co-runner profiles of
    the fleet (empty — the default — runs every server against the
    engine's single ``performance`` model, bit-identically to the
    pre-placement engine).  ``population_mix`` gives their fractional
    shares (empty = uniform), ``placement`` names the policy from
    :data:`repro.fleet.placement.PLACEMENT_NAMES` assigning profiles to
    servers, and ``placement_epoch`` is the reassignment period in
    monitoring windows.
    """

    n_servers: int = 1000
    overprovision: float = 1.2
    balance_jitter: float = 0.05
    policy: str = "jittered"
    window_minutes: float = 10.0
    requests_per_window: int = 2000
    n_workers: int = 8
    q_mode_available: bool = True
    seed: int = 0
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    population: tuple[str, ...] = ()
    population_mix: tuple[float, ...] = ()
    placement: str = "random"
    placement_epoch: int = 6

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.overprovision < 1.0:
            raise ValueError("overprovision must be at least 1.0")
        if not 0.0 <= self.balance_jitter < 0.5:
            raise ValueError("balance_jitter must be in [0, 0.5)")
        if self.window_minutes <= 0:
            raise ValueError("window_minutes must be positive")
        if self.requests_per_window < 1:
            raise ValueError("requests_per_window must be positive")
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        make_policy(self.policy)
        validate_monitor_config(self.monitor)
        # Coerce sequences so configs stay hashable/content-addressable.
        object.__setattr__(self, "population", tuple(self.population))
        object.__setattr__(
            self, "population_mix", tuple(float(v) for v in self.population_mix)
        )
        make_placement(self.placement)
        if self.placement_epoch < 1:
            raise ValueError("placement_epoch must be >= 1")
        if self.population_mix:
            if len(self.population_mix) != len(self.population):
                raise ValueError(
                    "population_mix length must match the population"
                )
            if min(self.population_mix) <= 0.0:
                raise ValueError("population_mix fractions must be positive")
        if self.population and len(set(self.population)) != len(self.population):
            raise ValueError("population profiles must be unique")

    @property
    def mix_fractions(self) -> tuple[float, ...]:
        """Normalized population shares (uniform when no mix was given)."""
        n = len(self.population)
        if n == 0:
            return ()
        if not self.population_mix:
            return (1.0 / n,) * n
        total = sum(self.population_mix)
        return tuple(v / total for v in self.population_mix)

    @property
    def n_windows(self) -> int:
        return int(round(24 * 60 / self.window_minutes))


@dataclass
class FleetTimeline:
    """Aggregated day trace of a fleet slice (array-of-windows form).

    The fleet engine never materializes per-(server, window) records; this
    is the vectorized counterpart of
    :class:`~repro.core.cluster.ClusterTimeline`, carrying per-window
    fleet aggregates plus per-server day totals (the straggler axis).
    """

    n_servers: int
    shard_lo: int
    window_minutes: float
    hours: np.ndarray  # (W,)
    mode_counts: np.ndarray  # (W, 3) servers per mode, pre-transition
    violations: np.ndarray  # (W,)
    throttled: np.ndarray  # (W,)
    tail_ms_sum: np.ndarray  # (W,)
    batch_uipc_sum: np.ndarray  # (W,)
    server_violations: np.ndarray  # (n_servers,)
    server_bmode_windows: np.ndarray  # (n_servers,)

    @property
    def n_windows(self) -> int:
        return len(self.hours)

    @property
    def total_windows(self) -> int:
        return self.n_servers * self.n_windows

    @property
    def violation_rate(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.violations.sum()) / self.total_windows

    @property
    def bmode_fraction(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.mode_counts[:, _B_MODE].sum()) / self.total_windows

    @property
    def mode_occupancy(self) -> np.ndarray:
        """Fraction of (server, window) pairs per mode — shape (3,)."""
        if self.total_windows == 0:
            return np.zeros(3)
        return self.mode_counts.sum(axis=0) / self.total_windows

    @property
    def throttled_fraction(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.throttled.sum()) / self.total_windows

    @property
    def mean_tail_ms(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return float(self.tail_ms_sum.sum()) / self.total_windows

    @property
    def straggler_p99_violations(self) -> float:
        """99th percentile of per-server daily violation counts."""
        if len(self.server_violations) == 0:
            return 0.0
        return float(np.percentile(self.server_violations, 99))

    def batch_throughput_gain(self, baseline_batch_uipc: float) -> float:
        """Fleet batch throughput gain vs an always-Baseline pool."""
        if self.total_windows == 0 or baseline_batch_uipc <= 0:
            return 0.0
        mean = float(self.batch_uipc_sum.sum()) / self.total_windows
        return mean / baseline_batch_uipc - 1.0

    def slice_metrics(self, k0: int, k1: int) -> dict:
        """Aggregate QoS/throughput metrics over window rows ``[k0, k1)``.

        The what-if query path compares a live and a shadow fleet over the
        same horizon; this is the shared summary both sides report.
        """
        k0 = max(int(k0), 0)
        k1 = min(int(k1), self.n_windows)
        windows = self.n_servers * max(k1 - k0, 0)
        if windows == 0:
            return {
                "windows": 0, "violation_rate": 0.0, "bmode_fraction": 0.0,
                "throttled_fraction": 0.0, "mean_tail_ms": 0.0,
                "mean_batch_uipc": 0.0,
            }
        return {
            "windows": windows,
            "violation_rate": float(self.violations[k0:k1].sum()) / windows,
            "bmode_fraction": (
                float(self.mode_counts[k0:k1, _B_MODE].sum()) / windows
            ),
            "throttled_fraction": float(self.throttled[k0:k1].sum()) / windows,
            "mean_tail_ms": float(self.tail_ms_sum[k0:k1].sum()) / windows,
            "mean_batch_uipc": (
                float(self.batch_uipc_sum[k0:k1].sum()) / windows
            ),
        }

    # -- composition and transport --------------------------------------

    def copy(self) -> "FleetTimeline":
        """Deep copy (fresh arrays) — what-if forks mutate their copy."""
        return FleetTimeline(
            n_servers=self.n_servers,
            shard_lo=self.shard_lo,
            window_minutes=self.window_minutes,
            hours=self.hours.copy(),
            mode_counts=self.mode_counts.copy(),
            violations=self.violations.copy(),
            throttled=self.throttled.copy(),
            tail_ms_sum=self.tail_ms_sum.copy(),
            batch_uipc_sum=self.batch_uipc_sum.copy(),
            server_violations=self.server_violations.copy(),
            server_bmode_windows=self.server_bmode_windows.copy(),
        )

    @classmethod
    def merge(cls, parts: list["FleetTimeline"]) -> "FleetTimeline":
        """Stitch contiguous shard timelines back into one fleet timeline."""
        if not parts:
            raise ValueError("cannot merge zero fleet timelines")
        parts = sorted(parts, key=lambda t: t.shard_lo)
        first = parts[0]
        for part in parts[1:]:
            if part.n_windows != first.n_windows or (
                part.window_minutes != first.window_minutes
            ):
                raise ValueError("shard timelines disagree on window grid")
        return cls(
            n_servers=sum(p.n_servers for p in parts),
            shard_lo=first.shard_lo,
            window_minutes=first.window_minutes,
            hours=first.hours.copy(),
            mode_counts=np.sum([p.mode_counts for p in parts], axis=0),
            violations=np.sum([p.violations for p in parts], axis=0),
            throttled=np.sum([p.throttled for p in parts], axis=0),
            tail_ms_sum=np.sum([p.tail_ms_sum for p in parts], axis=0),
            batch_uipc_sum=np.sum([p.batch_uipc_sum for p in parts], axis=0),
            server_violations=np.concatenate(
                [p.server_violations for p in parts]
            ),
            server_bmode_windows=np.concatenate(
                [p.server_bmode_windows for p in parts]
            ),
        )

    @classmethod
    def from_cluster(
        cls, timeline, window_minutes: float, shard_lo: int = 0
    ) -> "FleetTimeline":
        """Aggregate a legacy :class:`~repro.core.cluster.ClusterTimeline`.

        Bridges the per-object loop into the fleet representation so the
        equivalence gate (and ``engine="legacy"`` fleet runs) compare
        identical quantities.
        """
        servers = timeline.servers
        if not servers:
            raise ValueError("cluster timeline has no servers")
        n_windows = len(servers[0].windows)
        out = cls.empty(len(servers), n_windows, window_minutes, shard_lo)
        for s, server in enumerate(servers):
            if len(server.windows) != n_windows:
                raise ValueError("servers disagree on window count")
            for k, w in enumerate(server.windows):
                out.hours[k] = w.hour
                out.mode_counts[k, MODE_ORDER.index(w.mode)] += 1
                out.violations[k] += bool(w.qos_violated)
                out.throttled[k] += bool(w.throttled)
                out.tail_ms_sum[k] += w.tail_latency_ms
                out.batch_uipc_sum[k] += w.batch_uipc
                out.server_violations[s] += bool(w.qos_violated)
                out.server_bmode_windows[s] += w.mode is StretchMode.B_MODE
        return out

    @classmethod
    def empty(
        cls,
        n_servers: int,
        n_windows: int,
        window_minutes: float,
        shard_lo: int = 0,
    ) -> "FleetTimeline":
        return cls(
            n_servers=n_servers,
            shard_lo=shard_lo,
            window_minutes=window_minutes,
            hours=np.arange(n_windows) * window_minutes / 60.0,
            mode_counts=np.zeros((n_windows, 3), dtype=np.int64),
            violations=np.zeros(n_windows, dtype=np.int64),
            throttled=np.zeros(n_windows, dtype=np.int64),
            tail_ms_sum=np.zeros(n_windows),
            batch_uipc_sum=np.zeros(n_windows),
            server_violations=np.zeros(n_servers, dtype=np.int64),
            server_bmode_windows=np.zeros(n_servers, dtype=np.int64),
        )

    def to_values(self) -> tuple[float, ...]:
        """Flatten for the content-addressed result store (shard transport)."""
        return tuple(
            [
                float(self.n_servers),
                float(self.shard_lo),
                float(self.n_windows),
                float(self.window_minutes),
            ]
            + [float(v) for v in self.mode_counts.ravel()]
            + [float(v) for v in self.violations]
            + [float(v) for v in self.throttled]
            + [float(v) for v in self.tail_ms_sum]
            + [float(v) for v in self.batch_uipc_sum]
            + [float(v) for v in self.server_violations]
            + [float(v) for v in self.server_bmode_windows]
        )

    @classmethod
    def from_values(cls, values) -> "FleetTimeline":
        values = np.asarray(values, dtype=float)
        n_servers, shard_lo, n_windows = (int(v) for v in values[:3])
        window_minutes = float(values[3])
        cursor = 4

        def take(count: int) -> np.ndarray:
            nonlocal cursor
            chunk = values[cursor:cursor + count]
            cursor += count
            return chunk

        out = cls(
            n_servers=n_servers,
            shard_lo=shard_lo,
            window_minutes=window_minutes,
            hours=np.arange(n_windows) * window_minutes / 60.0,
            mode_counts=take(n_windows * 3).astype(np.int64).reshape(n_windows, 3),
            violations=take(n_windows).astype(np.int64),
            throttled=take(n_windows).astype(np.int64),
            tail_ms_sum=take(n_windows).copy(),
            batch_uipc_sum=take(n_windows).copy(),
            server_violations=take(n_servers).astype(np.int64),
            server_bmode_windows=take(n_servers).astype(np.int64),
        )
        if cursor != len(values):
            raise ValueError("fleet timeline payload has trailing values")
        return out


@dataclass
class FleetState:
    """The complete resumable state of a fleet slice mid-day.

    Everything the stepped engine carries across windows lives here: the
    per-server monitor arrays, the next window index, and the accumulated
    :class:`FleetTimeline`.  All per-window randomness (balancing jitter,
    surrogate noise, DES request streams) is derived *statelessly* from
    ``(seed, window)`` label paths, so this dataclass — not any hidden RNG
    cursor — is the whole checkpoint: restoring it and stepping on is
    bit-identical to never having stopped.
    """

    lo: int
    hi: int
    window: int
    mode: np.ndarray  # (n,) int64, MODE_ORDER indices
    compliant: np.ndarray  # (n,) int64 compliant-streak counters
    violation: np.ndarray  # (n,) int64 violation-streak counters
    throttle: np.ndarray  # (n,) int64 remaining throttle windows
    timeline: FleetTimeline

    @property
    def n_servers(self) -> int:
        return self.hi - self.lo

    @property
    def n_windows(self) -> int:
        return self.timeline.n_windows

    @property
    def done(self) -> bool:
        return self.window >= self.n_windows

    @classmethod
    def fresh(
        cls, lo: int, hi: int, n_windows: int, window_minutes: float
    ) -> "FleetState":
        n = hi - lo
        return cls(
            lo=lo,
            hi=hi,
            window=0,
            mode=np.zeros(n, dtype=np.int64),
            compliant=np.zeros(n, dtype=np.int64),
            violation=np.zeros(n, dtype=np.int64),
            throttle=np.zeros(n, dtype=np.int64),
            timeline=FleetTimeline.empty(n, n_windows, window_minutes, lo),
        )

    def copy(self) -> "FleetState":
        """Deep copy — the snapshot a what-if shadow advances in isolation."""
        return FleetState(
            lo=self.lo,
            hi=self.hi,
            window=self.window,
            mode=self.mode.copy(),
            compliant=self.compliant.copy(),
            violation=self.violation.copy(),
            throttle=self.throttle.copy(),
            timeline=self.timeline.copy(),
        )

    # -- checkpoint transport (result-store value format) ----------------

    def to_values(self) -> tuple[float, ...]:
        """Flatten for the content-addressed store (checkpoint payload)."""
        return tuple(
            [float(self.lo), float(self.hi), float(self.window)]
            + [float(v) for v in self.mode]
            + [float(v) for v in self.compliant]
            + [float(v) for v in self.violation]
            + [float(v) for v in self.throttle]
            + list(self.timeline.to_values())
        )

    @classmethod
    def from_values(cls, values) -> "FleetState":
        values = np.asarray(values, dtype=float)
        lo, hi, window = (int(v) for v in values[:3])
        n = hi - lo
        if n <= 0:
            raise ValueError("fleet state payload has an empty server range")
        cursor = 3

        def take(count: int) -> np.ndarray:
            nonlocal cursor
            chunk = values[cursor:cursor + count]
            cursor += count
            return chunk.astype(np.int64)

        state = cls(
            lo=lo,
            hi=hi,
            window=window,
            mode=take(n),
            compliant=take(n),
            violation=take(n),
            throttle=take(n),
            timeline=FleetTimeline.from_values(values[cursor:]),
        )
        if state.timeline.n_servers != n or state.timeline.shard_lo != lo:
            raise ValueError("fleet state and timeline disagree on the slice")
        return state


class FleetEngine:
    """Vectorized day simulation of a Stretch-managed server fleet."""

    def __init__(
        self,
        ls_profile: WorkloadProfile,
        performance: ColocationPerformance,
        config: FleetConfig | None = None,
        *,
        corunners=None,
        surrogate: TailSurrogate | None = None,
        store=None,
        metrics: MetricsRegistry | None = None,
        scenario: ScenarioSpec | None = None,
    ):
        if ls_profile.qos is None:
            raise ValueError(f"{ls_profile.name!r} has no QoS contract")
        if ls_profile.name != performance.ls_workload:
            raise ValueError(
                f"performance model is for {performance.ls_workload!r}, "
                f"not {ls_profile.name!r}"
            )
        if scenario is not None and not isinstance(scenario, ScenarioSpec):
            raise TypeError(
                "scenario must be a ScenarioSpec or None (use "
                "repro.scenarios.as_scenario to resolve names/dicts); "
                f"got {scenario!r}"
            )
        self.ls_profile = ls_profile
        self.performance = performance
        self.config = config if config is not None else FleetConfig()
        self.scenario = scenario
        self.metrics = metrics
        self._store = store
        self._surrogate = surrogate
        # Rows 0..2: per-mode LS perf factor / batch UIPC with the legacy
        # clamps; row 3: throttled (service owns the core, batch suspended).
        self._perf_rows = np.array(
            [max(performance.ls_perf_factor(m), 0.05) for m in MODE_ORDER]
            + [1.0]
        )
        self._batch_rows = np.array(
            [performance.per_mode[m].batch_uipc for m in MODE_ORDER] + [0.0]
        )
        # Heterogeneous co-runner population: one measured model per
        # profile, condensed into the (P, 4) placement profile table.
        population = self.config.population
        if population:
            if corunners is None:
                raise ValueError(
                    "config declares a co-runner population; pass corunners= "
                    "(one ColocationPerformance per population profile)"
                )
            corunners = tuple(corunners)
            if len(corunners) != len(population):
                raise ValueError(
                    f"got {len(corunners)} co-runner models for a population "
                    f"of {len(population)}"
                )
            for name, model in zip(population, corunners):
                if model.ls_workload != ls_profile.name:
                    raise ValueError(
                        f"co-runner model for {name!r} measures "
                        f"{model.ls_workload!r}, not {ls_profile.name!r}"
                    )
                if model.batch_workload != name:
                    raise ValueError(
                        f"population lists {name!r} but its model measures "
                        f"{model.batch_workload!r}"
                    )
            self.corunners: tuple[ColocationPerformance, ...] | None = corunners
            self.corunner_table: CorunnerTable | None = (
                CorunnerTable.from_performances(corunners)
            )
        else:
            if corunners:
                raise ValueError(
                    "corunners= requires a config with a population"
                )
            self.corunners = None
            self.corunner_table = None

    @property
    def baseline_batch_uipc(self) -> float:
        """Fleet-mean batch UIPC of an always-Baseline pool.

        Homogeneous fleets read the single model; heterogeneous fleets
        weight the population's Baseline rows by the *exact* server counts
        the placement layer apportions.
        """
        if self.corunner_table is None:
            return self.performance.per_mode[StretchMode.BASELINE].batch_uipc
        counts = mix_counts(
            self.config.n_servers, np.asarray(self.config.mix_fractions)
        )
        return float(
            counts @ self.corunner_table.batch_rows[:, 0]
        ) / self.config.n_servers

    @property
    def perf_factors(self) -> tuple[float, ...]:
        """The perf-factor set a surrogate must cover for this fleet."""
        rows = set(float(p) for p in self._perf_rows)
        if self.corunner_table is not None:
            rows.update(self.corunner_table.perf_factors)
        return tuple(sorted(rows))

    def surrogate_grid(self) -> SurrogateGrid:
        """Calibration grid matched to this fleet's window parameters."""
        rpw = self.config.requests_per_window
        return SurrogateGrid(
            n_requests=rpw, peak_requests=max(20000, rpw)
        )

    def ensure_surrogate(self) -> TailSurrogate:
        """Fit (or fetch from the result store) the tail surrogate."""
        if self._surrogate is None:
            job = SurrogateFitJob(
                qos=self.ls_profile.qos,
                perf_factors=self.perf_factors,
                grid=self.surrogate_grid(),
                n_workers=self.config.n_workers,
            )
            store = self._store
            if store is None:
                from repro.engine.store import default_store

                store = default_store()
            self._surrogate = TailSurrogate.from_values(store.compute(job))
        return self._surrogate

    # -- evaluation ------------------------------------------------------

    def stepper(
        self,
        load=None,
        *,
        tail: str = "surrogate",
        server_range: tuple[int, int] | None = None,
        state: FleetState | None = None,
        chunk_size: int | None = None,
        scenario: ScenarioSpec | None = _UNSET,
    ) -> "FleetStepper":
        """Incremental window-by-window driver over this fleet.

        The resumable core of :meth:`run_day`: advance any number of
        windows with :meth:`FleetStepper.step` (optionally feeding each
        window's cluster load directly, the simulation-as-a-service path),
        snapshot/restore the full :class:`FleetState`, and keep going.
        Pass ``state=`` to resume from a checkpointed (or forked) state.
        ``scenario=`` overrides the engine's adversarial scenario for
        this stepper (``None`` detaches it).
        """
        return FleetStepper(
            self, load, tail=tail, server_range=server_range, state=state,
            chunk_size=chunk_size, scenario=scenario,
        )

    def run_day(
        self,
        load,
        *,
        tail: str = "surrogate",
        server_range: tuple[int, int] | None = None,
        scenario: ScenarioSpec | None = _UNSET,
    ) -> FleetTimeline:
        """Simulate 24 hours for fleet servers ``[lo, hi)``.

        ``load`` is a cluster-level diurnal curve: a registered name, a
        ``"flat:<x>"`` spec, or a callable ``hour -> fraction``.  ``tail``
        selects the evaluator (``"surrogate"`` or ``"exact"``).  All
        per-server randomness keys off the *global* server index, so a
        sliced run reproduces exactly the slice of a full run.
        """
        stepper = self.stepper(
            load, tail=tail, server_range=server_range, scenario=scenario
        )
        out = stepper.run()
        if self.metrics is not None:
            from repro.obs.fleet import publish_fleet_metrics

            publish_fleet_metrics(self.metrics, out)
        return out


class FleetStepper:
    """Window-by-window fleet advancement with a resumable state.

    Owns everything that is *reconstructible* from the engine's
    configuration — the balancing policy, the load curve, the tail
    evaluator — while all *carried* state lives in :attr:`state`
    (a :class:`FleetState`).  One :meth:`step` call advances exactly one
    monitoring window; ``step(cluster_load)`` overrides the load curve for
    that window, which is how a live :class:`~repro.service.FleetService`
    feeds ingested traffic into the simulation.

    Within a window, servers advance in chunks of ``chunk_size``
    (:data:`DEFAULT_CHUNK_SERVERS`) so the per-server temporaries stay
    cache-resident at 100k–1M+ servers.  Chunking is deterministic, so a
    resumed stepper is bit-identical to an uninterrupted one; integer
    aggregates are chunk-size-invariant, float window sums vary only by
    summation order.  The ``exact`` tail path is per-server DES-bound and
    runs unchunked.

    Setting :attr:`capture_violators` to K > 0 additionally exposes, in
    :attr:`last_violators`, the window's top-K violating servers (by
    cumulative day violations) with the mode they violated in and their
    post-transition monitor state — the flight recorder's per-window
    diagnostic feed.  Capture is a pure read of existing arrays: results
    are bit-identical with it on or off.
    """

    def __init__(
        self,
        engine: FleetEngine,
        load=None,
        *,
        tail: str = "surrogate",
        server_range: tuple[int, int] | None = None,
        state: FleetState | None = None,
        chunk_size: int | None = None,
        scenario: ScenarioSpec | None = _UNSET,
    ):
        cfg = engine.config
        lo, hi = server_range if server_range is not None else (0, cfg.n_servers)
        if not 0 <= lo < hi <= cfg.n_servers:
            raise ValueError(
                f"server_range {(lo, hi)} outside fleet [0, {cfg.n_servers})"
            )
        if tail not in ("surrogate", "exact"):
            raise ValueError("tail must be 'surrogate' or 'exact'")
        self.engine = engine
        self.tail = tail
        self._load_fn = (
            resolve_load_curve(load)[1] if load is not None else None
        )
        if state is None:
            state = FleetState.fresh(lo, hi, cfg.n_windows, cfg.window_minutes)
        elif (state.lo, state.hi) != (lo, hi):
            raise ValueError(
                f"state covers servers {(state.lo, state.hi)}, "
                f"stepper covers {(lo, hi)}"
            )
        elif state.n_windows != cfg.n_windows:
            raise ValueError(
                f"state has {state.n_windows} windows, config {cfg.n_windows}"
            )
        self.state = state
        # ``stretch-repro --profile`` / REPRO_OBS_PROFILE: per-phase
        # self-time of the window step (loads, gather, tails, monitor,
        # aggregate) — how the 10k->100k throughput falloff was localized.
        self._profiler = active_profiler()
        self._policy = make_policy(cfg.policy)
        self._ctx = PolicyContext(
            n_servers=cfg.n_servers,
            n_windows=cfg.n_windows,
            overprovision=cfg.overprovision,
            balance_jitter=cfg.balance_jitter,
            seed=cfg.seed,
        )
        if engine.corunner_table is not None:
            self._placement = make_placement(
                cfg.placement, cfg.placement_epoch
            )
            self._pctx = PlacementContext(
                n_servers=cfg.n_servers,
                n_windows=cfg.n_windows,
                seed=cfg.seed,
                mix=np.asarray(cfg.mix_fractions),
                table=engine.corunner_table,
                # Relative (cluster_load=1.0) balancing weights: a pure
                # function of (seed, window), so symbiosis matching resumes
                # bit-identically without knowing the live fed loads.
                relative_loads=lambda w: self._policy.server_loads(
                    1.0, w, self._ctx
                ),
            )
        else:
            self._placement = None
            self._pctx = None
        #: Last window's per-profile server counts for this slice
        #: (profile name -> servers), empty for homogeneous fleets.
        self.last_placement: dict[str, int] = {}
        # (assignment identity, pre-scaled slice) — recomputed only when
        # the placement policy hands out a new epoch's assignment, so the
        # steady-state window does no per-window slicing/scaling.
        self._pidx4: tuple | None = None
        # Adversarial scenario: compiled once against the full fleet.  A
        # null scenario never builds a sampler, so its step() path is the
        # unperturbed engine's, bit for bit (test-gated).
        if scenario is _UNSET:
            scenario = engine.scenario
        if scenario is not None and not isinstance(scenario, ScenarioSpec):
            raise TypeError(
                f"scenario must be a ScenarioSpec or None, got {scenario!r}"
            )
        self.scenario = scenario
        if scenario is not None and not scenario.is_null:
            self._sampler = ScenarioSampler(
                scenario, n_servers=cfg.n_servers, seed=cfg.seed
            )
            tail_factors = self._sampler.tail_factors()
            self._scenario_tail = (
                None if tail_factors is None else tail_factors[lo:hi]
            )
        else:
            self._sampler = None
            self._scenario_tail = None
        # Window-record scenario sections, memoized per activation
        # signature: the sampler's vectors and this stepper's slice are
        # both fixed for the day, so the summary's array passes (mean,
        # affected count) run once per signature, not once per window.
        self._scenario_summaries: dict[tuple[str, ...], dict] = {}
        qos = engine.ls_profile.qos
        self._target_ms = qos.target_ms
        self._engage_ms = qos.target_ms * cfg.monitor.engage_fraction
        self._heap_pin: tuple | None = None
        #: Top-K violating servers to expose per window (0 disables).
        self.capture_violators = 0
        #: Last window's captured violators (see :meth:`step`).
        self.last_violators: list[dict] = []
        n = hi - lo
        if tail == "surrogate":
            self._surrogate = engine.ensure_surrogate()
            self._chunk = min(_resolve_chunk_size(chunk_size), n)
            self._sims = None
            # Surrogate grid rows for every (profile, mode) perf factor
            # the fleet can visit — the chunk loop gathers these instead
            # of re-searching the grid per server per window.  Also fails
            # fast here if the surrogate misses any fitted factor.
            table = engine.corunner_table
            self._srows = self._surrogate._row_indices(
                table.perf_rows.ravel() if table is not None
                else engine._perf_rows
            )
        else:
            # One DES per server: python-loop bound, chunking buys nothing.
            self._surrogate = None
            self._srows = None
            self._chunk = n
            self._sims = [
                ServiceSimulator(
                    qos,
                    n_workers=cfg.n_workers,
                    seed=derive_seed(cfg.seed, "server", k) & 0x7FFFFF,
                )
                for k in range(lo, hi)
            ]
            horizon = max(20000, cfg.requests_per_window)
            self._peaks = [
                sim.peak_load(n_requests=horizon) for sim in self._sims
            ]

    # -- progress --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state.done

    @property
    def remaining(self) -> int:
        return self.state.n_windows - self.state.window

    @property
    def timeline(self) -> FleetTimeline:
        return self.state.timeline

    # -- tail evaluation -------------------------------------------------

    def _window_noise(self, window: int) -> np.ndarray | None:
        """Per-(server, window) surrogate uniforms for this fleet slice.

        Drawn for the *whole* fleet and sliced, so shard boundaries never
        change the streams (same discipline as the balancing policies).
        """
        if self._surrogate is None:
            return None
        rng = np.random.default_rng(
            derive_seed(self.engine.config.seed, "fleet-noise", window)
        )
        return rng.random(self.engine.config.n_servers)[
            self.state.lo:self.state.hi
        ]

    def _tails(
        self, window, loads, perf, u, offset: int, rows=None
    ) -> np.ndarray:
        if self._surrogate is not None:
            return self._surrogate.sample(loads, perf, u, rows=rows)
        cfg = self.engine.config
        qos = self.engine.ls_profile.qos
        tails = np.empty(len(loads))
        for i in range(len(loads)):
            sim = self._sims[offset + i]
            stats = sim.run(
                self._peaks[offset + i] * loads[i],
                perf[i],
                cfg.requests_per_window,
                seed_offset=window + 1,
            )
            tails[i] = stats.percentile(qos.percentile)
        return tails

    # -- advancement -----------------------------------------------------

    def step(self, cluster_load: float | None = None) -> dict:
        """Advance one monitoring window; returns the window's aggregates.

        ``cluster_load`` overrides the configured load curve for this
        window (the live-feed path); with ``None`` the curve supplies it.
        The returned record is the streaming-observability payload:
        window index, hour, ingested load and the fleet aggregates.
        """
        state = self.state
        if state.done:
            raise RuntimeError(
                f"fleet day is complete ({state.n_windows} windows)"
            )
        engine = self.engine
        cfg = engine.config
        # Phase timers accumulate in locals and flush once per window so
        # the hot chunk loop costs two perf_counter calls per phase when
        # profiling is on and a single predictable branch when it is off.
        prof = self._profiler
        tick = time.perf_counter if prof is not None else None
        if tick is not None:
            t0 = tick()
        k = state.window
        hour = k * cfg.window_minutes / 60.0
        if cluster_load is None:
            if self._load_fn is None:
                raise ValueError(
                    "stepper has no load curve; pass cluster_load explicitly"
                )
            cluster_load = self._load_fn(hour)
        # The legacy loop indexes jitter with int(hour * 60 / wm); keep
        # the float-faithful expression so both paths pick identical
        # per-window streams even when the division does not round-trip.
        window_index = int(hour * 60.0 / cfg.window_minutes)
        loads = self._policy.server_loads(
            float(cluster_load), window_index, self._ctx
        )[state.lo:state.hi]
        # Scenario load perturbations multiply the raw balanced loads
        # (full-fleet vectors, sliced) before the legacy clip, so the
        # clipped range the tail evaluators were calibrated for holds.
        scenario_lf = None
        if self._sampler is not None:
            full_lf = self._sampler.load_factors(k, hour)
            if full_lf is not None:
                scenario_lf = full_lf[state.lo:state.hi]
                loads = loads * scenario_lf
        loads = np.maximum(np.clip(loads, 0.0, 1.2), 0.02)
        u = self._window_noise(k)
        if self._placement is not None:
            # Full-fleet assignment, sliced — shard-count invariant by the
            # same discipline as the balancing policies.  Pre-scaled by the
            # table width so the chunk loop's combined index is one add and
            # each lookup a single flat 1-D gather; cached per epoch (the
            # policy returns one array per epoch) so steady-state windows
            # allocate nothing here.
            table = self.engine.corunner_table
            assign = self._placement.assign(window_index, self._pctx)
            if self._pidx4 is None or self._pidx4[0] is not assign:
                sliced = assign[state.lo:state.hi]
                counts = np.bincount(sliced, minlength=table.n_profiles)
                self._pidx4 = (
                    assign,
                    sliced * table.perf_rows.shape[1],
                    {
                        name: int(counts[i])
                        for i, name in enumerate(table.profiles)
                    },
                )
            pidx4 = self._pidx4[1]
            perf_flat = table.perf_rows.ravel()
            batch_flat = table.batch_rows.ravel()
        else:
            pidx4 = None
        if tick is not None:
            t_loads = tick() - t0
            t_gather = t_tails = t_monitor = t_agg = 0.0

        out = state.timeline
        out.hours[k] = hour
        n = state.n_servers
        mode_counts = np.zeros(3, dtype=np.int64)
        violations = throttled = 0
        tail_ms_sum = batch_uipc_sum = 0.0
        top_k = int(self.capture_violators)
        captured: list[np.ndarray] = []
        for s0 in range(0, n, self._chunk):
            if tick is not None:
                t0 = tick()
            s1 = min(s0 + self._chunk, n)
            mode = state.mode[s0:s1]
            throttle = state.throttle[s0:s1]
            throttled_now = throttle > 0
            rows = np.where(throttled_now, _THROTTLED_ROW, mode)
            if pidx4 is None:
                perf = engine._perf_rows[rows]
                srows = None if self._srows is None else self._srows[rows]
                batch_chunk_sum = float(engine._batch_rows[rows].sum())
            else:
                # The heterogeneous gather: profile row + mode column as
                # one flat index into the raveled table.
                flat = pidx4[s0:s1] + rows
                perf = perf_flat[flat]
                srows = None if self._srows is None else self._srows[flat]
                batch_chunk_sum = float(batch_flat[flat].sum())
            if tick is not None:
                t1 = tick()
                t_gather += t1 - t0
            tails = self._tails(
                k, loads[s0:s1], perf, None if u is None else u[s0:s1], s0,
                srows,
            )
            if self._scenario_tail is not None:
                # Static per-server slowdowns (stragglers, generations);
                # unaffected servers carry exactly 1.0, preserving bits.
                # _tails always returns a fresh array, so in place is safe.
                np.multiply(tails, self._scenario_tail[s0:s1], out=tails)
            if tick is not None:
                t2 = tick()
                t_tails += t2 - t1
            violated = tails > self._target_ms
            slack = tails <= self._engage_ms

            mode_counts += np.bincount(mode, minlength=3)
            violations += int(violated.sum())
            throttled += int(throttled_now.sum())
            tail_ms_sum += float(tails.sum())
            batch_uipc_sum += batch_chunk_sum
            out.server_violations[s0:s1] += violated
            out.server_bmode_windows[s0:s1] += mode == _B_MODE
            if tick is not None:
                t3 = tick()
                t_agg += t3 - t2

            monitor_transition_vec(
                mode, state.compliant[s0:s1], state.violation[s0:s1],
                throttle, violated, slack, cfg.monitor, cfg.q_mode_available,
            )
            if tick is not None:
                t_monitor += tick() - t3
            if top_k > 0:
                idx = np.flatnonzero(violated)
                if len(idx):
                    # Columns: global server, day violations (cumulative,
                    # incl. this window), mode row at violation time
                    # (0-2 per MODE_ORDER, 3 = throttled), then the
                    # post-transition monitor state.
                    captured.append(np.column_stack((
                        idx + (state.lo + s0),
                        out.server_violations[s0 + idx],
                        rows[idx],
                        mode[idx],
                        state.violation[s0:s1][idx],
                        throttle[idx],
                    )))
        # Keep the final window temporaries alive until the next step.  If
        # they all die when this frame returns, the top of the heap frees
        # entirely and glibc trims it back to the OS — re-faulting ~3 MB of
        # pages per window (measured: ~770 minor faults/window, +50% wall
        # time at 10k servers).  Holding the last chunk's arrays pins the
        # heap top so the arena is reused across windows.
        self._heap_pin = (
            loads, u, rows, perf, srows, tails, violated, slack,
            flat if pidx4 is not None else None,
        )
        if prof is not None:
            prof.add("fleet.step.loads", t_loads)
            prof.add("fleet.step.gather", t_gather)
            prof.add("fleet.step.tails", t_tails)
            prof.add("fleet.step.aggregate", t_agg)
            prof.add("fleet.step.monitor", t_monitor)
        if top_k > 0:
            self.last_violators = self._rank_violators(captured, top_k)
        out.mode_counts[k] = mode_counts
        out.violations[k] = violations
        out.throttled[k] = throttled
        out.tail_ms_sum[k] = tail_ms_sum
        out.batch_uipc_sum[k] = batch_uipc_sum
        state.window = k + 1
        record = {
            "window": k,
            "hour": hour,
            "cluster_load": float(cluster_load),
            "servers": n,
            "violations": violations,
            "throttled": throttled,
            "mode_baseline": int(mode_counts[_BASELINE]),
            "mode_b": int(mode_counts[_B_MODE]),
            "mode_q": int(mode_counts[_Q_MODE]),
            "mean_tail_ms": tail_ms_sum / n,
            "mean_batch_uipc": batch_uipc_sum / n,
        }
        if pidx4 is not None:
            self.last_placement = self._pidx4[2]
            record["placement"] = dict(self.last_placement)
        if self._sampler is not None:
            active = self._sampler.active_components(hour)
            summary = self._scenario_summaries.get(active)
            if summary is None:
                summary = self._sampler.window_summary(
                    hour, scenario_lf, self._scenario_tail
                )
                self._scenario_summaries[active] = summary
            # Fresh copies per window: records are caller-owned.
            record["scenario"] = {**summary, "active": list(active)}
        return record

    @staticmethod
    def _rank_violators(captured: list[np.ndarray], top_k: int) -> list[dict]:
        """Top-K violator rows by day violations (server index tiebreak)."""
        if not captured:
            return []
        table = np.concatenate(captured, axis=0)
        order = np.lexsort((table[:, 0], -table[:, 1]))[:top_k]
        mode_names = tuple(m.value for m in MODE_ORDER) + ("throttled",)
        return [
            {
                "server": int(row[0]),
                "day_violations": int(row[1]),
                "mode": mode_names[int(row[2])],
                "mode_after": mode_names[int(row[3])],
                "violation_streak": int(row[4]),
                "throttle_left": int(row[5]),
            }
            for row in table[order]
        ]

    def run(self, n_windows: int | None = None) -> FleetTimeline:
        """Advance ``n_windows`` (default: to end of day); return the timeline."""
        remaining = self.remaining if n_windows is None else min(
            int(n_windows), self.remaining
        )
        for _ in range(remaining):
            self.step()
        return self.state.timeline
