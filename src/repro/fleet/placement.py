"""Heterogeneous co-runner populations and pluggable placement policies.

The paper's deployment setting (§II, Fig. 14) colocates the *same*
(latency-sensitive, batch) pair on every SMT core.  The real-world
analogue is a cluster scheduler deciding **which batch job lands next to
which latency-sensitive service**; this module supplies that layer for
the vectorized fleet engine.

The key approximation that keeps the stepper pure numpy is the
**profile table** (:class:`CorunnerTable`): each batch workload in the
population is measured *once* against the LS service via
:func:`repro.api.measure`, and its per-mode LS performance factors and
batch UIPC become one row of two small ``(n_profiles, 4)`` arrays
(Baseline / B-mode / Q-mode / throttled columns, the same row layout the
homogeneous engine uses).  A placement then reduces to a vector of
profile indices, and heterogeneous stepping costs exactly one extra
gather per window — ``table[profile_idx, mode_row]`` instead of
``rows[mode_row]``.

Placement policies mirror the load-balancing discipline: every policy is
a deterministic function of ``(seed, window)`` producing the *full-fleet*
assignment vector, so a shard simulating servers ``[lo, hi)`` slices the
same vector the unsharded run would use — shard count never changes
results.  Assignments are recomputed every ``epoch_windows`` monitoring
windows (batch jobs outlive a single 10-minute window):

* ``random`` — the population mix is apportioned exactly, then shuffled
  uniformly over servers each epoch (the scheduler-agnostic baseline).
* ``symbiosis`` — SYNPA-style greedy matching: servers are ranked by the
  balancing policy's *relative* per-server load for the epoch's anchor
  window, and the friendliest co-runners (highest Baseline LS performance
  factor, i.e. least predicted LS slowdown) are matched to the most
  loaded servers.
* ``locality`` — shard-affine assignment: contiguous server blocks each
  host a single profile (Affinity-Tailor-style data locality keeps a job
  family on the same racks), static across the day.

A population of **one** profile whose measured model equals the
homogeneous ``performance`` model is bit-identical to running with the
placement layer off — the test-gated compatibility anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.colocation import ColocationPerformance
from repro.core.monitor import MODE_ORDER
from repro.util.rng import derive_seed

__all__ = [
    "PLACEMENT_NAMES",
    "CorunnerTable",
    "PlacementContext",
    "PlacementPolicy",
    "RandomPlacement",
    "SymbiosisPlacement",
    "LocalityPlacement",
    "make_placement",
    "mix_counts",
]

#: Default placement recomputation period, in monitoring windows (an hour
#: at the fleet default of 10-minute windows): batch jobs are rescheduled
#: at epoch boundaries, not every window.
DEFAULT_EPOCH_WINDOWS = 6

#: Extra table column used while the co-runner is throttled.
_THROTTLED_COL = 3


def mix_counts(n_servers: int, mix: np.ndarray) -> np.ndarray:
    """Apportion ``n_servers`` into per-profile counts proportional to ``mix``.

    Largest-remainder apportionment: exact (sums to ``n_servers``),
    deterministic, and stable under ties (earlier profiles win), so every
    shard derives the identical slot multiset.
    """
    mix = np.asarray(mix, dtype=float)
    raw = mix / mix.sum() * n_servers
    counts = np.floor(raw).astype(np.int64)
    short = n_servers - int(counts.sum())
    if short > 0:
        order = np.argsort(-(raw - counts), kind="stable")
        counts[order[:short]] += 1
    return counts


@dataclass(frozen=True)
class CorunnerTable:
    """Per-profile UIPC/pressure table of a co-runner population.

    Row ``p`` summarizes batch profile ``profiles[p]``: ``perf_rows[p]``
    holds the LS performance factor per mode column (Baseline, B-mode,
    Q-mode, throttled — identical layout and clamps as the homogeneous
    engine's ``_perf_rows``) and ``batch_rows[p]`` the batch UIPC per
    column (0.0 while throttled).
    """

    profiles: tuple[str, ...]
    perf_rows: np.ndarray  # (P, 4)
    batch_rows: np.ndarray  # (P, 4)

    @classmethod
    def from_performances(
        cls, performances: Sequence[ColocationPerformance]
    ) -> "CorunnerTable":
        if not performances:
            raise ValueError("co-runner table needs at least one profile")
        ls_names = {p.ls_workload for p in performances}
        if len(ls_names) != 1:
            raise ValueError(
                f"co-runner models disagree on the LS workload: {sorted(ls_names)}"
            )
        perf = np.array([
            [max(p.ls_perf_factor(m), 0.05) for m in MODE_ORDER] + [1.0]
            for p in performances
        ])
        batch = np.array([
            [p.per_mode[m].batch_uipc for m in MODE_ORDER] + [0.0]
            for p in performances
        ])
        return cls(
            profiles=tuple(p.batch_workload for p in performances),
            perf_rows=perf,
            batch_rows=batch,
        )

    @property
    def n_profiles(self) -> int:
        return len(self.profiles)

    @property
    def perf_factors(self) -> tuple[float, ...]:
        """Every distinct LS performance factor a surrogate must cover."""
        return tuple(sorted({float(v) for v in self.perf_rows.ravel()}))

    def friendliness(self) -> np.ndarray:
        """Baseline LS performance factor per profile (higher = friendlier).

        The symbiosis policy's matching key: a co-runner with a high
        Baseline factor inflicts the least predicted LS slowdown.
        """
        return self.perf_rows[:, 0].copy()


@dataclass
class PlacementContext:
    """Everything a placement policy may draw on, plus a per-run cache.

    ``relative_loads`` (when provided by the stepper) maps a window index
    to the balancing policy's full-fleet *relative* load vector — the
    per-server weights at ``cluster_load=1.0``, a deterministic function
    of ``(seed, window)`` — so symbiosis matching never depends on the
    live fed load and resumes bit-identically mid-epoch.
    """

    n_servers: int
    n_windows: int
    seed: int
    mix: np.ndarray  # (P,) fractions, > 0
    table: CorunnerTable
    relative_loads: Callable[[int], np.ndarray] | None = None
    cache: dict = field(default_factory=dict)

    def counts(self) -> np.ndarray:
        counts = self.cache.get("placement_counts")
        if counts is None:
            counts = mix_counts(self.n_servers, self.mix)
            self.cache["placement_counts"] = counts
        return counts


class PlacementPolicy:
    """Base class: map one window to a full-fleet profile assignment."""

    name = "abstract"

    def __init__(self, epoch_windows: int = DEFAULT_EPOCH_WINDOWS):
        if epoch_windows < 1:
            raise ValueError("epoch_windows must be >= 1")
        self.epoch_windows = int(epoch_windows)

    def assign(self, window: int, ctx: PlacementContext) -> np.ndarray:
        """Full-fleet profile indices (int64) for ``window``.

        Assignments change only at epoch boundaries; the per-epoch result
        is cached (latest epoch only, so memory stays one vector).
        """
        epoch = int(window) // self.epoch_windows
        cached = ctx.cache.get("placement_assign")
        if cached is not None and cached[0] == (self.name, epoch):
            return cached[1]
        assign = self._assign_epoch(epoch, ctx)
        assign.setflags(write=False)
        ctx.cache["placement_assign"] = ((self.name, epoch), assign)
        return assign

    def _assign_epoch(self, epoch: int, ctx: PlacementContext) -> np.ndarray:
        raise NotImplementedError


class RandomPlacement(PlacementPolicy):
    """Scheduler-agnostic baseline: the exact mix, shuffled per epoch."""

    name = "random"

    def _assign_epoch(self, epoch, ctx):
        counts = ctx.counts()
        slots = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        rng = np.random.default_rng(
            derive_seed(ctx.seed, "placement-random", epoch)
        )
        return rng.permutation(slots)


class SymbiosisPlacement(PlacementPolicy):
    """SYNPA-style greedy matching of co-runners to servers.

    Servers are ranked by the balancing policy's relative load at the
    epoch's anchor window (its first window); profile slots are ranked by
    predicted LS slowdown (Baseline performance factor, descending), and
    the two rankings are zipped — the most loaded servers receive the
    co-runners that hurt the LS service least.
    """

    name = "symbiosis"

    def _assign_epoch(self, epoch, ctx):
        counts = ctx.counts()
        anchor = epoch * self.epoch_windows
        if ctx.relative_loads is not None:
            rel = np.asarray(ctx.relative_loads(anchor), dtype=float)
        else:
            rel = np.ones(ctx.n_servers)
        # Friendliest profile first; ties broken by profile order.
        porder = np.argsort(-ctx.table.friendliness(), kind="stable")
        slots = np.repeat(porder.astype(np.int64), counts[porder])
        sorder = np.argsort(-rel, kind="stable")
        assign = np.empty(ctx.n_servers, dtype=np.int64)
        assign[sorder] = slots
        return assign


class LocalityPlacement(PlacementPolicy):
    """Shard-affine placement: contiguous server blocks per profile.

    Affinity-Tailor-style data locality — a batch job family stays on the
    same contiguous racks all day.  The block order is a seeded static
    permutation of the profiles; assignments never change across epochs.
    """

    name = "locality"

    def _assign_epoch(self, epoch, ctx):
        counts = ctx.counts()
        rng = np.random.default_rng(derive_seed(ctx.seed, "placement-locality"))
        porder = rng.permutation(len(counts)).astype(np.int64)
        return np.repeat(porder, counts[porder])


PLACEMENT_NAMES = ("random", "symbiosis", "locality")


def make_placement(spec, epoch_windows: int = DEFAULT_EPOCH_WINDOWS) -> PlacementPolicy:
    """Build a placement policy from a name (or pass an instance through)."""
    if isinstance(spec, PlacementPolicy):
        return spec
    name = str(spec)
    if name == "random":
        return RandomPlacement(epoch_windows)
    if name == "symbiosis":
        return SymbiosisPlacement(epoch_windows)
    if name == "locality":
        return LocalityPlacement(epoch_windows)
    raise KeyError(
        f"unknown placement policy {name!r}; known: {', '.join(PLACEMENT_NAMES)}"
    )
