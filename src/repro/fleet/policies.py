"""Pluggable cluster load-balancing policies and named load curves.

A policy answers one question per monitoring window: given the cluster-wide
load fraction, how much load does each server of the fleet see?  All
policies are deterministic functions of the fleet seed and produce the
full-fleet load vector, so a shard simulating servers ``[lo, hi)`` of a
larger fleet slices the same vector the unsharded run would use — sharding
never changes results.

Provided policies (the paper's §II deployment setting, plus the imbalance
regimes fleet-scale schedulers care about):

* ``uniform`` — perfect balancing: every server sees the cluster share.
* ``jittered`` — bounded deterministic per-window imbalance, bit-compatible
  with the legacy :class:`~repro.core.cluster.ClusterSimulator` jitter
  streams for fleets up to :data:`EXACT_JITTER_MAX` servers (above that, a
  statistically equivalent per-window stream is used so the jitter matrix
  never materializes at 100k × windows scale).
* ``power-of-two-choices`` — request chunks are assigned to the less
  loaded of two random servers (the classic balanced-allocations scheme),
  approximated in fixed vectorized batches.
* ``locality-sharded`` — servers are grouped into locality shards with
  static lognormal hot-spot weights (cache/data locality keeps some shards
  persistently hotter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.qos.diurnal import web_search_cluster_load, youtube_cluster_load
from repro.util.rng import derive_seed

__all__ = [
    "EXACT_JITTER_MAX",
    "POLICY_NAMES",
    "LoadBalancingPolicy",
    "PolicyContext",
    "UniformPolicy",
    "JitteredPolicy",
    "PowerOfTwoPolicy",
    "LocalityShardedPolicy",
    "make_policy",
    "register_load_curve",
    "resolve_load_curve",
]

#: Largest fleet for which ``jittered`` reproduces the legacy per-server
#: jitter streams bit-for-bit (one cached row per server).  Beyond this the
#: policy switches to per-window streams of identical distribution.
EXACT_JITTER_MAX = 4096


# ----------------------------------------------------------------------
# Named load curves (content-addressable, picklable across shard workers)
# ----------------------------------------------------------------------

_LOAD_CURVES: dict[str, Callable[[float], float]] = {
    "web_search": web_search_cluster_load,
    "youtube": youtube_cluster_load,
}

#: Curve names resolvable in any fresh process without registration.
#: Anything else registered via :func:`register_load_curve` lives only in
#: the registering process — sharded runs must ship it in the job payload
#: (see :class:`repro.fleet.shard.FleetShardJob.curve_samples`).
_BUILTIN_CURVES = frozenset(_LOAD_CURVES)


def register_load_curve(name: str, fn: Callable[[float], float]) -> None:
    """Register a named diurnal load curve for sharded fleet runs."""
    _LOAD_CURVES[str(name)] = fn


def resolve_load_curve(load) -> tuple[str | None, Callable[[float], float]]:
    """Resolve a load spec into ``(name, fn)``.

    Accepts a registered curve name, ``"flat:<fraction>"`` for a constant
    load, ``"replay:<path>"`` to replay a recorded JSONL window stream
    (see :func:`repro.service.feeds.replay_curve`), or a bare callable
    (name ``None`` — usable everywhere except sharded runs, which need a
    content-addressable name).
    """
    if callable(load):
        return None, load
    name = str(load)
    if name.startswith("flat:"):
        level = float(name.split(":", 1)[1])
        return name, lambda hour: level
    if name.startswith("replay:"):
        # Lazy import: repro.service.feeds imports this module at load.
        from repro.service.feeds import replay_curve

        return name, replay_curve(name.split(":", 1)[1])
    try:
        return name, _LOAD_CURVES[name]
    except KeyError:
        known = ", ".join(sorted(_LOAD_CURVES))
        raise KeyError(
            f"unknown load curve {name!r}; known: {known}, "
            "or 'flat:<x>' / 'replay:<path>'"
        ) from None


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------


@dataclass
class PolicyContext:
    """Everything a policy may draw on, plus a per-run cache."""

    n_servers: int
    n_windows: int
    overprovision: float
    balance_jitter: float
    seed: int
    cache: dict = field(default_factory=dict)


class LoadBalancingPolicy:
    """Base class: map one window's cluster load to per-server loads."""

    name = "abstract"

    def server_loads(
        self, cluster_load: float, window: int, ctx: PolicyContext
    ) -> np.ndarray:
        """Full-fleet per-server load fractions for one window (unclamped)."""
        raise NotImplementedError


class UniformPolicy(LoadBalancingPolicy):
    """Perfect balancing: every server sees the over-provisioned share."""

    name = "uniform"

    def server_loads(self, cluster_load, window, ctx):
        share = cluster_load / ctx.overprovision
        return np.full(ctx.n_servers, share)


class JitteredPolicy(LoadBalancingPolicy):
    """Bounded deterministic per-(server, window) imbalance.

    For fleets up to :data:`EXACT_JITTER_MAX` servers this reproduces the
    legacy ``ClusterSimulator`` jitter streams exactly (one RNG per server,
    label path ``(seed, "jitter", k)``); larger fleets draw one uniform
    vector per window (label path ``(seed, "fleet-jitter", window)``)
    with the same distribution.
    """

    name = "jittered"

    def _jitter_matrix(self, ctx: PolicyContext, min_rows: int) -> np.ndarray:
        """Cached per-server jitter draws, grown on demand past the day.

        A run that outlives the configured day (a long ``serve`` loop)
        must keep drawing *fresh* jitter, not replay window 0 with period
        ``n_windows + 1`` — so when ``min_rows`` exceeds the cached
        horizon the matrix is regenerated with more draws from the same
        per-server streams (uniform draws consume the bit stream
        sequentially, so the regenerated prefix is bit-identical to the
        cached rows and to the legacy ``ClusterSimulator`` streams).
        """
        matrix = ctx.cache.get("jitter_matrix")
        if matrix is None or matrix.shape[1] < min_rows:
            rows = max(min_rows, ctx.n_windows + 1)
            if matrix is not None:
                rows = max(rows, 2 * matrix.shape[1])  # amortize regrowth
            matrix = np.empty((ctx.n_servers, rows))
            for k in range(ctx.n_servers):
                rng = np.random.default_rng(derive_seed(ctx.seed, "jitter", k))
                matrix[k] = 1.0 + rng.uniform(
                    -ctx.balance_jitter, ctx.balance_jitter, size=rows
                )
            ctx.cache["jitter_matrix"] = matrix
        return matrix

    def server_loads(self, cluster_load, window, ctx):
        share = cluster_load / ctx.overprovision
        if ctx.n_servers <= EXACT_JITTER_MAX:
            jitter = self._jitter_matrix(ctx, window + 1)[:, window]
        else:
            rng = np.random.default_rng(
                derive_seed(ctx.seed, "fleet-jitter", window)
            )
            jitter = 1.0 + rng.uniform(
                -ctx.balance_jitter, ctx.balance_jitter, size=ctx.n_servers
            )
        return share * jitter


class PowerOfTwoPolicy(LoadBalancingPolicy):
    """Balanced allocations: each request chunk picks the less loaded of
    two random servers.

    The chunk stream is processed in a fixed number of vectorized batches;
    within a batch, load counts are read once (stale reads approximate the
    sequential scheme but keep the per-window cost at a few array
    operations even for 100k servers).  Lower imbalance than ``jittered``,
    with the characteristic max-load ~ log log n behavior.
    """

    name = "power-of-two-choices"

    def __init__(self, chunks_per_server: int = 8, batches: int = 8):
        if chunks_per_server < 1 or batches < 1:
            raise ValueError("chunks_per_server and batches must be >= 1")
        self.chunks_per_server = chunks_per_server
        self.batches = batches

    def server_loads(self, cluster_load, window, ctx):
        share = cluster_load / ctx.overprovision
        n = ctx.n_servers
        rng = np.random.default_rng(derive_seed(ctx.seed, "fleet-p2c", window))
        counts = np.zeros(n)
        total = n * self.chunks_per_server
        per_batch = max(total // self.batches, 1)
        assigned = 0
        while assigned < total:
            size = min(per_batch, total - assigned)
            a = rng.integers(0, n, size=size)
            b = rng.integers(0, n, size=size)
            target = np.where(counts[a] <= counts[b], a, b)
            np.add.at(counts, target, 1.0)
            assigned += size
        return share * counts / self.chunks_per_server


class LocalityShardedPolicy(LoadBalancingPolicy):
    """Locality-driven imbalance: static hot and cold server groups.

    Servers are split into ``n_shards`` contiguous locality groups whose
    relative weights are drawn once per fleet from a lognormal distribution
    (σ = ``skew``) and normalized to mean 1 — persistent hot shards, the
    regime where per-machine Stretch mode skew shows up.
    """

    name = "locality-sharded"

    def __init__(self, n_shards: int = 16, skew: float = 0.25):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.n_shards = n_shards
        self.skew = skew

    def _weights(self, ctx: PolicyContext) -> np.ndarray:
        weights = ctx.cache.get("locality_weights")
        if weights is None:
            rng = np.random.default_rng(derive_seed(ctx.seed, "fleet-locality"))
            shard_w = rng.lognormal(0.0, self.skew, size=self.n_shards)
            shard_of = (
                np.arange(ctx.n_servers, dtype=np.int64) * self.n_shards
                // max(ctx.n_servers, 1)
            )
            weights = shard_w[shard_of]
            # Normalize the *expanded* per-server vector, not the shard
            # vector: when n_servers % n_shards != 0 the shards are
            # unequal-sized and a shard-mean normalization would bias the
            # fleet's mean load away from the cluster share.
            weights /= weights.mean()
            ctx.cache["locality_weights"] = weights
        return weights

    def server_loads(self, cluster_load, window, ctx):
        share = cluster_load / ctx.overprovision
        return share * self._weights(ctx)


POLICY_NAMES = (
    "uniform",
    "jittered",
    "power-of-two-choices",
    "locality-sharded",
)


def make_policy(spec) -> LoadBalancingPolicy:
    """Build a policy from a name (or pass an instance through)."""
    if isinstance(spec, LoadBalancingPolicy):
        return spec
    name = str(spec)
    if name == "uniform":
        return UniformPolicy()
    if name == "jittered":
        return JitteredPolicy()
    if name == "power-of-two-choices":
        return PowerOfTwoPolicy()
    if name == "locality-sharded":
        return LocalityShardedPolicy()
    raise KeyError(
        f"unknown load-balancing policy {name!r}; known: {', '.join(POLICY_NAMES)}"
    )
