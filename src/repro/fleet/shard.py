"""Fleet sharding over the ``repro.engine`` process pool.

A 100k-server day splits into contiguous server ranges; each range becomes
a content-addressed :class:`FleetShardJob` scheduled on the
:class:`~repro.engine.ExecutionEngine` (cache-aware, crash-isolated, same
pool the figure experiments use).  Because every per-server random stream
in :class:`~repro.fleet.engine.FleetEngine` keys off the global server
index, stitching shard timelines back together with
:meth:`~repro.fleet.engine.FleetTimeline.merge` reproduces the unsharded
run exactly — shard count only changes wall-clock time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.colocation import ColocationPerformance
from repro.core.monitor import MODE_ORDER
from repro.fleet.engine import FleetConfig, FleetEngine, FleetTimeline
from repro.fleet.policies import (
    _BUILTIN_CURVES,
    register_load_curve,
    resolve_load_curve,
)
from repro.scenarios import ScenarioSpec

__all__ = ["FleetShardJob", "run_fleet_sharded", "shard_bounds"]

#: Bump to invalidate cached fleet shard results after engine changes.
FLEET_VERSION = 3


def _performance_payload(performance: ColocationPerformance) -> tuple:
    """Deterministic content of a performance model (dict-order-free)."""
    return (
        performance.ls_workload,
        performance.batch_workload,
        float(performance.ls_solo_uipc),
        tuple(
            (
                mode.name,
                float(performance.per_mode[mode].ls_uipc),
                float(performance.per_mode[mode].batch_uipc),
            )
            for mode in MODE_ORDER
        ),
    )


@dataclass(frozen=True)
class FleetShardJob:
    """One fleet slice ``[lo, hi)``, schedulable on the execution engine.

    ``load`` must be a *named* curve (or ``"flat:<x>"`` spec) so the job
    stays picklable and content-addressable.  Curves registered on the
    driver via :func:`repro.fleet.policies.register_load_curve` do not
    exist in pool workers, so their window-start samples ride along in
    ``curve_samples`` and the worker re-registers a step function under
    the same name — the engine only ever evaluates the curve at window
    starts, so the sampled curve is exact.  ``surrogate_values`` carries a
    pre-fitted :class:`~repro.fleet.surrogate.TailSurrogate` (flattened)
    so worker processes never re-run the DES calibration.  ``corunners``
    carries the heterogeneous co-runner population's measured models
    (ordered like ``config.population``).  ``scenario`` attaches an
    adversarial :class:`~repro.scenarios.ScenarioSpec`; it is part of the
    cache key (frozen, ``repr``-stable), which is what makes CRN-paired
    tuner evaluations content-addressable per (config, scenario) pair.
    """

    profile_name: str
    performance: ColocationPerformance
    config: FleetConfig
    load: str
    lo: int
    hi: int
    tail: str = "surrogate"
    surrogate_values: tuple[float, ...] | None = None
    corunners: tuple[ColocationPerformance, ...] | None = None
    curve_samples: tuple[float, ...] | None = None
    scenario: ScenarioSpec | None = None

    @property
    def key(self) -> str:
        from repro.engine.store import CACHE_VERSION

        payload = repr((
            CACHE_VERSION,
            FLEET_VERSION,
            "fleet-shard",
            self.profile_name,
            _performance_payload(self.performance),
            self.config,
            self.load,
            self.lo,
            self.hi,
            self.tail,
            self.surrogate_values,
            None
            if self.corunners is None
            else tuple(_performance_payload(c) for c in self.corunners),
            self.curve_samples,
            self.scenario,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()

    def run(self) -> tuple[float, ...]:
        from repro.fleet.surrogate import TailSurrogate
        from repro.workloads import get_profile

        if self.curve_samples is not None:
            samples = np.asarray(self.curve_samples, dtype=float)
            wm = self.config.window_minutes

            def sampled_curve(hour: float) -> float:
                # round(), not int(): k*wm/60 can reconstruct to k - 1e-13
                # and truncation would shift those windows by one sample.
                idx = min(round(hour * 60.0 / wm), len(samples) - 1)
                return float(samples[idx])

            register_load_curve(self.load, sampled_curve)
        surrogate = (
            TailSurrogate.from_values(self.surrogate_values)
            if self.surrogate_values is not None
            else None
        )
        engine = FleetEngine(
            get_profile(self.profile_name),
            self.performance,
            self.config,
            surrogate=surrogate,
            corunners=self.corunners,
            scenario=self.scenario,
        )
        timeline = engine.run_day(
            self.load, tail=self.tail, server_range=(self.lo, self.hi)
        )
        return timeline.to_values()


def shard_bounds(n_servers: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal server ranges covering ``[0, n_servers)``."""
    if n_servers <= 0:
        raise ValueError("n_servers must be positive")
    n_shards = max(min(int(n_shards), n_servers), 1)
    edges = np.linspace(0, n_servers, n_shards + 1).astype(int)
    return [
        (int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo
    ]


def run_fleet_sharded(
    ls_profile,
    performance: ColocationPerformance,
    config: FleetConfig,
    load,
    *,
    tail: str = "surrogate",
    engine=None,
    store=None,
    n_shards: int | None = None,
    surrogate=None,
    corunners: tuple[ColocationPerformance, ...] | None = None,
    scenario: ScenarioSpec | None = None,
) -> FleetTimeline:
    """Run a fleet day as shard jobs on the execution engine; merge results.

    The tail surrogate is fitted (or fetched) once in the parent and
    shipped to every shard, so the DES calibration never repeats across
    worker processes.  Driver-registered custom curves are sampled at
    window starts and shipped in the job payload (workers don't share the
    driver's curve registry); heterogeneous populations ship their
    ``corunners`` models the same way.
    """
    if not isinstance(load, str):
        raise TypeError(
            "sharded fleet runs need a named load curve (str); register "
            "custom curves with repro.fleet.register_load_curve"
        )
    _, load_fn = resolve_load_curve(load)  # fail fast on unknown names
    curve_samples = None
    if load not in _BUILTIN_CURVES and not load.startswith(("flat:", "replay:")):
        # Driver-local registration: ship exact window-start samples.
        curve_samples = tuple(
            float(load_fn(k * config.window_minutes / 60.0))
            for k in range(config.n_windows)
        )

    if store is None:
        from repro.engine.store import default_store

        store = default_store()
    if engine is None:
        from repro.engine.executor import ExecutionEngine

        engine = ExecutionEngine()

    surrogate_values = None
    if tail == "surrogate":
        if surrogate is None:
            fleet = FleetEngine(
                ls_profile, performance, config, store=store, corunners=corunners
            )
            surrogate = fleet.ensure_surrogate()
        surrogate_values = surrogate.to_values()

    if n_shards is None:
        n_shards = getattr(engine.config, "workers", 1) or 1
    jobs = [
        FleetShardJob(
            profile_name=ls_profile.name,
            performance=performance,
            config=config,
            load=load,
            lo=lo,
            hi=hi,
            tail=tail,
            surrogate_values=surrogate_values,
            corunners=corunners,
            curve_samples=curve_samples,
            scenario=scenario,
        )
        for lo, hi in shard_bounds(config.n_servers, n_shards)
    ]
    engine.run_jobs(jobs, store)
    parts = []
    for job in jobs:
        values = store.get(job.key)
        if values is None:
            raise RuntimeError(f"shard [{job.lo}, {job.hi}) produced no result")
        parts.append(FleetTimeline.from_values(values))
    return FleetTimeline.merge(parts)
