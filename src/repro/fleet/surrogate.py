"""Fitted tail-latency surrogate over the discrete-event queueing simulator.

The fleet engine cannot afford one :class:`~repro.qos.queueing.ServiceSimulator`
run per (server, window) — at 100k servers × 144 windows that is 14M DES
runs.  Instead it evaluates tail latency through a surrogate fitted *once*
per ``(QoS contract, perf-factor set)``:

* **Calibration** runs the DES over a ``perf × load`` grid with common
  random numbers: each calibration replicate uses one simulator seed —
  drawn like a fleet server seed — across the whole grid, so replicate
  surfaces are paired and load/perf interpolation is smooth.
* Window tails are a *mixture*: the MMPP burst pattern of a window is
  rate-independent, so a window is either calm (tail ≈ the service-time
  tail) or bursty (tail blows up with load).  A mean/variance summary
  would misrepresent that, so the surrogate keeps the **sorted replicate
  tails per grid point** (empirical order statistics) and samples windows
  by inverse-CDF over deterministic per-(server, window) uniforms —
  reproducing both the calm/bursty split and its load dependence.
* **Validation** replays *held-out* simulator seeds at off-grid (midpoint)
  loads and reports the worst absolute error of the predicted mean tail as
  :attr:`TailSurrogate.error_bound_ms` — the stated bound the fleet
  equivalence gate checks against the legacy per-object simulator.

Only the load axis interpolates (piecewise-linear).  Performance factors
are categorical: the fleet uses exactly one factor per Stretch mode plus
1.0 for throttled windows, and each gets its own fitted row.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.qos.queueing import ServiceSimulator
from repro.util.rng import derive_seed
from repro.workloads.profiles import QoSSpec

__all__ = [
    "SurrogateGrid",
    "SurrogateFitJob",
    "TailSurrogate",
    "fit_tail_surrogate",
]

#: Bump to invalidate cached surrogate fits after calibration changes.
SURROGATE_VERSION = 2

#: Default load grid; spans the fleet engine's clamp range [0.02, 1.2] so
#: prediction never extrapolates.
_DEFAULT_LOADS = (
    0.02, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2,
)


@dataclass(frozen=True)
class SurrogateGrid:
    """Calibration design for :func:`fit_tail_surrogate`.

    ``n_requests`` should equal the fleet's ``requests_per_window`` so the
    surrogate reproduces the same finite-sample tail distribution the
    per-server DES would produce; ``peak_requests`` must match the horizon
    servers use to calibrate their peak (``max(20000, requests_per_window)``
    in the legacy loop).  ``n_reps`` doubles as the quantile resolution of
    the stored window-tail distribution.
    """

    loads: tuple[float, ...] = _DEFAULT_LOADS
    n_requests: int = 2000
    peak_requests: int = 20000
    n_reps: int = 10
    n_val_reps: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.loads) < 2:
            raise ValueError("surrogate grid needs at least 2 load points")
        if list(self.loads) != sorted(set(self.loads)):
            raise ValueError("surrogate loads must be strictly increasing")
        if min(self.n_requests, self.peak_requests) < 1:
            raise ValueError("request counts must be positive")
        if self.n_reps < 2:
            raise ValueError("n_reps must be >= 2 (distribution needs replicates)")
        if self.n_val_reps < 1:
            raise ValueError("n_val_reps must be >= 1")


def _calibration_sim(
    qos: QoSSpec, grid: SurrogateGrid, label: str, rep: int, n_workers: int
) -> ServiceSimulator:
    # Replicate seeds are drawn exactly like fleet server seeds (masked
    # derive_seed), so across-replicate spread reflects across-server and
    # across-window spread in the fleet.
    seed = derive_seed(grid.seed, label, rep) & 0x7FFFFF
    return ServiceSimulator(qos, n_workers=n_workers, seed=seed)


def _measure_surface(
    qos: QoSSpec,
    perf_factors: tuple[float, ...],
    loads: tuple[float, ...],
    grid: SurrogateGrid,
    label: str,
    n_reps: int,
    n_workers: int,
) -> np.ndarray:
    """DES tail surface, shape ``(n_reps, n_perf, n_loads)``."""
    surface = np.empty((n_reps, len(perf_factors), len(loads)))
    for rep in range(n_reps):
        sim = _calibration_sim(qos, grid, label, rep, n_workers)
        peak = sim.peak_load(n_requests=grid.peak_requests)
        for p, perf in enumerate(perf_factors):
            for l, load in enumerate(loads):
                stats = sim.run(
                    peak * load, perf, grid.n_requests, seed_offset=l + 1
                )
                surface[rep, p, l] = stats.percentile(qos.percentile)
    return surface


@dataclass(frozen=True)
class TailSurrogate:
    """Fitted window-tail model: categorical in perf, linear in load.

    ``quantiles_ms`` has shape ``(n_perf, n_reps, n_loads)`` and is sorted
    along the replicate axis — the empirical window-tail distribution at
    each grid point.
    """

    qos: QoSSpec
    perf_factors: tuple[float, ...]
    loads: tuple[float, ...]
    quantiles_ms: np.ndarray  # (n_perf, n_reps, n_loads), sorted on axis 1
    error_bound_ms: float

    @property
    def n_reps(self) -> int:
        return self.quantiles_ms.shape[1]

    @property
    def mean_ms(self) -> np.ndarray:
        """Mean window tail per grid point — shape (n_perf, n_loads)."""
        return self.quantiles_ms.mean(axis=1)

    @property
    def std_ms(self) -> np.ndarray:
        """Across-replicate std per grid point — shape (n_perf, n_loads)."""
        return self.quantiles_ms.std(axis=1, ddof=1)

    def _row_indices(self, perf: np.ndarray) -> np.ndarray:
        perfs = np.asarray(self.perf_factors)
        idx = np.clip(np.searchsorted(perfs, perf), 0, len(perfs) - 1)
        below = np.maximum(idx - 1, 0)
        use_below = np.abs(perfs[below] - perf) < np.abs(perfs[idx] - perf)
        idx = np.where(use_below, below, idx)
        if not np.allclose(perfs[idx], perf, rtol=0.0, atol=1e-9):
            missing = sorted(
                set(np.round(np.unique(perf), 6)) - set(np.round(perfs, 6))
            )
            raise KeyError(
                f"perf factors {missing} not in fitted rows {tuple(perfs)}; "
                "refit the surrogate with the fleet's perf-factor set"
            )
        return idx

    def _load_weights(
        self, load: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        loads = np.asarray(self.loads)
        li = np.clip(
            np.searchsorted(loads, load, side="right") - 1, 0, len(loads) - 2
        )
        span = loads[li + 1] - loads[li]
        weight = np.clip((load - loads[li]) / span, 0.0, 1.0)
        return li, weight

    def _interpolate(self, table: np.ndarray, load, perf) -> np.ndarray:
        load = np.asarray(load, dtype=float)
        perf = np.broadcast_to(np.asarray(perf, dtype=float), load.shape)
        rows = self._row_indices(perf)
        out = np.empty(load.shape)
        for r in np.unique(rows):
            mask = rows == r
            out[mask] = np.interp(load[mask], self.loads, table[r])
        return out

    def predict(self, load, perf) -> np.ndarray:
        """Mean window tail latency (ms) at ``load`` fraction under ``perf``."""
        return self._interpolate(self.mean_ms, load, perf)

    def spread(self, load, perf) -> np.ndarray:
        """Across-window std of the tail percentile (ms)."""
        return self._interpolate(self.std_ms, load, perf)

    def sample(self, load, perf, u, rows=None) -> np.ndarray:
        """Draw window tails by inverse-CDF over uniforms ``u`` in [0, 1).

        The quantile stacks at the two neighboring load grid points are
        blended linearly (sortedness is preserved), then ``u`` picks an
        order statistic with midpoint plotting positions — so the sampled
        windows reproduce the calm/bursty mixture of the DES, not just its
        mean.  ``u`` carries the caller's deterministic per-(server,
        window) uniforms; a window's draw is exogenous arrival burstiness,
        so the same ``u`` applies whichever mode the server is in.

        ``rows`` optionally carries precomputed grid-row indices for
        ``perf`` (from :meth:`_row_indices` on the distinct factor set) —
        the fleet stepper's perf vectors take only a handful of distinct
        values, so gathering cached indices beats re-searching the grid
        for every server every window.
        """
        load = np.asarray(load, dtype=float)
        if rows is None:
            perf = np.broadcast_to(np.asarray(perf, dtype=float), load.shape)
            rows = self._row_indices(perf)
        li, weight = self._load_weights(load)
        lower = self.quantiles_ms[rows, :, li]  # (n, n_reps)
        upper = self.quantiles_ms[rows, :, li + 1]
        stack = lower * (1.0 - weight)[:, None] + upper * weight[:, None]

        n_reps = stack.shape[1]
        position = np.clip(
            np.asarray(u, dtype=float) * n_reps - 0.5, 0.0, n_reps - 1.0
        )
        j0 = np.floor(position).astype(np.int64)
        j1 = np.minimum(j0 + 1, n_reps - 1)
        fraction = position - j0
        v0 = np.take_along_axis(stack, j0[:, None], axis=1)[:, 0]
        v1 = np.take_along_axis(stack, j1[:, None], axis=1)[:, 0]
        tail = v0 * (1.0 - fraction) + v1 * fraction
        return np.maximum(tail, 0.5 * self.qos.base_service_ms)

    # -- content-addressed persistence ---------------------------------

    def to_values(self) -> tuple[float, ...]:
        """Flatten to a float tuple (the result-store value format)."""
        n_perf, n_reps, n_loads = self.quantiles_ms.shape
        header = [
            float(n_perf),
            float(n_reps),
            float(n_loads),
            float(self.error_bound_ms),
            float(self.qos.target_ms),
            float(self.qos.percentile),
            float(self.qos.base_service_ms),
            float(self.qos.service_cv),
        ]
        return tuple(
            header
            + list(self.perf_factors)
            + list(self.loads)
            + [float(v) for v in self.quantiles_ms.ravel()]
        )

    @classmethod
    def from_values(cls, values) -> "TailSurrogate":
        values = tuple(values)
        n_perf, n_reps, n_loads = (int(v) for v in values[:3])
        error_bound = float(values[3])
        qos = QoSSpec(
            target_ms=values[4],
            percentile=values[5],
            base_service_ms=values[6],
            service_cv=values[7],
        )
        cursor = 8
        perfs = tuple(values[cursor:cursor + n_perf])
        cursor += n_perf
        loads = tuple(values[cursor:cursor + n_loads])
        cursor += n_loads
        size = n_perf * n_reps * n_loads
        quantiles = np.array(values[cursor:cursor + size]).reshape(
            n_perf, n_reps, n_loads
        )
        if cursor + size != len(values):
            raise ValueError("surrogate payload has trailing values")
        return cls(
            qos=qos,
            perf_factors=perfs,
            loads=loads,
            quantiles_ms=quantiles,
            error_bound_ms=error_bound,
        )


def fit_tail_surrogate(
    qos: QoSSpec,
    perf_factors,
    grid: SurrogateGrid = SurrogateGrid(),
    n_workers: int = 8,
) -> TailSurrogate:
    """Calibrate a :class:`TailSurrogate` against the DES.

    ``perf_factors`` is the exact set of performance factors the fleet will
    evaluate (one per Stretch mode, plus 1.0 for throttled windows); each
    becomes a fitted row.  The returned surrogate's
    :attr:`~TailSurrogate.error_bound_ms` is measured on held-out simulator
    seeds at midpoint loads never used in calibration.
    """
    perfs = tuple(sorted(set(float(p) for p in perf_factors)))
    if not perfs:
        raise ValueError("perf_factors must be non-empty")

    calibration = _measure_surface(
        qos, perfs, grid.loads, grid, "surrogate-cal", grid.n_reps, n_workers
    )
    quantiles = np.sort(np.transpose(calibration, (1, 0, 2)), axis=1)

    surrogate = TailSurrogate(
        qos=qos,
        perf_factors=perfs,
        loads=tuple(float(l) for l in grid.loads),
        quantiles_ms=quantiles,
        error_bound_ms=0.0,
    )

    # Held-out validation: fresh simulator seeds, off-grid midpoint loads.
    loads = np.asarray(grid.loads)
    midpoints = tuple((loads[:-1] + loads[1:]) / 2.0)
    validation = _measure_surface(
        qos, perfs, midpoints, grid, "surrogate-val", grid.n_val_reps, n_workers
    ).mean(axis=0)
    predicted = np.stack(
        [surrogate.predict(np.asarray(midpoints), p) for p in perfs]
    )
    error_bound = float(np.max(np.abs(predicted - validation)))

    return TailSurrogate(
        qos=qos,
        perf_factors=perfs,
        loads=surrogate.loads,
        quantiles_ms=quantiles,
        error_bound_ms=error_bound,
    )


@dataclass(frozen=True)
class SurrogateFitJob:
    """Content-addressed surrogate calibration (cacheable, picklable).

    Runs on the :class:`~repro.engine.ExecutionEngine` like any simulation
    job: ``key`` content-addresses the QoS contract, perf-factor set and
    calibration grid; ``run`` returns the flattened surrogate.
    """

    qos: QoSSpec
    perf_factors: tuple[float, ...]
    grid: SurrogateGrid = SurrogateGrid()
    n_workers: int = 8

    @property
    def key(self) -> str:
        from repro.engine.store import CACHE_VERSION

        payload = repr((
            CACHE_VERSION,
            SURROGATE_VERSION,
            "fleet-surrogate",
            self.qos,
            tuple(sorted(set(float(p) for p in self.perf_factors))),
            self.grid,
            self.n_workers,
        ))
        return hashlib.sha256(payload.encode()).hexdigest()

    def run(self) -> tuple[float, ...]:
        return fit_tail_surrogate(
            self.qos, self.perf_factors, self.grid, n_workers=self.n_workers
        ).to_values()
