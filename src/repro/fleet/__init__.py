"""Fleet-scale vectorized cluster simulation (``repro.fleet``).

The paper's case studies (Figs. 13–14) argue at datacenter scale; this
package advances *fleets* of colocated servers — all servers of a
monitoring window as numpy array operations:

* :mod:`repro.fleet.engine` — the vectorized Stretch monitor state machine
  (:func:`monitor_transition_vec`, one source of truth with the scalar
  monitor via :func:`repro.core.monitor.monitor_transition`) and
  :class:`FleetEngine`, with an ``exact`` per-server DES evaluator
  (bit-compatible with the legacy :class:`~repro.core.cluster.ClusterSimulator`)
  and a ``surrogate`` evaluator for 100k+ servers;
* :mod:`repro.fleet.surrogate` — the CRN-calibrated tail-latency surrogate
  with a stated, held-out-validated error bound;
* :mod:`repro.fleet.policies` — pluggable load-balancing policies
  (``uniform``, ``jittered``, ``power-of-two-choices``,
  ``locality-sharded``) and the named diurnal load-curve registry;
* :mod:`repro.fleet.placement` — heterogeneous co-runner populations:
  the per-profile UIPC/pressure table (:class:`CorunnerTable`) and the
  pluggable placement policies (``random``, ``symbiosis``, ``locality``)
  assigning batch profiles to servers, one extra gather per window;
* :mod:`repro.fleet.shard` — content-addressed shard jobs on the
  ``repro.engine`` process pool; sharding never changes results.

The stable entry point is :func:`repro.api.run_fleet`.
"""

from repro.fleet.engine import (
    DEFAULT_CHUNK_SERVERS,
    FleetConfig,
    FleetEngine,
    FleetState,
    FleetStepper,
    FleetTimeline,
    monitor_transition_vec,
)
from repro.fleet.placement import (
    PLACEMENT_NAMES,
    CorunnerTable,
    PlacementPolicy,
    make_placement,
    mix_counts,
)
from repro.fleet.policies import (
    POLICY_NAMES,
    LoadBalancingPolicy,
    make_policy,
    register_load_curve,
    resolve_load_curve,
)
from repro.fleet.shard import FleetShardJob, run_fleet_sharded, shard_bounds
from repro.fleet.surrogate import (
    SurrogateFitJob,
    SurrogateGrid,
    TailSurrogate,
    fit_tail_surrogate,
)

__all__ = [
    "CorunnerTable",
    "DEFAULT_CHUNK_SERVERS",
    "FleetConfig",
    "FleetEngine",
    "FleetShardJob",
    "FleetState",
    "FleetStepper",
    "FleetTimeline",
    "LoadBalancingPolicy",
    "PLACEMENT_NAMES",
    "POLICY_NAMES",
    "PlacementPolicy",
    "SurrogateFitJob",
    "SurrogateGrid",
    "TailSurrogate",
    "fit_tail_surrogate",
    "make_placement",
    "make_policy",
    "mix_counts",
    "monitor_transition_vec",
    "register_load_curve",
    "resolve_load_curve",
    "run_fleet_sharded",
    "shard_bounds",
]
