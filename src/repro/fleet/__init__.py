"""Fleet-scale vectorized cluster simulation (``repro.fleet``).

The paper's case studies (Figs. 13–14) argue at datacenter scale; this
package advances *fleets* of colocated servers — all servers of a
monitoring window as numpy array operations:

* :mod:`repro.fleet.engine` — the vectorized Stretch monitor state machine
  (:func:`monitor_transition_vec`, one source of truth with the scalar
  monitor via :func:`repro.core.monitor.monitor_transition`) and
  :class:`FleetEngine`, with an ``exact`` per-server DES evaluator
  (bit-compatible with the legacy :class:`~repro.core.cluster.ClusterSimulator`)
  and a ``surrogate`` evaluator for 100k+ servers;
* :mod:`repro.fleet.surrogate` — the CRN-calibrated tail-latency surrogate
  with a stated, held-out-validated error bound;
* :mod:`repro.fleet.policies` — pluggable load-balancing policies
  (``uniform``, ``jittered``, ``power-of-two-choices``,
  ``locality-sharded``) and the named diurnal load-curve registry;
* :mod:`repro.fleet.shard` — content-addressed shard jobs on the
  ``repro.engine`` process pool; sharding never changes results.

The stable entry point is :func:`repro.api.run_fleet`.
"""

from repro.fleet.engine import (
    DEFAULT_CHUNK_SERVERS,
    FleetConfig,
    FleetEngine,
    FleetState,
    FleetStepper,
    FleetTimeline,
    monitor_transition_vec,
)
from repro.fleet.policies import (
    POLICY_NAMES,
    LoadBalancingPolicy,
    make_policy,
    register_load_curve,
    resolve_load_curve,
)
from repro.fleet.shard import FleetShardJob, run_fleet_sharded, shard_bounds
from repro.fleet.surrogate import (
    SurrogateFitJob,
    SurrogateGrid,
    TailSurrogate,
    fit_tail_surrogate,
)

__all__ = [
    "DEFAULT_CHUNK_SERVERS",
    "FleetConfig",
    "FleetEngine",
    "FleetShardJob",
    "FleetState",
    "FleetStepper",
    "FleetTimeline",
    "LoadBalancingPolicy",
    "POLICY_NAMES",
    "SurrogateFitJob",
    "SurrogateGrid",
    "TailSurrogate",
    "fit_tail_surrogate",
    "make_policy",
    "monitor_transition_vec",
    "register_load_curve",
    "resolve_load_curve",
    "run_fleet_sharded",
    "shard_bounds",
]
