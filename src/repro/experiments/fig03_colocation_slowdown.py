"""Figure 3: slowdown from SMT colocation, per workload class.

Each latency-sensitive service is colocated with each of the 29 SPEC CPU2006
benchmarks on the baseline SMT core (everything shared, ROB equally
partitioned).  Slowdown is IPC degradation versus stand-alone execution on a
full core.  The paper reports latency-sensitive slowdowns of 14% on average
(28% max) and batch slowdowns of 24% on average (46% max).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    LS_WORKLOADS,
    config_all_shared,
    config_solo,
    grid_jobs,
    pair_uipc,
    solo_uipc,
)
from repro.util.stats import DistributionSummary, summarize
from repro.util.tables import format_table
from repro.util.violin import render_violin_row

__all__ = ["Fig3Result", "run", "jobs"]


@dataclass(frozen=True)
class Fig3Result:
    """Per-pair slowdowns, keyed by latency-sensitive service."""

    #: {ls: [(batch, ls_slowdown, batch_slowdown), ...]}
    pairs: dict[str, list[tuple[str, float, float]]]

    def ls_summary(self, ls: str) -> DistributionSummary:
        return summarize([s for __, s, __b in self.pairs[ls]])

    def batch_summary(self, ls: str) -> DistributionSummary:
        return summarize([b for __, __s, b in self.pairs[ls]])

    def all_ls_slowdowns(self) -> list[float]:
        return [s for rows in self.pairs.values() for __, s, __b in rows]

    def all_batch_slowdowns(self) -> list[float]:
        return [b for rows in self.pairs.values() for __, __s, b in rows]

    def format(self) -> str:
        rows = []
        for ls in self.pairs:
            l, b = self.ls_summary(ls), self.batch_summary(ls)
            rows.append([ls, l.mean, l.median, l.maximum, b.mean, b.median, b.maximum])
        ls_all = summarize(self.all_ls_slowdowns())
        bt_all = summarize(self.all_batch_slowdowns())
        rows.append(["ALL", ls_all.mean, ls_all.median, ls_all.maximum,
                     bt_all.mean, bt_all.median, bt_all.maximum])
        table = format_table(
            ["latency-sensitive", "LS mean", "LS med", "LS max",
             "batch mean", "batch med", "batch max"],
            rows, float_fmt=".1%",
            title="Figure 3: colocation slowdown vs stand-alone full core",
        )
        lo = min(min(self.all_ls_slowdowns()), min(self.all_batch_slowdowns()))
        hi = max(max(self.all_ls_slowdowns()), max(self.all_batch_slowdowns()))
        violins = []
        for ls in self.pairs:
            violins.append(render_violin_row(
                f"{ls} (LS)", [s for __, s, __b in self.pairs[ls]], lo=lo, hi=hi
            ))
            violins.append(render_violin_row(
                f"{ls} (batch)", [b for __, __s, b in self.pairs[ls]], lo=lo, hi=hi
            ))
        return (
            f"{table}\n"
            + "\n".join(violins)
            + "\npaper: LS 14% avg / 28% max; batch 24% avg / 46% max"
        )


def jobs(fidelity: Fidelity | None = None) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine)."""
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    shared, solo = config_all_shared(), config_solo()
    grid = [
        SimJob.solo(workload, solo, sampling)
        for workload in (*LS_WORKLOADS, *BATCH_WORKLOADS)
    ]
    grid += [
        SimJob.pair(ls, batch, shared, sampling)
        for ls in LS_WORKLOADS
        for batch in BATCH_WORKLOADS
    ]
    return grid_jobs(grid, fid)


def run(fidelity: Fidelity | None = None) -> Fig3Result:
    """Regenerate Figure 3 over all 4 x 29 colocations."""
    fid = fidelity or Fidelity.from_env()
    shared = config_all_shared()
    solo = config_solo()
    pairs: dict[str, list[tuple[str, float, float]]] = {}
    for ls in LS_WORKLOADS:
        ls_alone = solo_uipc(ls, solo, fid)
        rows = []
        for batch in BATCH_WORKLOADS:
            batch_alone = solo_uipc(batch, solo, fid)
            ls_colo, batch_colo = pair_uipc(ls, batch, shared, fid)
            rows.append(
                (batch, 1.0 - ls_colo / ls_alone, 1.0 - batch_colo / batch_alone)
            )
        pairs[ls] = rows
    return Fig3Result(pairs=pairs)
