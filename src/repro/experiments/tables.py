"""Tables I, II and III of the paper, regenerated from the library's state.

* Table I — slack-study workloads and their QoS targets;
* Table II — simulated processor parameters (from the default CoreConfig);
* Table III — latency-sensitive workloads used for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.config import CoreConfig
from repro.util.tables import format_table
from repro.workloads.cloudsuite import CLOUDSUITE

__all__ = ["TablesResult", "run", "table1", "table2", "table3"]


def table1() -> str:
    """Table I: workloads and QoS targets used to measure slack."""
    rows = []
    for name, profile in CLOUDSUITE.items():
        qos = profile.qos
        target = (
            f"{qos.target_ms / 1000:.0f} sec" if qos.target_ms >= 1000
            else f"{qos.target_ms:.0f} ms"
        )
        rows.append([name, profile.description, target, f"p{qos.percentile:.0f}"])
    return format_table(
        ["Name", "Description", "QoS target", "Percentile"],
        rows,
        title="Table I: workloads and their parameters used to measure slack",
    )


def table2(config: CoreConfig | None = None) -> str:
    """Table II: simulated processor parameters."""
    c = config or CoreConfig()
    rows = [
        ["Core", f"{c.width}-wide OoO, {c.uncore.frequency_ghz:.1f} GHz, dual-thread SMT"],
        ["Fetch BW", f"{c.width} instrs, up to {c.max_branches_per_fetch} branch"],
        ["L1-I", f"{c.icache.size_bytes // 1024}KB, {c.icache.line_bytes}B line, "
                 f"{c.icache.ways}-way, {c.icache.banks} banks, LRU"],
        ["BP", f"Hybrid ({c.branch.gshare_entries // 1024}K gShare & "
               f"{c.branch.bimodal_entries // 1024}K bimodal)"],
        ["BTB", f"{c.branch.btb_entries // 1024}K entries"],
        ["Pipeline flush", f"{c.pipeline_flush_cycles} cycles"],
        ["ROB", f"{c.rob_entries} entries total, {c.rob_limits[0]} per thread"],
        ["LSQ", f"{c.lsq_entries} entries total, {c.lsq_limits[0]} per thread"],
        ["L1-D", f"{c.dcache.size_bytes // 1024}KB, {c.dcache.ways}-way, "
                 f"{c.dcache.banks} banks, {c.dcache.mshrs} MSHRs "
                 f"({c.dcache.mshrs_per_thread} per thread), stride prefetcher"],
        ["FUs", f"Int ALUs: {c.int_alus} Add + {c.int_muls} Mult, "
                f"{c.fpus} FPU, {c.lsus} LSU"],
        ["LLC", f"{c.uncore.llc_size_bytes // (1024 * 1024)}MB NUCA, "
                f"{c.uncore.llc_ways}-way, avg access {c.uncore.llc_latency} cycles"],
        ["Memory", f"{c.uncore.memory_latency_ns:.0f} ns "
                   f"({c.uncore.memory_latency_cycles} cycles)"],
    ]
    return format_table(["Structure", "Parameters"], rows,
                        title="Table II: simulated processor parameters")


def table3() -> str:
    """Table III: latency-sensitive workloads used for evaluation."""
    rows = [[name, profile.description] for name, profile in CLOUDSUITE.items()]
    return format_table(["Name", "Description"], rows,
                        title="Table III: latency-sensitive workloads")


@dataclass(frozen=True)
class TablesResult:
    """All three tables, rendered."""

    tables: dict[str, str]

    def format(self) -> str:
        return "\n\n".join(self.tables.values())


def run(fidelity=None) -> TablesResult:
    """Render Tables I-III (fidelity is unused; present for API symmetry)."""
    return TablesResult(
        tables={"table1": table1(), "table2": table2(), "table3": table3()}
    )
