"""Experiment harnesses — one module per paper figure/table.

Every module exposes ``run(fidelity=...)`` returning a structured result
object with a ``format()`` method that prints the same rows/series the paper
reports.  ``repro.experiments.runner`` provides a CLI over all of them:

.. code-block:: console

   $ stretch-repro --list
   $ stretch-repro fig09 --fidelity quick

Set the environment variable ``REPRO_FIDELITY`` to any registered tier —
``quick`` (default) or ``full`` trade runtime for statistical tightness,
``surrogate`` answers partitioned-ROB sweeps from a fitted UIPC surrogate
with a reported error bound — and ``REPRO_NO_CACHE=1`` to disable the
on-disk simulation cache.  New tiers register via
:func:`~repro.experiments.common.register_fidelity`.
"""

from repro.experiments.common import (
    Fidelity,
    fidelity_from_env,
    fidelity_names,
    register_fidelity,
)

__all__ = [
    "Fidelity",
    "fidelity_from_env",
    "fidelity_names",
    "register_fidelity",
]
