"""Experiment harnesses — one module per paper figure/table.

Every module exposes ``run(fidelity=...)`` returning a structured result
object with a ``format()`` method that prints the same rows/series the paper
reports.  ``repro.experiments.runner`` provides a CLI over all of them:

.. code-block:: console

   $ stretch-repro --list
   $ stretch-repro fig09 --fidelity quick

Set the environment variable ``REPRO_FIDELITY`` to ``quick`` (default) or
``full`` to trade runtime for statistical tightness, and ``REPRO_NO_CACHE=1``
to disable the on-disk simulation cache.
"""

from repro.experiments.common import Fidelity, fidelity_from_env

__all__ = ["Fidelity", "fidelity_from_env"]
