"""Extension: microarchitectural sensitivity of the headline B-mode result.

The paper deliberately avoids prescribing exact configurations: "The exact
configurations will be microarchitecture specific" (§IV-D).  This harness
quantifies that statement for our substrate: the B-mode 56-136 batch gain
and latency-sensitive cost are re-measured while one machine parameter at a
time moves around the Table II baseline —

* per-thread MSHRs (how much MLP a window can expose),
* main-memory latency (how much each exposed miss is worth),
* total ROB size (with the B-mode skew scaled proportionally).

The robust readout is that the mechanism delivers positive batch gains at
every sweep point — Stretch is a mechanism, not a point design.  The
*magnitude* interacts non-monotonically with the parameters (e.g. a tighter
MSHR budget makes the baseline window MSHR-capped, which can either mute or
amplify what extra entries buy, depending on the workload's miss density),
which is precisely why the paper leaves configuration choices to the
microarchitects of a specific product.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cpu.config import CacheConfig, CoreConfig, UncoreConfig
from repro.experiments.common import Fidelity, pair_uipc
from repro.util.tables import format_table

__all__ = ["SensitivityResult", "run", "PAIRS"]

PAIRS = (
    ("web_search", "zeusmp"),
    ("web_search", "libquantum"),
    ("data_serving", "milc"),
    ("media_streaming", "gcc"),
)

#: (axis label, variant label, config constructor) for each sweep point.
def _axes() -> list[tuple[str, str, CoreConfig]]:
    base = CoreConfig()
    points: list[tuple[str, str, CoreConfig]] = []
    for mshrs in (3, 5, 8):
        dcache = CacheConfig(mshrs=2 * mshrs, mshrs_per_thread=mshrs)
        points.append(("mshrs/thread", str(mshrs), replace(base, dcache=dcache)))
    for latency_ns in (50.0, 75.0, 120.0):
        uncore = UncoreConfig(memory_latency_ns=latency_ns)
        points.append(("memory ns", f"{latency_ns:.0f}", replace(base, uncore=uncore)))
    for rob in (128, 192, 256):
        lsq = max(16, rob // 3)
        points.append((
            "ROB entries", str(rob),
            replace(base, rob_entries=rob, lsq_entries=lsq,
                    rob_limits=(rob // 2, rob // 2),
                    lsq_limits=(lsq // 2, lsq // 2)),
        ))
    return points


def _bmode_of(config: CoreConfig) -> CoreConfig:
    """B-mode with the paper's 56/192 : 136/192 proportions at any ROB size."""
    ls = max(8, round(config.rob_entries * 56 / 192))
    return config.with_rob_partition(ls, config.rob_entries - ls)


@dataclass(frozen=True)
class SensitivityPoint:
    axis: str
    variant: str
    batch_gain: float
    ls_cost: float


@dataclass(frozen=True)
class SensitivityResult:
    points: list[SensitivityPoint]

    def along(self, axis: str) -> list[SensitivityPoint]:
        return [p for p in self.points if p.axis == axis]

    def format(self) -> str:
        table = format_table(
            ["axis", "value", "B-mode batch gain", "LS cost"],
            [[p.axis, p.variant, p.batch_gain, p.ls_cost] for p in self.points],
            float_fmt="+.1%",
            title="Extension: B-mode 56-136 sensitivity to machine parameters",
        )
        return (
            f"{table}\n"
            "Robust finding: positive batch gains at every sweep point "
            "(Stretch is a mechanism, not a point design); magnitudes are "
            "microarchitecture-specific, as the paper anticipates (§IV-D)."
        )


def run(fidelity: Fidelity | None = None) -> SensitivityResult:
    fid = fidelity or Fidelity.from_env()
    points = []
    for axis, variant, config in _axes():
        bmode = _bmode_of(config)
        gains, costs = [], []
        for ls, batch in PAIRS:
            ls_eq, batch_eq = pair_uipc(ls, batch, config, fid)
            ls_b, batch_b = pair_uipc(ls, batch, bmode, fid)
            gains.append(batch_b / batch_eq - 1.0)
            costs.append(1.0 - ls_b / ls_eq)
        points.append(
            SensitivityPoint(
                axis=axis,
                variant=variant,
                batch_gain=sum(gains) / len(gains),
                ls_cost=sum(costs) / len(costs),
            )
        )
    return SensitivityResult(points=points)
