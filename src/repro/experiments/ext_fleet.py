"""Extension: Fig. 14's cluster case studies at fleet scale (1k-100k servers).

The paper extrapolates its diurnal case studies (§VI-D) from one server's
measured B-mode gain to a whole cluster.  This harness simulates the
cluster directly: the vectorized fleet engine (:mod:`repro.fleet`) runs
every server's monitor state machine and windowed tail latency for a full
24-hour day, at 1k, 10k and 100k servers, for both case-study clusters

* Web Search (``web_search`` diurnal curve), and
* a YouTube-style streaming cluster (``media_streaming`` service under the
  ``youtube`` curve),

each colocated with zeusmp, the paper's high-ROB-sensitivity batch
exemplar.  Tail latencies come from the CRN-calibrated queueing surrogate;
each cluster row reports the surrogate's held-out error bound alongside
QoS violation rate, B-mode residency, throttling, straggler pressure and
the daily batch throughput gain the paper's extrapolation targets.

Fleet sizes honor ``REPRO_FLEET_SIZES`` (comma/space separated) and
otherwise default to (1000,) at quick fidelity and (1000, 10000, 100000)
at full fidelity.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.api import measure, run_fleet
from repro.core.stretch import StretchMode
from repro.experiments.common import Fidelity
from repro.fleet import FleetConfig, FleetEngine
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = ["ExtFleetResult", "FleetRow", "run", "fleet_sizes", "FLEET_SIZES_ENV"]

FLEET_SIZES_ENV = "REPRO_FLEET_SIZES"

#: (cluster label, latency-sensitive profile, diurnal curve, batch co-runner)
CASES = (
    ("web_search", "web_search", "web_search", "zeusmp"),
    ("youtube", "media_streaming", "youtube", "zeusmp"),
)

BATCH = "zeusmp"
SEED = 29


def fleet_sizes(fidelity: Fidelity) -> tuple[int, ...]:
    """Fleet sizes to simulate; ``REPRO_FLEET_SIZES`` overrides."""
    spec = os.environ.get(FLEET_SIZES_ENV, "").strip()
    if spec:
        return tuple(int(token) for token in spec.replace(",", " ").split())
    if fidelity.name == "full":
        return (1_000, 10_000, 100_000)
    return (1_000,)


@dataclass(frozen=True)
class FleetRow:
    cluster: str
    n_servers: int
    violation_rate: float
    bmode_fraction: float
    throttled_fraction: float
    mean_tail_ms: float
    straggler_p99_violations: float
    daily_batch_gain: float
    wall_seconds: float


@dataclass(frozen=True)
class ExtFleetResult:
    """Fleet-scale diurnal days plus the surrogate error bounds used."""

    rows: list[FleetRow]
    error_bound_ms: dict[str, float]

    def rows_for(self, cluster: str) -> list[FleetRow]:
        return [row for row in self.rows if row.cluster == cluster]

    def format(self) -> str:
        table = format_table(
            ["cluster", "servers", "violations", "B-mode", "throttled",
             "mean p99 (ms)", "stragglers p99", "daily gain", "wall (s)"],
            [[row.cluster, row.n_servers, f"{row.violation_rate:.1%}",
              f"{row.bmode_fraction:.0%}", f"{row.throttled_fraction:.1%}",
              f"{row.mean_tail_ms:.1f}",
              f"{row.straggler_p99_violations:.0f}",
              f"{row.daily_batch_gain:+.1%}", f"{row.wall_seconds:.1f}"]
             for row in self.rows],
            title="Extension: Fig. 14 case studies simulated at fleet scale "
                  "(vectorized engine, surrogate tails)",
        )
        bounds = ", ".join(
            f"{name}: ±{bound:.0f}ms"
            for name, bound in sorted(self.error_bound_ms.items())
        )
        return f"{table}\nsurrogate held-out error bounds — {bounds}"


def run(fidelity: Fidelity | None = None) -> ExtFleetResult:
    fid = fidelity or Fidelity.from_env()
    sizes = fleet_sizes(fid)
    rows: list[FleetRow] = []
    bounds: dict[str, float] = {}
    for cluster, ls_name, load, batch_name in CASES:
        ls = get_profile(ls_name)
        performance = measure(ls, batch_name, fidelity=fid)
        baseline_uipc = performance.per_mode[StretchMode.BASELINE].batch_uipc
        # One surrogate per cluster, content-cached and shared across fleet
        # sizes (its key depends on the QoS contract and mode performance
        # factors, not the fleet size).
        surrogate = FleetEngine(
            ls, performance, FleetConfig(seed=SEED)
        ).ensure_surrogate()
        bounds[cluster] = surrogate.error_bound_ms
        for n_servers in sizes:
            start = time.time()
            day = run_fleet(
                ls, performance=performance, load=load,
                n_servers=n_servers, seed=SEED, surrogate=surrogate,
            )
            rows.append(FleetRow(
                cluster=cluster,
                n_servers=n_servers,
                violation_rate=day.violation_rate,
                bmode_fraction=day.bmode_fraction,
                throttled_fraction=day.throttled_fraction,
                mean_tail_ms=day.mean_tail_ms,
                straggler_p99_violations=day.straggler_p99_violations,
                daily_batch_gain=day.batch_throughput_gain(baseline_uipc),
                wall_seconds=time.time() - start,
            ))
    return ExtFleetResult(rows=rows, error_bound_ms=bounds)
