"""Figure 12: fetch throttling (front-end control) versus Stretch (back-end).

Fetch throttling grants the batch thread M cycles of fetch priority per
latency-sensitive cycle (1:M), indirectly limiting ROB occupancy; Stretch
partitions the ROB directly.  Paper findings (averages over colocations):

* batch speedup vs equal partitioning: -3% (1:2), ~0% (1:4), +4% (1:8),
  +6% (1:16) — versus +13% for Stretch B-mode 56-136;
* LS slowdown: 10% (1:2), 25% (1:4), 48% (1:8), 68% (1:16) — versus 7% for
  Stretch.  Fetch control cannot keep a miss-clogged thread from holding
  ROB entries, so it trades much more LS performance for much less batch
  gain.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.partitioning import DEFAULT_B_MODE
from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    LS_WORKLOADS,
    config_all_shared,
    config_dynamic_rob,
    grid_jobs,
    pair_uipc,
)
from repro.util.tables import format_table

__all__ = ["Fig12Result", "run", "jobs", "THROTTLE_RATIOS"]

THROTTLE_RATIOS = (2, 4, 8, 16)


@dataclass(frozen=True)
class Fig12Result:
    """Average LS slowdown / batch speedup per policy and service."""

    #: {policy: {ls: (ls_slowdown, batch_speedup)}}; policies are
    #: "FT 1:2" ... "FT 1:16" and "Stretch".
    by_policy: dict[str, dict[str, tuple[float, float]]]

    def avg_ls_slowdown(self, policy: str) -> float:
        values = [v[0] for v in self.by_policy[policy].values()]
        return sum(values) / len(values)

    def avg_batch_speedup(self, policy: str) -> float:
        values = [v[1] for v in self.by_policy[policy].values()]
        return sum(values) / len(values)

    def format(self) -> str:
        rows = []
        for policy, per_ls in self.by_policy.items():
            for ls, (slowdown, speedup) in per_ls.items():
                rows.append([policy, ls, slowdown, speedup])
        table = format_table(
            ["policy", "service", "LS slowdown", "batch speedup"],
            rows, float_fmt="+.1%",
            title="Figure 12: fetch throttling vs Stretch B-mode 56-136 "
                  "(vs equal partitioning)",
        )
        summary = ", ".join(
            f"{p}: LS {self.avg_ls_slowdown(p):+.0%} / batch "
            f"{self.avg_batch_speedup(p):+.0%}"
            for p in self.by_policy
        )
        return f"{table}\n{summary}"


def jobs(fidelity: Fidelity | None = None) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine)."""
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    equal = config_all_shared()
    configs = [equal, DEFAULT_B_MODE.apply(equal)]
    configs += [
        replace(config_dynamic_rob(), fetch_policy="ratio", fetch_ratio=(1, m))
        for m in THROTTLE_RATIOS
    ]
    return grid_jobs(
        (
            SimJob.pair(ls, batch, config, sampling)
            for config in configs
            for ls in LS_WORKLOADS
            for batch in BATCH_WORKLOADS
        ),
        fid,
    )


def run(fidelity: Fidelity | None = None) -> Fig12Result:
    """Regenerate Figure 12 (throttling sweep + Stretch reference)."""
    fid = fidelity or Fidelity.from_env()
    equal = config_all_shared()
    by_policy: dict[str, dict[str, tuple[float, float]]] = {}

    def measure(config) -> dict[str, tuple[float, float]]:
        out = {}
        for ls in LS_WORKLOADS:
            ls_slow, batch_speed = [], []
            for batch in BATCH_WORKLOADS:
                ls_eq, batch_eq = pair_uipc(ls, batch, equal, fid)
                ls_c, batch_c = pair_uipc(ls, batch, config, fid)
                ls_slow.append(1.0 - ls_c / ls_eq)
                batch_speed.append(batch_c / batch_eq - 1.0)
            out[ls] = (
                sum(ls_slow) / len(ls_slow),
                sum(batch_speed) / len(batch_speed),
            )
        return out

    for m in THROTTLE_RATIOS:
        # Fetch throttling operates on a dynamically shared ROB — the paper
        # notes the 1:1 ratio *is* the dynamic-sharing configuration.
        config = replace(
            config_dynamic_rob(), fetch_policy="ratio", fetch_ratio=(1, m)
        )
        by_policy[f"FT 1:{m}"] = measure(config)
    by_policy["Stretch"] = measure(DEFAULT_B_MODE.apply(equal))
    return Fig12Result(by_policy=by_policy)
