"""Workload characterization (paper §III methodology, all 33 workloads).

Not a numbered paper artifact, but the measurement surface behind §III's
analysis and this reproduction's calibration: stand-alone UIPC, cache MPKIs,
branch behavior and MLP for every service and SPEC benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Fidelity
from repro.workloads.characterize import (
    WorkloadCharacter,
    characterize_all,
    format_characterization,
)

__all__ = ["CharacterizationResult", "run"]


@dataclass(frozen=True)
class CharacterizationResult:
    characters: dict[str, WorkloadCharacter]

    def character(self, name: str) -> WorkloadCharacter:
        return self.characters[name]

    def format(self) -> str:
        services = [c for c in self.characters.values()
                    if c.kind == "latency-sensitive"]
        batch = [c for c in self.characters.values() if c.kind == "batch"]
        avg_service_mlp = sum(c.mlp_ge2 for c in services) / len(services)
        avg_batch_mlp = sum(c.mlp_ge2 for c in batch) / len(batch)
        return (
            format_characterization(self.characters)
            + f"\nMLP>=2 time: services {avg_service_mlp:.1%} avg vs batch "
            f"{avg_batch_mlp:.1%} avg — the contrast behind Stretch (§III-C)"
        )


def run(fidelity: Fidelity | None = None) -> CharacterizationResult:
    fid = fidelity or Fidelity.from_env()
    return CharacterizationResult(characters=characterize_all(fid.sampling))
