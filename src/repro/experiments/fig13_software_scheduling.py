"""Figure 13: Stretch versus (and combined with) ideal software scheduling.

Ideal software scheduling (an upper bound on SMiTe-style contention-aware
placement) is modeled as contention-free shared structures: private L1-I,
L1-D and branch predictors per thread, with the baseline equal ROB
partition.  Stretch is the practical B-mode 56-136 on a fully shared core.
The combination applies the B-mode split on the contention-free core.

Paper: ideal scheduling +8% batch speedup, Stretch +13%, combined +21% —
the techniques are additive because they target different loss sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import DEFAULT_B_MODE
from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    LS_WORKLOADS,
    config_all_private,
    config_all_shared,
    grid_jobs,
    pair_uipc,
)
from repro.util.tables import format_table

__all__ = ["Fig13Result", "run", "jobs", "POLICIES"]

POLICIES = ("Ideal Software Scheduling", "Stretch", "Stretch + Ideal Software Scheduling")


@dataclass(frozen=True)
class Fig13Result:
    """Average batch speedup per policy and service (vs shared baseline)."""

    #: {policy: {ls: avg batch speedup}}
    speedups: dict[str, dict[str, float]]

    def average(self, policy: str) -> float:
        values = list(self.speedups[policy].values())
        return sum(values) / len(values)

    def format(self) -> str:
        rows = []
        for ls in LS_WORKLOADS:
            rows.append([ls] + [self.speedups[p][ls] for p in POLICIES])
        rows.append(["Average"] + [self.average(p) for p in POLICIES])
        table = format_table(
            ["service", "ideal sched", "Stretch", "Stretch + ideal"],
            rows, float_fmt="+.1%",
            title="Figure 13: batch speedup vs baseline SMT core",
        )
        return (
            f"{table}\n"
            f"paper: ideal scheduling +8%, Stretch +13%, combined +21%"
        )


def jobs(fidelity: Fidelity | None = None) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine)."""
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    baseline = config_all_shared()
    configs = [
        baseline,
        config_all_private(),
        DEFAULT_B_MODE.apply(baseline),
        DEFAULT_B_MODE.apply(config_all_private()),
    ]
    return grid_jobs(
        (
            SimJob.pair(ls, batch, config, sampling)
            for config in configs
            for ls in LS_WORKLOADS
            for batch in BATCH_WORKLOADS
        ),
        fid,
    )


def run(fidelity: Fidelity | None = None) -> Fig13Result:
    """Regenerate Figure 13 over all colocations."""
    fid = fidelity or Fidelity.from_env()
    baseline = config_all_shared()
    configs = {
        "Ideal Software Scheduling": config_all_private(),
        "Stretch": DEFAULT_B_MODE.apply(baseline),
        "Stretch + Ideal Software Scheduling": DEFAULT_B_MODE.apply(
            config_all_private()
        ),
    }
    speedups: dict[str, dict[str, float]] = {p: {} for p in POLICIES}
    for ls in LS_WORKLOADS:
        base_batch = {
            batch: pair_uipc(ls, batch, baseline, fid)[1]
            for batch in BATCH_WORKLOADS
        }
        for policy, config in configs.items():
            gains = []
            for batch in BATCH_WORKLOADS:
                __, batch_uipc = pair_uipc(ls, batch, config, fid)
                gains.append(batch_uipc / base_batch[batch] - 1.0)
            speedups[policy][ls] = sum(gains) / len(gains)
    return Fig13Result(speedups=speedups)
