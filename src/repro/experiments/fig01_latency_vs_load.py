"""Figure 1: Web Search latency (average / 95th / 99th percentile) vs load.

The paper measures a Nutch/Lucene Web Search engine on an i7-2600K and shows
that average latency climbs slowly with load (+43% from lowest to highest
point) while 99th-percentile latency grows by over 2.5x as queueing sets in;
the 100 ms p99 QoS target is met up to the peak-load point by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Fidelity
from repro.qos.queueing import LatencyStats, ServiceSimulator
from repro.util.chart import render_chart
from repro.util.tables import format_table
from repro.workloads.cloudsuite import cloudsuite_profile

__all__ = ["Fig1Result", "run", "LOAD_POINTS"]

LOAD_POINTS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


@dataclass(frozen=True)
class Fig1Result:
    """Latency statistics per load point for Web Search."""

    qos_target_ms: float
    points: list[tuple[float, LatencyStats]]

    @property
    def average_growth(self) -> float:
        """Relative growth of mean latency, lowest to highest load."""
        return self.points[-1][1].mean / self.points[0][1].mean - 1.0

    @property
    def p99_growth(self) -> float:
        """Relative growth of p99 latency, lowest to highest load."""
        return self.points[-1][1].p99 / self.points[0][1].p99

    def format(self) -> str:
        rows = [
            [f"{load:.0%}", stats.mean, stats.p95, stats.p99,
             "yes" if stats.p99 <= self.qos_target_ms else "NO"]
            for load, stats in self.points
        ]
        table = format_table(
            ["load", "avg (ms)", "p95 (ms)", "p99 (ms)", "QoS met"],
            rows,
            float_fmt=".1f",
            title="Figure 1: Web Search latency vs load (p99 target "
                  f"{self.qos_target_ms:.0f} ms)",
        )
        chart = render_chart(
            {
                "p99": [stats.p99 for __, stats in self.points],
                "p95": [stats.p95 for __, stats in self.points],
                "avg": [stats.mean for __, stats in self.points],
            },
            x_labels=[f"{load:.0%}" for load, __ in self.points],
            y_fmt=".0f",
        )
        return (
            f"{table}\n{chart}\n"
            f"average latency growth: {self.average_growth:+.0%} "
            f"(paper: +43%); p99 growth: {self.p99_growth:.1f}x (paper: >2.5x)"
        )


def run(fidelity: Fidelity | None = None, n_requests: int = 20000) -> Fig1Result:
    """Regenerate Figure 1 from the queueing substrate."""
    __ = fidelity or Fidelity.from_env()  # fidelity reserved for API symmetry
    profile = cloudsuite_profile("web_search")
    service = ServiceSimulator(profile.qos, n_workers=8, seed=7)
    points = service.latency_vs_load(LOAD_POINTS, n_requests=n_requests)
    return Fig1Result(qos_target_ms=profile.qos.target_ms, points=points)
