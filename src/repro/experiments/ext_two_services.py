"""Extension (paper §IV-D "Colocation options"): two latency-sensitive threads.

The paper argues Stretch's insight also applies when *both* hardware threads
run latency-sensitive services: if one is at high load and the other at low
load, a skewed configuration preserves the loaded service's QoS; if both are
at low or high load, equal partitioning is the right choice.

This harness quantifies that: for pairs of services it measures both
threads' performance factors under equal partitioning and under a skew
toward thread 0 (the nominally loaded service), and reports the highest
load each configuration keeps QoS-safe for thread 0, using the slack
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import BASELINE, DEFAULT_Q_MODE, PartitionScheme
from repro.experiments.common import (
    Fidelity,
    config_all_shared,
    config_solo,
    pair_uipc,
    solo_uipc,
)
from repro.qos.queueing import ServiceSimulator
from repro.qos.slack import required_performance
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = ["TwoServicesResult", "run", "SERVICE_PAIRS"]

SERVICE_PAIRS = (
    ("web_search", "data_serving"),
    ("web_search", "media_streaming"),
    ("data_serving", "web_serving"),
)


@dataclass(frozen=True)
class PairRow:
    loaded: str
    background: str
    equal_factor_loaded: float
    skew_factor_loaded: float
    equal_factor_background: float
    skew_factor_background: float
    equal_safe_load: float
    skew_safe_load: float


@dataclass(frozen=True)
class TwoServicesResult:
    scheme: PartitionScheme
    rows: list[PairRow]

    def row(self, loaded: str, background: str) -> PairRow:
        for row in self.rows:
            if (row.loaded, row.background) == (loaded, background):
                return row
        raise KeyError((loaded, background))

    def format(self) -> str:
        table = format_table(
            ["loaded svc", "background svc", "eq factor", "skew factor",
             "eq safe load", "skew safe load"],
            [
                [r.loaded, r.background, r.equal_factor_loaded,
                 r.skew_factor_loaded, r.equal_safe_load, r.skew_safe_load]
                for r in self.rows
            ],
            float_fmt=".2f",
            title=(
                f"Extension: two latency-sensitive services, skew "
                f"{self.scheme.name} toward the loaded thread"
            ),
        )
        return (
            f"{table}\n"
            "The skewed configuration raises the loaded service's performance "
            "factor, extending the load range it can serve within QoS; the "
            "background (low-load) service absorbs the loss via its slack."
        )


def _max_safe_load(service: ServiceSimulator, factor: float) -> float:
    safe = 0.0
    for step in range(1, 21):
        load = step / 20.0
        if required_performance(service, load, n_requests=5000) <= factor:
            safe = load
        else:
            break
    return safe


def run(
    fidelity: Fidelity | None = None,
    scheme: PartitionScheme = DEFAULT_Q_MODE,
) -> TwoServicesResult:
    """Measure equal vs skewed partitioning for LS+LS colocations."""
    fid = fidelity or Fidelity.from_env()
    base = config_all_shared()
    solo = config_solo()
    rows = []
    for loaded, background in SERVICE_PAIRS:
        loaded_solo = solo_uipc(loaded, solo, fid)
        background_solo = solo_uipc(background, solo, fid)
        eq = pair_uipc(loaded, background, BASELINE.apply(base), fid)
        sk = pair_uipc(loaded, background, scheme.apply(base), fid)
        service = ServiceSimulator(get_profile(loaded).qos, n_workers=8, seed=5)
        eq_factor = min(eq[0] / loaded_solo, 1.0)
        sk_factor = min(sk[0] / loaded_solo, 1.0)
        rows.append(
            PairRow(
                loaded=loaded,
                background=background,
                equal_factor_loaded=eq_factor,
                skew_factor_loaded=sk_factor,
                equal_factor_background=min(eq[1] / background_solo, 1.0),
                skew_factor_background=min(sk[1] / background_solo, 1.0),
                equal_safe_load=_max_safe_load(service, eq_factor),
                skew_safe_load=_max_safe_load(service, sk_factor),
            )
        )
    return TwoServicesResult(scheme=scheme, rows=rows)
