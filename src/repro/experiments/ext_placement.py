"""Extension: Fig. 14 under heterogeneous co-runner placement policies.

The paper's cluster extrapolation (§VI-D, Fig. 14) assumes every SMT
core hosts the *same* (latency-sensitive, batch) pair.  Real clusters
run a mixed batch population, and a scheduler decides which batch job
lands next to which LS service — SYNPA-style symbiosis-aware matching
and Affinity-Tailor-style locality placement being the two policy
families from the literature.  This harness puts that decision into the
fleet engine: a Web Search fleet colocated with a four-profile batch
population (zeusmp, lbm, milc, namd — spanning the ROB-sensitivity
spectrum from aggressive to friendly), placed by each policy in
:data:`repro.fleet.placement.PLACEMENT_NAMES`, plus the homogeneous
all-zeusmp fleet as the paper's reference point.

Each row reports the two sides of the placement trade-off — tail-QoS
violation rate vs aggregate batch throughput (mean fleet batch UIPC) —
alongside B-mode residency and straggler pressure, at 1k servers (quick)
and 1k + 10k servers (full).  Fleet sizes honor ``REPRO_FLEET_SIZES``
like :mod:`repro.experiments.ext_fleet`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.api import measure, run_fleet
from repro.experiments.common import Fidelity
from repro.fleet import FleetConfig, FleetEngine
from repro.fleet.placement import PLACEMENT_NAMES
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = [
    "ExtPlacementResult",
    "PlacementRow",
    "run",
    "fleet_sizes",
    "POPULATION",
]

FLEET_SIZES_ENV = "REPRO_FLEET_SIZES"

LS = "web_search"
LOAD = "web_search"

#: The heterogeneous batch population: the paper's high-pressure exemplar
#: plus three SPEC co-runners across the contention spectrum.
POPULATION = ("zeusmp", "lbm", "milc", "namd")

#: Homogeneous reference co-runner (the paper's Fig. 14 setting).
REFERENCE = "zeusmp"

SEED = 31


def fleet_sizes(fidelity: Fidelity) -> tuple[int, ...]:
    """Fleet sizes to compare; ``REPRO_FLEET_SIZES`` overrides."""
    spec = os.environ.get(FLEET_SIZES_ENV, "").strip()
    if spec:
        return tuple(int(token) for token in spec.replace(",", " ").split())
    if fidelity.name == "full":
        return (1_000, 10_000)
    return (1_000,)


@dataclass(frozen=True)
class PlacementRow:
    placement: str  # policy name, or "homogeneous" for the reference
    n_servers: int
    violation_rate: float
    mean_batch_uipc: float
    bmode_fraction: float
    throttled_fraction: float
    straggler_p99_violations: float
    wall_seconds: float


@dataclass(frozen=True)
class ExtPlacementResult:
    """Placement-policy trade-off rows plus the population studied."""

    rows: list[PlacementRow]
    population: tuple[str, ...]

    def rows_for(self, placement: str) -> list[PlacementRow]:
        return [row for row in self.rows if row.placement == placement]

    def format(self) -> str:
        table = format_table(
            ["placement", "servers", "violations", "batch UIPC",
             "B-mode", "throttled", "stragglers p99", "wall (s)"],
            [[row.placement, row.n_servers, f"{row.violation_rate:.2%}",
              f"{row.mean_batch_uipc:.3f}", f"{row.bmode_fraction:.0%}",
              f"{row.throttled_fraction:.1%}",
              f"{row.straggler_p99_violations:.0f}",
              f"{row.wall_seconds:.1f}"]
             for row in self.rows],
            title="Extension: tail QoS vs batch throughput per placement "
                  "policy (heterogeneous co-runner population)",
        )
        return f"{table}\npopulation — {', '.join(self.population)}"


def run(fidelity: Fidelity | None = None) -> ExtPlacementResult:
    fid = fidelity or Fidelity.from_env()
    sizes = fleet_sizes(fid)
    ls = get_profile(LS)
    performance = measure(ls, REFERENCE, fidelity=fid)
    corunners = tuple(
        measure(ls, name, fidelity=fid) for name in POPULATION
    )
    # One surrogate fitted over the *union* of perf factors (homogeneous
    # model + every population profile), shared by all rows so placement
    # is the only variable.
    surrogate = FleetEngine(
        ls,
        performance,
        FleetConfig(seed=SEED, population=POPULATION),
        corunners=corunners,
    ).ensure_surrogate()
    rows: list[PlacementRow] = []
    for n_servers in sizes:
        for placement in ("homogeneous",) + PLACEMENT_NAMES:
            start = time.time()
            kwargs = dict(
                performance=performance, load=LOAD,
                n_servers=n_servers, seed=SEED, surrogate=surrogate,
            )
            if placement != "homogeneous":
                kwargs.update(
                    population=POPULATION,
                    placement=placement,
                    corunners=corunners,
                )
            day = run_fleet(ls, **kwargs)
            n_windows = max(day.n_windows, 1)
            rows.append(PlacementRow(
                placement=placement,
                n_servers=n_servers,
                violation_rate=day.violation_rate,
                mean_batch_uipc=float(
                    day.batch_uipc_sum.sum() / (n_servers * n_windows)
                ),
                bmode_fraction=day.bmode_fraction,
                throttled_fraction=day.throttled_fraction,
                straggler_p99_violations=day.straggler_p99_violations,
                wall_seconds=time.time() - start,
            ))
    return ExtPlacementResult(rows=rows, population=POPULATION)
