"""Figure 14 / §VI-D: diurnal impact case studies.

Two cluster case studies apply the measured B-mode 56-136 batch gain during
the hours each service's load sits below 85% of peak:

* a Web Search cluster (sub-85% for ~11 hours/day; the paper extrapolates an
  11% B-mode gain into ~5% average cluster throughput over 24 hours);
* a YouTube-style streaming cluster (sub-85% for ~17 hours/day; the paper
  reports ~11% over 24 hours).

The B-mode gains are measured by the SMT simulator for the corresponding
service (Web Search; Media Streaming as the streaming-cluster proxy),
averaged over the 29 batch co-runners.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import DEFAULT_B_MODE
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    config_all_shared,
    pair_uipc,
)
from repro.qos.diurnal import (
    DiurnalCaseStudy,
    web_search_cluster_load,
    youtube_cluster_load,
)
from repro.util.tables import format_table

__all__ = ["Fig14Result", "run"]


@dataclass(frozen=True)
class CaseStudyRow:
    name: str
    bmode_gain: float
    hours_enabled: float
    daily_gain: float


@dataclass(frozen=True)
class Fig14Result:
    """Both cluster case studies."""

    rows: list[CaseStudyRow]

    def row(self, name: str) -> CaseStudyRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def format(self) -> str:
        table = format_table(
            ["cluster", "B-mode batch gain", "hours enabled", "daily gain"],
            [[r.name, r.bmode_gain, r.hours_enabled, r.daily_gain] for r in self.rows],
            float_fmt=".3f",
            title="Figure 14 / §VI-D: diurnal case studies (B-mode 56-136, "
                  "threshold 85% of peak)",
        )
        return (
            f"{table}\n"
            f"paper: Web Search ~11 h enabled, ~5%/day; YouTube ~17 h, ~11%/day"
        )


def _measured_bmode_gain(ls: str, fid: Fidelity) -> float:
    base = config_all_shared()
    mode = DEFAULT_B_MODE.apply(base)
    gains = []
    for batch in BATCH_WORKLOADS:
        __, batch_base = pair_uipc(ls, batch, base, fid)
        __, batch_mode = pair_uipc(ls, batch, mode, fid)
        gains.append(batch_mode / batch_base - 1.0)
    return sum(gains) / len(gains)


def run(fidelity: Fidelity | None = None) -> Fig14Result:
    """Regenerate the Figure 14 case studies with measured B-mode gains."""
    fid = fidelity or Fidelity.from_env()
    rows = []
    for name, ls, load_fn in (
        ("web_search_cluster", "web_search", web_search_cluster_load),
        ("youtube_cluster", "media_streaming", youtube_cluster_load),
    ):
        gain = _measured_bmode_gain(ls, fid)
        study = DiurnalCaseStudy(name, bmode_batch_gain=gain)
        rows.append(
            CaseStudyRow(
                name=name,
                bmode_gain=gain,
                hours_enabled=study.hours_enabled(load_fn),
                daily_gain=study.daily_throughput_gain(load_fn),
            )
        )
    return Fig14Result(rows=rows)
