"""Figure 2: performance slack of latency-sensitive services vs load.

For each of the four services, the minimum fraction of full-core performance
that still meets the QoS target, across load points.  The paper reports that
at 20% load, 55-90% of single-thread performance can be sacrificed, shrinking
to 30-70% at 50% load and almost nothing near peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Fidelity, LS_WORKLOADS
from repro.qos.slack import slack_curve
from repro.util.chart import render_chart
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = ["Fig2Result", "run", "LOAD_POINTS"]

LOAD_POINTS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


@dataclass(frozen=True)
class Fig2Result:
    """Required-performance curves per service."""

    curves: dict[str, list[tuple[float, float]]]

    def required_at(self, workload: str, load: float) -> float:
        for point, value in self.curves[workload]:
            if abs(point - load) < 1e-9:
                return value
        raise KeyError(f"load {load} not measured for {workload}")

    def slack_at(self, workload: str, load: float) -> float:
        return 1.0 - self.required_at(workload, load)

    def format(self) -> str:
        header = ["load"] + list(self.curves)
        rows = []
        for i, load in enumerate(LOAD_POINTS):
            rows.append(
                [f"{load:.0%}"] + [self.curves[w][i][1] for w in self.curves]
            )
        table = format_table(
            header, rows, float_fmt=".2f",
            title="Figure 2: required performance (fraction of full core) to meet QoS",
        )
        chart = render_chart(
            {name: [req for __, req in curve] for name, curve in self.curves.items()},
            x_labels=[f"{load:.0%}" for load in LOAD_POINTS],
            y_fmt=".2f",
        )
        table = f"{table}\n{chart}"
        slack20 = [1 - self.curves[w][1][1] for w in self.curves]
        slack50 = [1 - self.curves[w][4][1] for w in self.curves]
        return (
            f"{table}\n"
            f"slack at 20% load: {min(slack20):.0%}-{max(slack20):.0%} "
            f"(paper: 55%-90%); at 50%: {min(slack50):.0%}-{max(slack50):.0%} "
            f"(paper: 30%-70%)"
        )


def run(fidelity: Fidelity | None = None, n_requests: int = 12000) -> Fig2Result:
    """Regenerate Figure 2 via duty-cycle-style performance modulation."""
    __ = fidelity or Fidelity.from_env()
    curves = {
        name: slack_curve(get_profile(name), LOAD_POINTS, n_requests=n_requests)
        for name in LS_WORKLOADS
    }
    return Fig2Result(curves=curves)
