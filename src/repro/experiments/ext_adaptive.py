"""Extension: multi-B-mode adaptive control over a diurnal day (§IV-D).

The paper provisions one B-mode and suggests that "multiple configurations
... would enable finer-grain control over per-thread performance" at the
cost of "more sophisticated software control".  This harness measures that
trade exactly: the same colocated server runs a 24-hour Web Search diurnal
day under

* the two-point monitor (Baseline + the single 56-136 B-mode, optionally
  Q-mode), and
* the adaptive policy choosing among all five provisioned B-modes by the
  measured slack budget,

and reports B-mode residency, QoS violation rate, and daily batch
throughput gain versus an always-Baseline server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import measure
from repro.core.adaptive import AdaptiveStretchPolicy
from repro.core.partitioning import B_MODES
from repro.core.server import ColocatedServer
from repro.core.stretch import StretchMode
from repro.experiments.common import Fidelity
from repro.qos.diurnal import web_search_cluster_load
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = ["AdaptiveComparison", "run", "BATCH_CORUNNERS"]

BATCH_CORUNNERS = ("zeusmp", "libquantum", "milc")


@dataclass(frozen=True)
class PolicyDay:
    policy: str
    batch: str
    bmode_fraction: float
    violation_rate: float
    daily_batch_gain: float


@dataclass(frozen=True)
class AdaptiveComparison:
    days: list[PolicyDay]

    def mean_gain(self, policy: str) -> float:
        gains = [d.daily_batch_gain for d in self.days if d.policy == policy]
        return sum(gains) / len(gains)

    def mean_violations(self, policy: str) -> float:
        rates = [d.violation_rate for d in self.days if d.policy == policy]
        return sum(rates) / len(rates)

    def format(self) -> str:
        table = format_table(
            ["policy", "co-runner", "B-mode time", "violations", "daily gain"],
            [[d.policy, d.batch, d.bmode_fraction, d.violation_rate,
              d.daily_batch_gain] for d in self.days],
            float_fmt="+.1%",
            title="Extension: two-point monitor vs adaptive multi-B-mode "
                  "control (Web Search diurnal day)",
        )
        return (
            f"{table}\n"
            f"mean daily batch gain: two-point "
            f"{self.mean_gain('two-point'):+.1%} vs adaptive "
            f"{self.mean_gain('adaptive'):+.1%} "
            f"(violations {self.mean_violations('two-point'):.1%} vs "
            f"{self.mean_violations('adaptive'):.1%})"
        )


def run(fidelity: Fidelity | None = None) -> AdaptiveComparison:
    fid = fidelity or Fidelity.from_env()
    ls = get_profile("web_search")
    days: list[PolicyDay] = []
    for batch_name in BATCH_CORUNNERS:
        performance = measure(ls, batch_name, fidelity=fid)
        baseline_uipc = performance.per_mode[StretchMode.BASELINE].batch_uipc

        fixed_server = ColocatedServer(ls, performance, seed=11)
        fixed = fixed_server.run_day(
            web_search_cluster_load, window_minutes=15, requests_per_window=1200
        )
        days.append(PolicyDay(
            policy="two-point",
            batch=batch_name,
            bmode_fraction=fixed.bmode_fraction,
            violation_rate=fixed.violation_rate,
            daily_batch_gain=fixed.batch_throughput_gain(baseline_uipc),
        ))

        adaptive_server = ColocatedServer(ls, performance, seed=11)
        policy = AdaptiveStretchPolicy(ls.qos, performance, tuple(B_MODES))
        adaptive = adaptive_server.run_day_adaptive(
            web_search_cluster_load, policy,
            window_minutes=15, requests_per_window=1200,
        )
        days.append(PolicyDay(
            policy="adaptive",
            batch=batch_name,
            bmode_fraction=adaptive.bmode_fraction,
            violation_rate=adaptive.violation_rate,
            daily_batch_gain=adaptive.batch_throughput_gain(baseline_uipc),
        ))
    return AdaptiveComparison(days=days)
