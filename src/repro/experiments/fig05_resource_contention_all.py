"""Figure 5: average per-resource contention for all four services.

Extends the Figure 4 study to Data Serving, Web Serving, Web Search and
Media Streaming, reporting the average slowdown attributable to each shared
resource.  The paper's headline: no single resource hurts the
latency-sensitive side much (except L1-D against lbm), while the ROB is the
consistent batch bottleneck — 19% average, 31% worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.job import SimJob
from repro.experiments.common import Fidelity, LS_WORKLOADS
from repro.experiments.fig04_resource_contention import (
    RESOURCES,
    ResourceContentionResult,
    jobs as jobs_fig04,
    run as run_fig04,
)
from repro.util.tables import format_table

__all__ = ["Fig5Result", "run", "jobs"]


@dataclass(frozen=True)
class Fig5Result:
    """Figure 4-style results for every latency-sensitive service."""

    per_service: dict[str, ResourceContentionResult]

    def avg_batch_slowdown(self, resource: str) -> float:
        values = [
            r.batch_summary(resource).mean for r in self.per_service.values()
        ]
        return sum(values) / len(values)

    def avg_ls_slowdown(self, resource: str) -> float:
        values = [r.ls_summary(resource).mean for r in self.per_service.values()]
        return sum(values) / len(values)

    def max_batch_slowdown(self, resource: str) -> float:
        return max(
            r.batch_summary(resource).maximum for r in self.per_service.values()
        )

    def format(self) -> str:
        rows = []
        for service, result in self.per_service.items():
            for resource in RESOURCES:
                rows.append([
                    service,
                    resource.upper(),
                    result.ls_summary(resource).mean,
                    result.batch_summary(resource).mean,
                ])
        table = format_table(
            ["service", "shared", "LS avg slowdown", "batch avg slowdown"],
            rows, float_fmt=".1%",
            title="Figure 5: average slowdown per shared resource",
        )
        return (
            f"{table}\n"
            f"ROB batch average across services: "
            f"{self.avg_batch_slowdown('rob'):.1%} (paper: 19%), worst "
            f"{self.max_batch_slowdown('rob'):.1%} (paper: 31%)"
        )


def jobs(fidelity: Fidelity | None = None) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine)."""
    fid = fidelity or Fidelity.from_env()
    return [
        job for name in LS_WORKLOADS for job in jobs_fig04(fid, ls_workload=name)
    ]


def run(fidelity: Fidelity | None = None) -> Fig5Result:
    """Regenerate Figure 5 (Figure 4 across all four services)."""
    fid = fidelity or Fidelity.from_env()
    per_service = {
        name: run_fig04(fid, ls_workload=name) for name in LS_WORKLOADS
    }
    return Fig5Result(per_service=per_service)
