"""Extension: the energy side of a Stretch decision.

The paper opens with performance per Watt and per TCO dollar as the goal,
then evaluates throughput.  This harness closes the energy loop at first
order using :class:`repro.cpu.energy.EnergyModel`: for representative
colocations it reports, for Baseline vs B-mode 56-136,

* combined throughput (UIPC over the shared window),
* average core power, and
* performance per watt (committed instructions per joule).

Stretch moves ROB entries between threads without adding hardware, so
static power is configuration-invariant; B-mode's gain therefore shows up
almost entirely as instructions-per-joule improvement whenever it raises
combined throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import BASELINE, DEFAULT_B_MODE
from repro.cpu.config import CoreConfig
from repro.cpu.energy import EnergyModel
from repro.cpu.sampling import sample_colocation
from repro.experiments.common import Fidelity
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = ["EnergyComparison", "run", "PAIRS"]

PAIRS = (
    ("web_search", "zeusmp"),
    ("web_search", "gamess"),
    ("data_serving", "libquantum"),
    ("media_streaming", "milc"),
)


@dataclass(frozen=True)
class EnergyRow:
    pair: str
    mode: str
    combined_uipc: float
    watts: float
    instructions_per_joule: float


@dataclass(frozen=True)
class EnergyComparison:
    rows: list[EnergyRow]

    def ipj_gain(self, pair: str) -> float:
        by_mode = {r.mode: r for r in self.rows if r.pair == pair}
        return (
            by_mode["B-mode"].instructions_per_joule
            / by_mode["Baseline"].instructions_per_joule
            - 1.0
        )

    def mean_ipj_gain(self) -> float:
        pairs = {r.pair for r in self.rows}
        return sum(self.ipj_gain(p) for p in pairs) / len(pairs)

    def format(self) -> str:
        table = format_table(
            ["pair", "mode", "combined UIPC", "watts", "instr/J"],
            [[r.pair, r.mode, r.combined_uipc, r.watts,
              r.instructions_per_joule / 1e9] for r in self.rows],
            float_fmt=".3f",
            title="Extension: energy view of B-mode 56-136 (instr/J in 1e9)",
        )
        return (
            f"{table}\n"
            f"mean instructions-per-joule gain from B-mode: "
            f"{self.mean_ipj_gain():+.1%} (static power is mode-invariant; "
            f"B-mode converts the same watts into more work)"
        )


def run(fidelity: Fidelity | None = None) -> EnergyComparison:
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    base_config = BASELINE.apply(CoreConfig())
    bmode_config = DEFAULT_B_MODE.apply(CoreConfig())
    rows: list[EnergyRow] = []
    for ls_name, batch_name in PAIRS:
        ls, batch = get_profile(ls_name), get_profile(batch_name)
        for mode_name, config in (("Baseline", base_config), ("B-mode", bmode_config)):
            results = sample_colocation(ls, batch, config, sampling)
            model = EnergyModel(config)
            breakdowns = [model.breakdown(r) for r in results]
            instructions = sum(b.instructions for b in breakdowns)
            joules = sum(b.total_j for b in breakdowns)
            seconds = sum(b.seconds for b in breakdowns)
            cycles = sum(b.cycles for b in breakdowns)
            rows.append(EnergyRow(
                pair=f"{ls_name}+{batch_name}",
                mode=mode_name,
                combined_uipc=instructions / cycles,
                watts=joules / seconds,
                instructions_per_joule=instructions / joules,
            ))
    return EnergyComparison(rows=rows)
