"""Shared experiment infrastructure.

* :class:`Fidelity` — how many samples / instructions each simulation uses
  (``quick`` for regression runs, ``full`` for tighter statistics);
* core-configuration constructors for every sharing regime the paper
  evaluates (all-shared SMT baseline, share-one-resource-only, all-private
  ideal scheduling, dynamically shared ROB, fetch throttling, solo);
* memoized simulation entry points (:func:`solo_uipc`, :func:`pair_uipc`)
  backed by the content-addressed result store of :mod:`repro.engine`,
  since many figures reuse the same baseline colocation runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.cpu.config import CoreConfig, PartitionPolicy
from repro.cpu.sampling import SamplingConfig
from repro.engine.job import SimJob
from repro.engine.store import CACHE_VERSION, default_store
from repro.workloads.cloudsuite import CLOUDSUITE_NAMES
from repro.workloads.spec2006 import SPEC2006_NAMES

__all__ = [
    "Fidelity",
    "fidelity_from_env",
    "CACHE_VERSION",
    "LS_WORKLOADS",
    "BATCH_WORKLOADS",
    "config_all_shared",
    "config_solo",
    "config_share_only",
    "config_all_private",
    "config_dynamic_rob",
    "config_fetch_throttle",
    "solo_uipc",
    "pair_uipc",
]

LS_WORKLOADS: tuple[str, ...] = CLOUDSUITE_NAMES
BATCH_WORKLOADS: tuple[str, ...] = SPEC2006_NAMES


@dataclass(frozen=True)
class Fidelity:
    """Simulation effort level for the experiment harnesses."""

    name: str
    sampling: SamplingConfig

    @classmethod
    def quick(cls, seed: int = 42) -> "Fidelity":
        return cls("quick", SamplingConfig(n_samples=2, warmup_instructions=5000,
                                           measure_instructions=6000, seed=seed))

    @classmethod
    def full(cls, seed: int = 42) -> "Fidelity":
        return cls("full", SamplingConfig(n_samples=4, warmup_instructions=10000,
                                          measure_instructions=12000, seed=seed))


def fidelity_from_env(seed: int = 42) -> Fidelity:
    """Read ``REPRO_FIDELITY`` (quick|full), defaulting to quick.

    ``seed`` threads a command-line root seed through to the sampling
    configuration (``stretch-repro --seed``).
    """
    value = os.environ.get("REPRO_FIDELITY", "quick").lower()
    if value == "full":
        return Fidelity.full(seed)
    if value == "quick":
        return Fidelity.quick(seed)
    raise ValueError(f"REPRO_FIDELITY must be 'quick' or 'full', got {value!r}")


# ----------------------------------------------------------------------
# Core configurations for the paper's sharing regimes
# ----------------------------------------------------------------------

def config_all_shared() -> CoreConfig:
    """Baseline SMT core: everything shared, ROB/LSQ equally partitioned."""
    return CoreConfig()


def config_solo(rob_entries: int = 192) -> CoreConfig:
    """Stand-alone execution on a full core (normalization reference)."""
    return CoreConfig().single_thread(rob_entries)


def _private_everything() -> CoreConfig:
    """Both threads get private full-size structures (nothing under study).

    Each thread owns a full 192-entry ROB / 64-entry LSQ (modeled as a
    double-capacity structure with full per-thread limits), private L1s and
    private branch prediction.  Fetch/dispatch/commit bandwidth remains
    shared — it is inherent to SMT, not a provisioned resource.
    """
    base = CoreConfig()
    return replace(
        base,
        rob_entries=base.rob_entries * 2,
        lsq_entries=base.lsq_entries * 2,
        rob_limits=(base.rob_entries, base.rob_entries),
        lsq_limits=(base.lsq_entries, base.lsq_entries),
        private_l1i=True,
        private_l1d=True,
        private_bp=True,
    )


def config_share_only(resource: str) -> CoreConfig:
    """Private structures for everything except ``resource`` (Figs. 4-5).

    ``resource`` is one of ``rob``, ``l1i``, ``l1d``, ``bp`` (BTB + direction
    predictor).  Sharing the ROB means the threads fall back to the halved
    static partitions of the baseline core.
    """
    config = _private_everything()
    base = CoreConfig()
    if resource == "rob":
        return replace(
            config,
            rob_entries=base.rob_entries,
            lsq_entries=base.lsq_entries,
            rob_limits=base.rob_limits,
            lsq_limits=base.lsq_limits,
        )
    if resource == "l1i":
        return replace(config, private_l1i=False)
    if resource == "l1d":
        return replace(config, private_l1d=False)
    if resource == "bp":
        return replace(config, private_bp=False)
    raise ValueError(f"unknown resource {resource!r}; use rob/l1i/l1d/bp")


def config_all_private() -> CoreConfig:
    """Ideal software scheduling (Fig. 13): contention-free shared structures.

    Private L1-I/L1-D/BP per thread; ROB/LSQ keep the baseline equal static
    partitioning (software scheduling cannot provision core resources).
    """
    return replace(
        CoreConfig(), private_l1i=True, private_l1d=True, private_bp=True
    )


def config_dynamic_rob() -> CoreConfig:
    """Dynamically shared ROB/LSQ baseline (Fig. 11)."""
    return replace(CoreConfig(), rob_policy=PartitionPolicy.SHARED)


def config_fetch_throttle(m: int) -> CoreConfig:
    """Fetch throttling 1:M (Fig. 12): thread 1 (batch) gets M cycles of
    fetch priority for each cycle of the latency-sensitive thread 0."""
    if m < 1:
        raise ValueError("throttle ratio must be at least 1:1")
    return replace(CoreConfig(), fetch_policy="ratio", fetch_ratio=(1, m))


# ----------------------------------------------------------------------
# Memoized simulation entry points
# ----------------------------------------------------------------------
#
# Both entry points delegate to the content-addressed result store in
# ``repro.engine.store`` (atomic writes, corrupt-entry tolerance, in-flight
# deduplication).  ``stretch-repro --jobs N`` pre-populates that store by
# running each experiment's job grid on a process pool, after which these
# calls are pure cache hits.


def solo_uipc(workload: str, config: CoreConfig, sampling: SamplingConfig) -> float:
    """Mean stand-alone UIPC of ``workload`` under ``config`` (memoized)."""
    return default_store().compute(SimJob.solo(workload, config, sampling))[0]


def pair_uipc(
    ls_workload: str, batch_workload: str, config: CoreConfig, sampling: SamplingConfig
) -> tuple[float, float]:
    """Mean colocated UIPC ``(ls, batch)`` for a pair (memoized).

    Thread 0 runs the latency-sensitive workload, thread 1 the batch one,
    matching :class:`~repro.core.partitioning.PartitionScheme` orientation.
    """
    values = default_store().compute(
        SimJob.pair(ls_workload, batch_workload, config, sampling)
    )
    return values[0], values[1]
