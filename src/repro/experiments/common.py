"""Shared experiment infrastructure.

* :class:`Fidelity` — how much simulation effort each experiment spends,
  behind one extensible registry: exact tiers (``quick`` for regression
  runs, ``full`` for tighter statistics) pick sampling parameters, while
  the ``surrogate`` tier additionally answers partitioned-ROB sweeps from
  a fitted :class:`~repro.cpu.surrogate.UipcSurrogate` instead of the
  exact sampler.  :meth:`Fidelity.resolve` is the single entry point the
  API verbs, the CLI and ``REPRO_FIDELITY`` all consume; third parties
  register new tiers with :func:`register_fidelity`.
* core-configuration constructors for every sharing regime the paper
  evaluates (all-shared SMT baseline, share-one-resource-only, all-private
  ideal scheduling, dynamically shared ROB, fetch throttling, solo);
* memoized simulation entry points (:func:`solo_uipc`, :func:`pair_uipc`,
  and the batched :func:`solo_uipc_many` / :func:`pair_uipc_many`)
  backed by the content-addressed result store of :mod:`repro.engine`,
  since many figures reuse the same baseline colocation runs.  All four
  accept either a raw :class:`~repro.cpu.sampling.SamplingConfig` (always
  exact) or a :class:`Fidelity` (tier-aware: the surrogate tier predicts
  where its fitted family covers the query and transparently falls back
  to the exact sampler everywhere else).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.cpu.config import CoreConfig, PartitionPolicy
from repro.cpu.sampling import SamplingConfig
from repro.cpu.surrogate import (
    UipcFitJob,
    UipcGrid,
    UnsupportedConfigError,
    axis_scale,
    family_axis,
)
from repro.engine.job import SimJob
from repro.engine.store import CACHE_VERSION, default_store
from repro.workloads.cloudsuite import CLOUDSUITE_NAMES
from repro.workloads.spec2006 import SPEC2006_NAMES

__all__ = [
    "Fidelity",
    "register_fidelity",
    "fidelity_names",
    "fidelity_from_env",
    "CACHE_VERSION",
    "LS_WORKLOADS",
    "BATCH_WORKLOADS",
    "config_all_shared",
    "config_solo",
    "config_share_only",
    "config_all_private",
    "config_dynamic_rob",
    "config_fetch_throttle",
    "solo_uipc",
    "pair_uipc",
    "solo_uipc_many",
    "pair_uipc_many",
    "grid_jobs",
]

LS_WORKLOADS: tuple[str, ...] = CLOUDSUITE_NAMES
BATCH_WORKLOADS: tuple[str, ...] = SPEC2006_NAMES


@dataclass(frozen=True)
class Fidelity:
    """Simulation effort level for the experiment harnesses.

    ``grid`` marks a surrogate tier: partitioned-ROB queries are answered
    by a :class:`~repro.cpu.surrogate.UipcSurrogate` calibrated on that
    grid (with ``sampling`` supplying the calibration seeds), and
    everything outside the fitted families falls back to the exact
    sampler.  Exact tiers leave it ``None``.
    """

    name: str
    sampling: SamplingConfig
    grid: UipcGrid | None = None

    @property
    def is_surrogate(self) -> bool:
        return self.grid is not None

    @classmethod
    def quick(cls, seed: int = 42) -> "Fidelity":
        return cls("quick", SamplingConfig(n_samples=2, warmup_instructions=5000,
                                           measure_instructions=6000, seed=seed))

    @classmethod
    def full(cls, seed: int = 42) -> "Fidelity":
        return cls("full", SamplingConfig(n_samples=4, warmup_instructions=10000,
                                          measure_instructions=12000, seed=seed))

    @classmethod
    def surrogate(cls, seed: int = 42) -> "Fidelity":
        """Quick-tier sampling, with partitioned-ROB sweeps answered by a
        store-memoized fitted surrogate (error bound reported per fit)."""
        return cls("surrogate", cls.quick(seed).sampling, grid=UipcGrid())

    @classmethod
    def resolve(
        cls,
        value: "str | Fidelity",
        root: int = 42,
        *,
        seed: int | None = None,
        n_samples: int | None = None,
    ) -> "Fidelity":
        """Resolve a tier name (or pass through an instance) with overrides.

        ``root`` seeds a tier built from a registered name; ``seed`` and
        ``n_samples`` override the resolved sampling configuration either
        way.  Unknown names raise a :class:`ValueError` that lists the
        currently registered tiers.
        """
        if isinstance(value, cls):
            fidelity = value
        elif isinstance(value, str):
            factory = _REGISTRY.get(value.lower())
            if factory is None:
                known = ", ".join(repr(n) for n in fidelity_names())
                raise ValueError(
                    f"unknown fidelity {value!r}; registered tiers: {known}"
                )
            fidelity = factory(root)
        else:
            raise TypeError(
                f"fidelity must be a str or Fidelity, got {type(value).__name__}"
            )
        overrides = {}
        if seed is not None:
            overrides["seed"] = seed
        if n_samples is not None:
            overrides["n_samples"] = n_samples
        if overrides:
            fidelity = replace(
                fidelity, sampling=replace(fidelity.sampling, **overrides)
            )
        return fidelity

    @classmethod
    def from_env(cls, seed: int = 42) -> "Fidelity":
        """Read ``REPRO_FIDELITY`` (a registered tier name, default quick).

        ``seed`` threads a command-line root seed through to the sampling
        configuration (``stretch-repro --seed``).
        """
        value = os.environ.get("REPRO_FIDELITY", "quick")
        try:
            return cls.resolve(value, root=seed)
        except ValueError:
            known = ", ".join(fidelity_names())
            raise ValueError(
                f"REPRO_FIDELITY must be one of {known}, got {value!r}"
            ) from None


#: Registered tier name -> factory(root_seed) -> Fidelity.
_REGISTRY: dict[str, Callable[[int], Fidelity]] = {}


def register_fidelity(
    name: str, factory: Callable[[int], Fidelity], *, overwrite: bool = False
) -> None:
    """Register a fidelity tier under ``name`` (lower-cased).

    ``factory`` maps a root seed to a :class:`Fidelity`.  Registered
    names resolve through :meth:`Fidelity.resolve`, the CLI
    ``--fidelity`` flag and ``REPRO_FIDELITY`` alike.
    """
    key = name.lower()
    if not overwrite and key in _REGISTRY:
        raise ValueError(f"fidelity tier {name!r} is already registered")
    _REGISTRY[key] = factory


def fidelity_names() -> tuple[str, ...]:
    """Currently registered tier names, sorted (for CLI choices/errors)."""
    return tuple(sorted(_REGISTRY))


register_fidelity("quick", Fidelity.quick)
register_fidelity("full", Fidelity.full)
register_fidelity("surrogate", Fidelity.surrogate)


def fidelity_from_env(seed: int = 42) -> Fidelity:
    """Deprecated alias for :meth:`Fidelity.from_env`."""
    warnings.warn(
        "fidelity_from_env() is deprecated; use Fidelity.from_env()",
        DeprecationWarning,
        stacklevel=2,
    )
    return Fidelity.from_env(seed)


# ----------------------------------------------------------------------
# Core configurations for the paper's sharing regimes
# ----------------------------------------------------------------------

def config_all_shared() -> CoreConfig:
    """Baseline SMT core: everything shared, ROB/LSQ equally partitioned."""
    return CoreConfig()


def config_solo(rob_entries: int = 192) -> CoreConfig:
    """Stand-alone execution on a full core (normalization reference)."""
    return CoreConfig().single_thread(rob_entries)


def _private_everything() -> CoreConfig:
    """Both threads get private full-size structures (nothing under study).

    Each thread owns a full 192-entry ROB / 64-entry LSQ (modeled as a
    double-capacity structure with full per-thread limits), private L1s and
    private branch prediction.  Fetch/dispatch/commit bandwidth remains
    shared — it is inherent to SMT, not a provisioned resource.
    """
    base = CoreConfig()
    return replace(
        base,
        rob_entries=base.rob_entries * 2,
        lsq_entries=base.lsq_entries * 2,
        rob_limits=(base.rob_entries, base.rob_entries),
        lsq_limits=(base.lsq_entries, base.lsq_entries),
        private_l1i=True,
        private_l1d=True,
        private_bp=True,
    )


def config_share_only(resource: str) -> CoreConfig:
    """Private structures for everything except ``resource`` (Figs. 4-5).

    ``resource`` is one of ``rob``, ``l1i``, ``l1d``, ``bp`` (BTB + direction
    predictor).  Sharing the ROB means the threads fall back to the halved
    static partitions of the baseline core.
    """
    config = _private_everything()
    base = CoreConfig()
    if resource == "rob":
        return replace(
            config,
            rob_entries=base.rob_entries,
            lsq_entries=base.lsq_entries,
            rob_limits=base.rob_limits,
            lsq_limits=base.lsq_limits,
        )
    if resource == "l1i":
        return replace(config, private_l1i=False)
    if resource == "l1d":
        return replace(config, private_l1d=False)
    if resource == "bp":
        return replace(config, private_bp=False)
    raise ValueError(f"unknown resource {resource!r}; use rob/l1i/l1d/bp")


def config_all_private() -> CoreConfig:
    """Ideal software scheduling (Fig. 13): contention-free shared structures.

    Private L1-I/L1-D/BP per thread; ROB/LSQ keep the baseline equal static
    partitioning (software scheduling cannot provision core resources).
    """
    return replace(
        CoreConfig(), private_l1i=True, private_l1d=True, private_bp=True
    )


def config_dynamic_rob() -> CoreConfig:
    """Dynamically shared ROB/LSQ baseline (Fig. 11)."""
    return replace(CoreConfig(), rob_policy=PartitionPolicy.SHARED)


def config_fetch_throttle(m: int) -> CoreConfig:
    """Fetch throttling 1:M (Fig. 12): thread 1 (batch) gets M cycles of
    fetch priority for each cycle of the latency-sensitive thread 0."""
    if m < 1:
        raise ValueError("throttle ratio must be at least 1:1")
    return replace(CoreConfig(), fetch_policy="ratio", fetch_ratio=(1, m))


# ----------------------------------------------------------------------
# Memoized simulation entry points
# ----------------------------------------------------------------------
#
# All entry points delegate to the content-addressed result store in
# ``repro.engine.store`` (atomic writes, corrupt-entry tolerance, in-flight
# deduplication).  ``stretch-repro --jobs N`` pre-populates that store by
# running each experiment's job grid on a process pool, after which these
# calls are pure cache hits.
#
# The ``effort`` argument is a SamplingConfig (always exact — the historic
# calling convention) or a Fidelity.  At a surrogate tier the partitioned-
# ROB families answer from a store-memoized UipcSurrogate fit; any query
# the fit does not cover (unsupported config family, axis value outside
# the anchor range) silently uses the exact sampler instead, so results
# are defined for every input — only their cost and error bound differ.


def _sampling_of(effort: SamplingConfig | Fidelity) -> SamplingConfig:
    if isinstance(effort, Fidelity):
        return effort.sampling
    if isinstance(effort, SamplingConfig):
        return effort
    raise TypeError(
        f"expected SamplingConfig or Fidelity, got {type(effort).__name__}"
    )


def _surrogate_predictions(
    kind: str,
    workloads: tuple[str, ...],
    configs: tuple[CoreConfig, ...],
    fidelity: Fidelity,
) -> list[tuple[float, ...] | None]:
    """Per-config tuple of per-thread mean UIPCs, or None (needs exact).

    Groups configs by surrogate family so each family is fitted once
    (through the store) and evaluated as one vectorized interpolation.
    """
    grid = fidelity.grid
    out: list[tuple[float, ...] | None] = [None] * len(configs)
    groups: dict[CoreConfig, list[tuple[int, int]]] = {}
    for i, config in enumerate(configs):
        try:
            canon, x = family_axis(kind, config)
            anchors = grid.anchor_values(kind, axis_scale(kind, canon))
        except UnsupportedConfigError:
            continue
        if not anchors[0] <= x <= anchors[-1]:
            continue
        groups.setdefault(canon, []).append((i, x))
    store = default_store()
    for canon, queries in groups.items():
        job = UipcFitJob(kind, workloads, canon, fidelity.sampling, grid)
        surrogate = job.load(store.compute(job))
        xs = np.array([x for __, x in queries], dtype=float)
        grid_values = np.stack(
            [surrogate.predict_many(xs, thread=t) for t in range(len(workloads))],
            axis=1,
        )
        for (i, __), row in zip(queries, grid_values):
            out[i] = tuple(float(v) for v in row)
    return out


def solo_uipc(
    workload: str, config: CoreConfig, effort: SamplingConfig | Fidelity
) -> float:
    """Mean stand-alone UIPC of ``workload`` under ``config`` (memoized)."""
    return solo_uipc_many(workload, (config,), effort)[0]


def pair_uipc(
    ls_workload: str,
    batch_workload: str,
    config: CoreConfig,
    effort: SamplingConfig | Fidelity,
) -> tuple[float, float]:
    """Mean colocated UIPC ``(ls, batch)`` for a pair (memoized).

    Thread 0 runs the latency-sensitive workload, thread 1 the batch one,
    matching :class:`~repro.core.partitioning.PartitionScheme` orientation.
    """
    return pair_uipc_many(ls_workload, batch_workload, (config,), effort)[0]


def solo_uipc_many(
    workload: str, configs, effort: SamplingConfig | Fidelity
) -> tuple[float, ...]:
    """Batched :func:`solo_uipc` over a config sweep (one value per config)."""
    configs = tuple(configs)
    sampling = _sampling_of(effort)
    if isinstance(effort, Fidelity) and effort.is_surrogate:
        predicted = _surrogate_predictions("solo", (workload,), configs, effort)
    else:
        predicted = [None] * len(configs)
    store = default_store()
    return tuple(
        p[0] if p is not None
        else store.compute(SimJob.solo(workload, config, sampling))[0]
        for p, config in zip(predicted, configs)
    )


def pair_uipc_many(
    ls_workload: str,
    batch_workload: str,
    configs,
    effort: SamplingConfig | Fidelity,
) -> tuple[tuple[float, float], ...]:
    """Batched :func:`pair_uipc` over a config sweep (one pair per config)."""
    configs = tuple(configs)
    sampling = _sampling_of(effort)
    workloads = (ls_workload, batch_workload)
    if isinstance(effort, Fidelity) and effort.is_surrogate:
        predicted = _surrogate_predictions("pair", workloads, configs, effort)
    else:
        predicted = [None] * len(configs)
    store = default_store()
    out = []
    for p, config in zip(predicted, configs):
        if p is None:
            values = store.compute(
                SimJob.pair(ls_workload, batch_workload, config, sampling)
            )
            out.append((values[0], values[1]))
        else:
            out.append((p[0], p[1]))
    return tuple(out)


def grid_jobs(jobs, fidelity: SamplingConfig | Fidelity):
    """Map an experiment's exact job grid to what the tier actually runs.

    At exact tiers this is the identity.  At a surrogate tier each
    partitioned-ROB :class:`~repro.engine.job.SimJob` collapses into its
    family's (deduplicated) :class:`~repro.cpu.surrogate.UipcFitJob`, so
    ``stretch-repro --jobs N`` pre-warms surrogate fits on the process
    pool instead of running every sweep point; jobs the surrogate cannot
    answer stay as-is and still pre-warm exactly.
    """
    if not (isinstance(fidelity, Fidelity) and fidelity.is_surrogate):
        return list(jobs)
    out, seen = [], set()
    for job in jobs:
        candidate = job
        if isinstance(job, SimJob) and job.kind in ("solo", "pair"):
            try:
                canon, x = family_axis(job.kind, job.config)
                anchors = fidelity.grid.anchor_values(
                    job.kind, axis_scale(job.kind, canon)
                )
                if anchors[0] <= x <= anchors[-1]:
                    candidate = UipcFitJob(
                        job.kind, job.workloads, canon, job.sampling,
                        fidelity.grid,
                    )
            except UnsupportedConfigError:
                candidate = job
        if candidate.key not in seen:
            seen.add(candidate.key)
            out.append(candidate)
    return out
