"""Figure 6: sensitivity to ROB capacity (isolated execution).

Each workload runs alone on a core whose ROB varies from 16 to 192 entries
(the LSQ scales proportionally); performance is normalized to the 192-entry
point.  The paper's findings: latency-sensitive services reach 90-95% of
peak with half the ROB and lose at most ~23% at 48 entries, while batch
workloads lose 19% on average (31% max) at 96 entries, recovering to ~4%
at 160.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    LS_WORKLOADS,
    config_solo,
    grid_jobs,
    solo_uipc_many,
)
from repro.util.chart import render_chart
from repro.util.tables import format_table

__all__ = ["Fig6Result", "run", "jobs", "ROB_SIZES"]

ROB_SIZES = [16, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192]

#: The paper plots zeusmp as its high-sensitivity batch exemplar.
HIGHLIGHT_BATCH = "zeusmp"


@dataclass(frozen=True)
class Fig6Result:
    """Normalized slowdown curves per series."""

    #: {series name: {rob size: slowdown vs 192 entries}}
    curves: dict[str, dict[int, float]]

    def slowdown(self, series: str, rob: int) -> float:
        return self.curves[series][rob]

    def format(self) -> str:
        header = ["ROB"] + list(self.curves)
        rows = [
            [str(size)] + [self.curves[series][size] for series in self.curves]
            for size in ROB_SIZES
        ]
        table = format_table(
            header, rows, float_fmt=".1%",
            title="Figure 6: slowdown vs a 192-entry ROB (isolated cores)",
        )
        chart = render_chart(
            {name: [curve[size] for size in ROB_SIZES]
             for name, curve in self.curves.items()},
            x_labels=[str(size) for size in ROB_SIZES],
            y_fmt=".0%",
        )
        table = f"{table}\n{chart}"
        avg96 = self.curves["batch (avg)"][96]
        avg160 = self.curves["batch (avg)"][160]
        return (
            f"{table}\n"
            f"batch avg at 96 entries: {avg96:.1%} (paper: 19%), at 160: "
            f"{avg160:.1%} (paper: 4%); zeusmp at 96: "
            f"{self.curves[HIGHLIGHT_BATCH][96]:.1%} (paper: ~31% worst case)"
        )


def jobs(fidelity: Fidelity | None = None) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine).

    At the surrogate tier the per-size jobs collapse into one
    :class:`~repro.cpu.surrogate.UipcFitJob` per workload (via
    :func:`~repro.experiments.common.grid_jobs`).
    """
    fid = fidelity or Fidelity.from_env()
    return grid_jobs(
        (
            SimJob.solo(workload, config_solo(size), fid.sampling)
            for workload in (*LS_WORKLOADS, *BATCH_WORKLOADS)
            for size in ROB_SIZES
        ),
        fid,
    )


def run(fidelity: Fidelity | None = None) -> Fig6Result:
    """Regenerate Figure 6: ROB sweeps for LS workloads, batch avg, zeusmp."""
    fid = fidelity or Fidelity.from_env()
    configs = [config_solo(size) for size in ROB_SIZES]

    def curve(workload: str) -> dict[int, float]:
        values = dict(zip(ROB_SIZES, solo_uipc_many(workload, configs, fid)))
        reference = values[192]
        return {
            size: 1.0 - values[size] / reference for size in ROB_SIZES
        }

    curves: dict[str, dict[int, float]] = {}
    for name in LS_WORKLOADS:
        curves[name] = curve(name)
    batch_curves = {name: curve(name) for name in BATCH_WORKLOADS}
    curves["batch (avg)"] = {
        size: sum(c[size] for c in batch_curves.values()) / len(batch_curves)
        for size in ROB_SIZES
    }
    curves[HIGHLIGHT_BATCH] = batch_curves[HIGHLIGHT_BATCH]
    return Fig6Result(curves=curves)
