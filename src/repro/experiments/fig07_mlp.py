"""Figure 7: memory-level parallelism of Web Search vs zeusmp.

Fraction of execution time with at least K distinct-cache-block memory
requests in flight (K = 1..5).  The paper: Web Search exhibits MLP (>= 2
concurrent misses) only 9% of the time and >= 3 misses 3% of the time, while
zeusmp shows >= 2 for 55% and >= 3 for 21% of its execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.sampling import sample_solo
from repro.experiments.common import Fidelity, config_solo
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = ["Fig7Result", "run", "WORKLOADS"]

WORKLOADS = ("web_search", "zeusmp")
MLP_LEVELS = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class Fig7Result:
    """Cumulative in-flight-miss occupancy fractions per workload."""

    #: {workload: {k: fraction of time with >= k misses in flight}}
    fractions: dict[str, dict[int, float]]

    def mlp_at_least(self, workload: str, k: int) -> float:
        return self.fractions[workload][k]

    def format(self) -> str:
        rows = [
            [f">={k}"] + [self.fractions[w][k] for w in WORKLOADS]
            for k in MLP_LEVELS
        ]
        table = format_table(
            ["in-flight", *WORKLOADS], rows, float_fmt=".1%",
            title="Figure 7: fraction of time with >= K memory requests in flight",
        )
        return (
            f"{table}\n"
            f"paper: web_search >=2 for 9% / >=3 for 3% of time; "
            f"zeusmp >=2 for 55% / >=3 for 21%"
        )


def run(fidelity: Fidelity | None = None) -> Fig7Result:
    """Regenerate Figure 7 from MSHR-occupancy histograms."""
    fid = fidelity or Fidelity.from_env()
    fractions: dict[str, dict[int, float]] = {}
    for name in WORKLOADS:
        results = sample_solo(get_profile(name), config_solo(192), fid.sampling)
        merged = [0.0] * len(MLP_LEVELS)
        for result in results:
            thread = result.threads[0]
            for i, k in enumerate(MLP_LEVELS):
                merged[i] += thread.mlp_at_least(k)
        fractions[name] = {
            k: merged[i] / len(results) for i, k in enumerate(MLP_LEVELS)
        }
    return Fig7Result(fractions=fractions)
