"""Figure 4: per-resource contention for Web Search and its co-runners.

Methodology (paper §III-B): each colocation is simulated with completely
private microarchitectural structures for everything *except* one resource
under study — the ROB, L1-I, L1-D, or branch-prediction structures (BTB +
direction predictor).  Slowdown is measured against stand-alone execution on
a full core.

Paper findings: sharing any single resource costs Web Search generally under
12% (except the L1-D against lbm), while the shared ROB costs over 15% for
15 of the 29 batch co-runners, 31% worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    config_share_only,
    config_solo,
    grid_jobs,
    pair_uipc,
    solo_uipc,
)
from repro.util.stats import DistributionSummary, summarize
from repro.util.tables import format_table

__all__ = ["ResourceContentionResult", "run", "jobs", "RESOURCES"]

RESOURCES = ("rob", "l1i", "l1d", "bp")
_RESOURCE_LABEL = {"rob": "ROB", "l1i": "L1-I", "l1d": "L1-D", "bp": "BTB+BP"}


@dataclass(frozen=True)
class ResourceContentionResult:
    """Per-resource slowdowns for one latency-sensitive service."""

    ls_workload: str
    #: {resource: [(batch, ls_slowdown, batch_slowdown), ...]}
    by_resource: dict[str, list[tuple[str, float, float]]]

    def ls_slowdowns(self, resource: str) -> list[float]:
        return [s for __, s, __b in self.by_resource[resource]]

    def batch_slowdowns(self, resource: str) -> list[float]:
        return [b for __, __s, b in self.by_resource[resource]]

    def ls_summary(self, resource: str) -> DistributionSummary:
        return summarize(self.ls_slowdowns(resource))

    def batch_summary(self, resource: str) -> DistributionSummary:
        return summarize(self.batch_slowdowns(resource))

    def batch_over(self, resource: str, threshold: float) -> int:
        """How many co-runners lose more than ``threshold`` to this resource."""
        return sum(1 for b in self.batch_slowdowns(resource) if b > threshold)

    def format(self) -> str:
        rows = []
        for resource in RESOURCES:
            ls = self.ls_summary(resource)
            batch = self.batch_summary(resource)
            rows.append([
                _RESOURCE_LABEL[resource],
                ls.mean, ls.maximum, batch.mean, batch.maximum,
                str(self.batch_over(resource, 0.15)),
            ])
        table = format_table(
            ["shared resource", "LS mean", "LS max", "batch mean", "batch max",
             "batch >15%"],
            rows, float_fmt=".1%",
            title=(
                f"Figure 4: slowdown when sharing one resource "
                f"({self.ls_workload} vs 29 batch co-runners)"
            ),
        )
        return (
            f"{table}\n"
            f"paper: ROB sharing costs >15% for 15/29 co-runners (31% max); "
            f"Web Search loses <=12% except L1-D vs lbm"
        )


def jobs(
    fidelity: Fidelity | None = None, ls_workload: str = "web_search"
) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine)."""
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    solo = config_solo()
    grid = [
        SimJob.solo(workload, solo, sampling)
        for workload in (ls_workload, *BATCH_WORKLOADS)
    ]
    grid += [
        SimJob.pair(ls_workload, batch, config_share_only(resource), sampling)
        for resource in RESOURCES
        for batch in BATCH_WORKLOADS
    ]
    return grid_jobs(grid, fid)


def run(
    fidelity: Fidelity | None = None, ls_workload: str = "web_search"
) -> ResourceContentionResult:
    """Regenerate Figure 4 (share-one-resource-at-a-time) for one service."""
    fid = fidelity or Fidelity.from_env()
    solo = config_solo()
    ls_alone = solo_uipc(ls_workload, solo, fid)
    by_resource: dict[str, list[tuple[str, float, float]]] = {}
    for resource in RESOURCES:
        config = config_share_only(resource)
        rows = []
        for batch in BATCH_WORKLOADS:
            batch_alone = solo_uipc(batch, solo, fid)
            ls_colo, batch_colo = pair_uipc(ls_workload, batch, config, fid)
            rows.append(
                (batch, 1.0 - ls_colo / ls_alone, 1.0 - batch_colo / batch_alone)
            )
        by_resource[resource] = rows
    return ResourceContentionResult(ls_workload=ls_workload, by_resource=by_resource)
