"""Figure 9: performance change under asymmetric Stretch configurations.

Every B-mode (64-128 … 32-160) and Q-mode (128-64 … 160-32) partition scheme
runs all 4 x 29 colocations; speedups are normalized to the equally
partitioned baseline.  Paper headlines:

* B-mode 56-136: batch +13% average / +30% max; LS -7% average / -13% worst;
* B-mode 32-160: batch +18% average / +40% max;
* Q-mode 136-56: LS +7% average / +18% max; batch -21% average / -35% worst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import B_MODES, Q_MODES, PartitionScheme
from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    LS_WORKLOADS,
    config_all_shared,
    grid_jobs,
    pair_uipc_many,
)
from repro.util.stats import DistributionSummary, summarize
from repro.util.tables import format_table
from repro.util.violin import render_violin_row

__all__ = ["Fig9Result", "run", "jobs", "ALL_SCHEMES"]

ALL_SCHEMES: tuple[PartitionScheme, ...] = tuple(B_MODES) + tuple(Q_MODES)


@dataclass(frozen=True)
class Fig9Result:
    """Per-scheme speedup distributions over all colocations."""

    #: {scheme name: [(ls, batch, ls_speedup, batch_speedup), ...]}
    by_scheme: dict[str, list[tuple[str, str, float, float]]]

    def ls_speedups(self, scheme: str) -> list[float]:
        return [s for __, __b, s, __c in self.by_scheme[scheme]]

    def batch_speedups(self, scheme: str) -> list[float]:
        return [c for __, __b, __s, c in self.by_scheme[scheme]]

    def ls_summary(self, scheme: str) -> DistributionSummary:
        return summarize(self.ls_speedups(scheme))

    def batch_summary(self, scheme: str) -> DistributionSummary:
        return summarize(self.batch_speedups(scheme))

    def format(self) -> str:
        rows = []
        for scheme in self.by_scheme:
            ls = self.ls_summary(scheme)
            batch = self.batch_summary(scheme)
            kind = "B" if int(scheme.split("-")[0]) < 96 else "Q"
            rows.append([
                scheme, kind, ls.mean, ls.minimum, batch.mean, batch.maximum,
            ])
        table = format_table(
            ["ROB skew (LS-batch)", "mode", "LS mean", "LS worst",
             "batch mean", "batch best"],
            rows, float_fmt="+.1%",
            title="Figure 9: speedup vs equally partitioned ROB",
        )
        all_values = [
            v
            for scheme in self.by_scheme
            for v in (*self.ls_speedups(scheme), *self.batch_speedups(scheme))
        ]
        lo, hi = min(all_values), max(all_values)
        violins = []
        for scheme in self.by_scheme:
            violins.append(render_violin_row(
                f"{scheme} (LS)", self.ls_speedups(scheme), lo=lo, hi=hi
            ))
            violins.append(render_violin_row(
                f"{scheme} (batch)", self.batch_speedups(scheme), lo=lo, hi=hi
            ))
        table = f"{table}\n" + "\n".join(violins)
        if "56-136" not in self.by_scheme or "136-56" not in self.by_scheme:
            return table
        b = self.batch_summary("56-136")
        l = self.ls_summary("56-136")
        q = self.ls_summary("136-56")
        qb = self.batch_summary("136-56")
        return (
            f"{table}\n"
            f"B-mode 56-136: batch {b.mean:+.1%} avg / {b.maximum:+.1%} max "
            f"(paper: +13% / +30%); LS {l.mean:+.1%} avg / {l.minimum:+.1%} worst "
            f"(paper: -7% / -13%)\n"
            f"Q-mode 136-56: LS {q.mean:+.1%} avg / {q.maximum:+.1%} max "
            f"(paper: +7% / +18%); batch {qb.mean:+.1%} avg / {qb.minimum:+.1%} "
            f"worst (paper: -21% / -35%)"
        )


def jobs(
    fidelity: Fidelity | None = None,
    schemes: tuple[PartitionScheme, ...] | None = None,
) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine).

    At the surrogate tier the per-scheme jobs collapse into one
    :class:`~repro.cpu.surrogate.UipcFitJob` per colocated pair (via
    :func:`~repro.experiments.common.grid_jobs`).
    """
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    base = config_all_shared()
    configs = [base] + [s.apply(base) for s in (schemes or ALL_SCHEMES)]
    return grid_jobs(
        (
            SimJob.pair(ls, batch, config, sampling)
            for config in configs
            for ls in LS_WORKLOADS
            for batch in BATCH_WORKLOADS
        ),
        fid,
    )


def run(
    fidelity: Fidelity | None = None,
    schemes: tuple[PartitionScheme, ...] = ALL_SCHEMES,
) -> Fig9Result:
    """Regenerate Figure 9 over the requested partition schemes."""
    fid = fidelity or Fidelity.from_env()
    base = config_all_shared()
    configs = [base] + [scheme.apply(base) for scheme in schemes]
    by_scheme: dict[str, list[tuple[str, str, float, float]]] = {
        scheme.name: [] for scheme in schemes
    }
    for ls in LS_WORKLOADS:
        for batch in BATCH_WORKLOADS:
            values = pair_uipc_many(ls, batch, configs, fid)
            ls_base, batch_base = values[0]
            for scheme, (ls_mode, batch_mode) in zip(schemes, values[1:]):
                by_scheme[scheme.name].append((
                    ls, batch,
                    ls_mode / ls_base - 1.0, batch_mode / batch_base - 1.0,
                ))
    return Fig9Result(by_scheme=by_scheme)
