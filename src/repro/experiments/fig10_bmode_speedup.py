"""Figure 10: per-benchmark batch speedup under B-mode 56-136.

For each latency-sensitive service, the 29 batch co-runners' speedups over
the equally partitioned baseline, sorted descending (the paper omits
benchmark names because the sort order differs per service).  Paper: at
least 10 co-runners gain over 15%, two more gain over 10%, the rest 2-9%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioning import DEFAULT_B_MODE
from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    LS_WORKLOADS,
    config_all_shared,
    grid_jobs,
    pair_uipc,
)
from repro.util.tables import format_table

__all__ = ["Fig10Result", "run", "jobs"]


@dataclass(frozen=True)
class Fig10Result:
    """Sorted per-co-runner speedups per service (B-mode 56-136)."""

    #: {ls: [(batch, speedup), ...] sorted by descending speedup}
    speedups: dict[str, list[tuple[str, float]]]

    def count_over(self, ls: str, threshold: float) -> int:
        return sum(1 for __, s in self.speedups[ls] if s > threshold)

    def format(self) -> str:
        n = len(BATCH_WORKLOADS)
        rows = []
        for rank in range(n):
            rows.append(
                [str(rank + 1)] + [self.speedups[ls][rank][1] for ls in self.speedups]
            )
        table = format_table(
            ["rank"] + list(self.speedups), rows, float_fmt="+.1%",
            title="Figure 10: batch speedup with B-mode 56-136, sorted per service",
        )
        over15 = {ls: self.count_over(ls, 0.15) for ls in self.speedups}
        return (
            f"{table}\n"
            f"co-runners gaining >15%: {over15} (paper: at least 10 per service)"
        )


def jobs(fidelity: Fidelity | None = None) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine)."""
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    base = config_all_shared()
    return grid_jobs(
        (
            SimJob.pair(ls, batch, config, sampling)
            for config in (base, DEFAULT_B_MODE.apply(base))
            for ls in LS_WORKLOADS
            for batch in BATCH_WORKLOADS
        ),
        fid,
    )


def run(fidelity: Fidelity | None = None) -> Fig10Result:
    """Regenerate Figure 10 (B-mode 56-136 per-benchmark speedups)."""
    fid = fidelity or Fidelity.from_env()
    base = config_all_shared()
    mode = DEFAULT_B_MODE.apply(base)
    speedups: dict[str, list[tuple[str, float]]] = {}
    for ls in LS_WORKLOADS:
        rows = []
        for batch in BATCH_WORKLOADS:
            __, batch_base = pair_uipc(ls, batch, base, fid)
            __, batch_mode = pair_uipc(ls, batch, mode, fid)
            rows.append((batch, batch_mode / batch_base - 1.0))
        rows.sort(key=lambda item: -item[1])
        speedups[ls] = rows
    return Fig10Result(speedups=speedups)
