"""Figure 11: dynamically shared ROB versus equal static partitioning.

With a fully shared ROB under ICOUNT fetch, a latency-sensitive thread can
monopolize entries it does not benefit from, starving ROB-hungry co-runners.
Paper: batch applications lose 8% on average (49% max) relative to equal
partitioning — worst against Data Serving (20% average) — while the
latency-sensitive side gains slightly (4% average, 11% max).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.job import SimJob
from repro.experiments.common import (
    BATCH_WORKLOADS,
    Fidelity,
    LS_WORKLOADS,
    config_all_shared,
    config_dynamic_rob,
    grid_jobs,
    pair_uipc,
)
from repro.util.stats import DistributionSummary, summarize
from repro.util.tables import format_table

__all__ = ["Fig11Result", "run", "jobs"]


@dataclass(frozen=True)
class Fig11Result:
    """Per-pair performance change of dynamic sharing vs equal partitioning."""

    #: {ls: [(batch, ls_change, batch_slowdown), ...]}; batch_slowdown > 0
    #: means the batch thread runs slower under dynamic sharing.
    pairs: dict[str, list[tuple[str, float, float]]]

    def batch_summary(self, ls: str) -> DistributionSummary:
        return summarize([b for __, __c, b in self.pairs[ls]])

    def ls_summary(self, ls: str) -> DistributionSummary:
        return summarize([c for __, c, __b in self.pairs[ls]])

    def all_batch_slowdowns(self) -> list[float]:
        return [b for rows in self.pairs.values() for __, __c, b in rows]

    def all_ls_changes(self) -> list[float]:
        return [c for rows in self.pairs.values() for __, c, __b in rows]

    def format(self) -> str:
        rows = []
        for ls in self.pairs:
            batch = self.batch_summary(ls)
            lschg = self.ls_summary(ls)
            rows.append([ls, batch.mean, batch.maximum, lschg.mean, lschg.maximum])
        overall = summarize(self.all_batch_slowdowns())
        ls_overall = summarize(self.all_ls_changes())
        rows.append(["ALL", overall.mean, overall.maximum,
                     ls_overall.mean, ls_overall.maximum])
        table = format_table(
            ["latency-sensitive", "batch slowdown mean", "batch slowdown max",
             "LS change mean", "LS change max"],
            rows, float_fmt="+.1%",
            title="Figure 11: dynamically shared ROB vs equal partitioning",
        )
        return (
            f"{table}\n"
            f"paper: batch -8% avg / -49% max (worst vs Data Serving, -20% avg); "
            f"LS +4% avg / +11% max"
        )


def jobs(fidelity: Fidelity | None = None) -> list:
    """The simulation job grid behind :func:`run` (for the execution engine)."""
    fid = fidelity or Fidelity.from_env()
    sampling = fid.sampling
    return grid_jobs(
        (
            SimJob.pair(ls, batch, config, sampling)
            for config in (config_all_shared(), config_dynamic_rob())
            for ls in LS_WORKLOADS
            for batch in BATCH_WORKLOADS
        ),
        fid,
    )


def run(fidelity: Fidelity | None = None) -> Fig11Result:
    """Regenerate Figure 11 over all colocations."""
    fid = fidelity or Fidelity.from_env()
    equal = config_all_shared()
    dynamic = config_dynamic_rob()
    pairs: dict[str, list[tuple[str, float, float]]] = {}
    for ls in LS_WORKLOADS:
        rows = []
        for batch in BATCH_WORKLOADS:
            ls_eq, batch_eq = pair_uipc(ls, batch, equal, fid)
            ls_dyn, batch_dyn = pair_uipc(ls, batch, dynamic, fid)
            rows.append(
                (batch, ls_dyn / ls_eq - 1.0, 1.0 - batch_dyn / batch_eq)
            )
        pairs[ls] = rows
    return Fig11Result(pairs=pairs)
