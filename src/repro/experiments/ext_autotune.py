"""Extension: Fig. 14 with a scenario-autotuned software monitor.

The paper's cluster extrapolation (§VI-D, Fig. 14) runs the software
monitor at one hand-picked operating point (engage at 60% slack for 3
windows, throttle after 3 violations for 10 windows).  This harness
asks whether that point survives adversity: it tunes
:class:`~repro.core.monitor.MonitorConfig` with the CRN-paired searcher
(:func:`repro.tune.tune_monitor`) against the stock adversarial
portfolio — a calm day plus stragglers, a partial-fleet incident and a
flash crowd (:mod:`repro.scenarios`) — then reports the tuned
configuration against the paper default on every portfolio scenario.

Because every (candidate, scenario) fleet day is a content-addressed
:class:`~repro.fleet.shard.FleetShardJob`, re-running this experiment
warm is pure cache replay (``simulated == 0`` in the summary line).

Environment knobs: ``REPRO_FLEET_SIZES`` overrides the fleet sizes
(like :mod:`repro.experiments.ext_fleet`), ``REPRO_TUNE_TRIALS`` the
random-search budget per size.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.api import measure
from repro.experiments.common import Fidelity
from repro.fleet import FleetConfig
from repro.tune import CandidateScore, TuneResult, tune_monitor
from repro.util.tables import format_table
from repro.workloads.registry import get_profile

__all__ = [
    "AutotuneRow",
    "ExtAutotuneResult",
    "fleet_sizes",
    "n_trials",
    "run",
    "select_tuned",
]

FLEET_SIZES_ENV = "REPRO_FLEET_SIZES"
TUNE_TRIALS_ENV = "REPRO_TUNE_TRIALS"

LS = "web_search"
LOAD = "web_search"
BATCH = "zeusmp"

#: Fleet seed shared by every candidate (the CRN pairing seed).
SEED = 47
#: Search seed driving the random trials (not the fleet days).
TUNE_SEED = 17


def fleet_sizes(fidelity: Fidelity) -> tuple[int, ...]:
    """Fleet sizes to tune at; ``REPRO_FLEET_SIZES`` overrides."""
    spec = os.environ.get(FLEET_SIZES_ENV, "").strip()
    if spec:
        return tuple(int(token) for token in spec.replace(",", " ").split())
    if fidelity.name == "full":
        return (1_000, 10_000)
    return (1_000,)


def n_trials(fidelity: Fidelity) -> int:
    """Random-search budget per size; ``REPRO_TUNE_TRIALS`` overrides."""
    spec = os.environ.get(TUNE_TRIALS_ENV, "").strip()
    if spec:
        return int(spec)
    return 16 if fidelity.name == "full" else 8


def select_tuned(result: TuneResult) -> CandidateScore:
    """Pick the reported "tuned" config from a finished search.

    Best score first, but the pick must dominate-or-match the default
    on at least one scenario (no worse on both axes) — the experiment's
    acceptance relation.  The default itself qualifies (it matches
    everywhere), so this is total; it only ever skips high-score
    candidates that trade QoS for throughput on *every* scenario.
    """
    base = {o.scenario: o for o in result.default.outcomes}
    for cand in result.candidates:  # already sorted best-first
        if any(
            o.violation_rate <= base[o.scenario].violation_rate
            and o.mean_batch_uipc >= base[o.scenario].mean_batch_uipc
            for o in cand.outcomes
            if o.scenario in base
        ):
            return cand
    return result.default


@dataclass(frozen=True)
class AutotuneRow:
    """Tuned-vs-default comparison on one (fleet size, scenario) cell."""

    n_servers: int
    scenario: str
    default_violation_rate: float
    tuned_violation_rate: float
    default_batch_uipc: float
    tuned_batch_uipc: float

    @property
    def dominated(self) -> bool:
        """Strictly lower violation rate at equal-or-better batch UIPC."""
        return (
            self.tuned_violation_rate < self.default_violation_rate
            and self.tuned_batch_uipc >= self.default_batch_uipc
        )

    @property
    def matched(self) -> bool:
        """No worse than the default on both axes."""
        return (
            self.tuned_violation_rate <= self.default_violation_rate
            and self.tuned_batch_uipc >= self.default_batch_uipc
        )


@dataclass(frozen=True)
class ExtAutotuneResult:
    """Per-scenario rows plus the underlying tune searches per size."""

    rows: list[AutotuneRow]
    tunes: dict[int, TuneResult]
    tuned: dict[int, CandidateScore]
    wall_seconds: dict[int, float]

    def rows_for(self, n_servers: int) -> list[AutotuneRow]:
        return [row for row in self.rows if row.n_servers == n_servers]

    def format(self) -> str:
        table = format_table(
            ["servers", "scenario", "vr (default)", "vr (tuned)",
             "uipc (default)", "uipc (tuned)", "verdict"],
            [[row.n_servers, row.scenario,
              f"{row.default_violation_rate:.4f}",
              f"{row.tuned_violation_rate:.4f}",
              f"{row.default_batch_uipc:.4f}",
              f"{row.tuned_batch_uipc:.4f}",
              "dominates" if row.dominated
              else ("matches" if row.matched else "trades")]
             for row in self.rows],
            title="Extension: scenario-autotuned monitor vs the paper "
                  "default (CRN-paired fleet days)",
        )
        lines = [table]
        for n_servers, tune in self.tunes.items():
            cand = self.tuned[n_servers]
            m = cand.monitor
            lines.append(
                f"{n_servers} servers: tuned engage={m.engage_fraction:g}/"
                f"{m.engage_windows}w throttle="
                f"{m.violation_windows_to_throttle}v/{m.throttle_windows}w "
                f"({len(tune.candidates)} candidates, {tune.fleet_runs} "
                f"simulated + {tune.cached_runs} cached fleet days, "
                f"{self.wall_seconds[n_servers]:.1f}s)"
            )
        return "\n".join(lines)


def run(fidelity: Fidelity | None = None) -> ExtAutotuneResult:
    fid = fidelity or Fidelity.from_env()
    sizes = fleet_sizes(fid)
    trials = n_trials(fid)
    ls = get_profile(LS)
    performance = measure(ls, BATCH, fidelity=fid)
    rows: list[AutotuneRow] = []
    tunes: dict[int, TuneResult] = {}
    tuned: dict[int, CandidateScore] = {}
    walls: dict[int, float] = {}
    for n_servers in sizes:
        start = time.time()
        tune = tune_monitor(
            ls,
            performance,
            FleetConfig(seed=SEED, n_servers=n_servers),
            load=LOAD,
            n_trials=trials,
            descent_rounds=2 if fid.name == "full" else 1,
            seed=TUNE_SEED,
        )
        pick = select_tuned(tune)
        tunes[n_servers] = tune
        tuned[n_servers] = pick
        walls[n_servers] = time.time() - start
        base = {o.scenario: o for o in tune.default.outcomes}
        for ours in pick.outcomes:
            ref = base[ours.scenario]
            rows.append(AutotuneRow(
                n_servers=n_servers,
                scenario=ours.scenario,
                default_violation_rate=ref.violation_rate,
                tuned_violation_rate=ours.violation_rate,
                default_batch_uipc=ref.mean_batch_uipc,
                tuned_batch_uipc=ours.mean_batch_uipc,
            ))
    return ExtAutotuneResult(
        rows=rows, tunes=tunes, tuned=tuned, wall_seconds=walls
    )
