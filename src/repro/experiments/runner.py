"""Command-line runner over all experiment harnesses.

.. code-block:: console

   $ stretch-repro --list
   $ stretch-repro fig01 fig02
   $ stretch-repro fig09 --jobs auto          # parallel simulation engine
   $ stretch-repro all --fidelity full --seed 7
   $ stretch-repro gc                         # evict stale cache versions

With ``--jobs N`` (or ``auto``) each experiment's simulation grid is first
executed on a process pool through :mod:`repro.engine`, populating the
content-addressed result store; the harness then assembles its figures from
pure cache hits.  Parallel results are bit-identical to serial runs because
every job derives all randomness from its embedded seed.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import json
import sys
import time
from pathlib import Path

from repro.engine import EngineConfig, ExecutionEngine, default_store
from repro.engine.executor import parse_workers
from repro.experiments.common import Fidelity, fidelity_from_env
from repro.util.progress import ProgressPrinter, format_duration

__all__ = [
    "EXPERIMENTS",
    "expand_experiment_names",
    "main",
    "resolve_fidelity",
    "run_experiment",
]

#: Experiment id -> module implementing ``run(fidelity)`` (and, for the
#: simulation-grid figures, ``jobs(fidelity)`` for the execution engine).
EXPERIMENTS: dict[str, str] = {
    "tables": "repro.experiments.tables",
    "fig01": "repro.experiments.fig01_latency_vs_load",
    "fig02": "repro.experiments.fig02_slack",
    "fig03": "repro.experiments.fig03_colocation_slowdown",
    "fig04": "repro.experiments.fig04_resource_contention",
    "fig05": "repro.experiments.fig05_resource_contention_all",
    "fig06": "repro.experiments.fig06_rob_sensitivity",
    "fig07": "repro.experiments.fig07_mlp",
    "fig09": "repro.experiments.fig09_stretch_modes",
    "fig10": "repro.experiments.fig10_bmode_speedup",
    "fig11": "repro.experiments.fig11_dynamic_sharing",
    "fig12": "repro.experiments.fig12_fetch_throttling",
    "fig13": "repro.experiments.fig13_software_scheduling",
    "fig14": "repro.experiments.fig14_case_studies",
    # Extensions beyond the paper's evaluation (its §IV-D discussion points).
    "ext_two_services": "repro.experiments.ext_two_services",
    "ext_sensitivity": "repro.experiments.ext_sensitivity",
    "ext_adaptive": "repro.experiments.ext_adaptive",
    "ext_energy": "repro.experiments.ext_energy",
    "characterize": "repro.experiments.characterization",
}


def run_experiment(name: str, fidelity: Fidelity):
    """Run one experiment by id and return its result object."""
    try:
        module_name = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    module = importlib.import_module(module_name)
    return module.run(fidelity)


def expand_experiment_names(tokens: list[str]) -> list[str]:
    """Expand ``all`` (anywhere in the list) and deduplicate, keeping order."""
    names: list[str] = []
    for token in tokens:
        if token == "all":
            names.extend(EXPERIMENTS)
        else:
            names.append(token)
    return list(dict.fromkeys(names))


def resolve_fidelity(choice: str | None, seed: int) -> Fidelity:
    """``--fidelity`` wins; otherwise honor ``REPRO_FIDELITY`` (quick|full)."""
    if choice == "full":
        return Fidelity.full(seed)
    if choice == "quick":
        return Fidelity.quick(seed)
    return fidelity_from_env(seed)


def result_to_jsonable(result) -> object:
    """Convert an experiment result into JSON-serializable data.

    Dataclasses flatten recursively; enums and other exotic values fall back
    to ``str``.  Intended for piping results into external plotting tools.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_jsonable(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, dict):
        return {str(k): result_to_jsonable(v) for k, v in result.items()}
    if isinstance(result, (list, tuple)):
        return [result_to_jsonable(v) for v in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    return str(result)


def _warm_store(name: str, module, fidelity: Fidelity, workers: int):
    """Pre-execute an experiment's simulation grid on the process pool."""
    if workers == 1 or not hasattr(module, "jobs"):
        return None
    jobs = list(module.jobs(fidelity))
    if not jobs:
        return None
    engine = ExecutionEngine(EngineConfig(workers=workers))
    printer = ProgressPrinter(f"engine:{name}")
    report = engine.run_jobs(
        jobs,
        store=default_store(),
        progress=lambda stats: printer.update(
            f"{stats.done}/{stats.unique} done, {stats.running} running, "
            f"{stats.cache_hits} cached"
        ),
    )
    printer.close(report.stats.summary())
    return report


def _jobs_arg(value: str) -> int:
    try:
        return parse_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stretch-repro",
        description="Regenerate the tables and figures of the Stretch paper "
                    "(HPCA'19) from the simulation substrate.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig09), 'all', or 'gc' to evict stale "
             "cache versions",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--fidelity", choices=("quick", "full"), default=None,
        help="simulation effort (default: $REPRO_FIDELITY, else quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, metavar="N",
        help="root seed for all sampled simulations (default: 42)",
    )
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="worker processes for the simulation engine (default: 1 = "
             "serial; 'auto' = CPU count); results are bit-identical to "
             "serial runs",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write each result as DIR/<experiment>.json",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, module in EXPERIMENTS.items():
            doc = importlib.import_module(module).__doc__ or ""
            first = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{name:8s} {first}")
        return 0

    store = default_store()
    if "gc" in args.experiments:
        evicted = store.gc()
        manifest = store.read_manifest()
        print(
            f"cache gc: evicted {evicted} stale entries; "
            f"{manifest.get('entries', 0)} live entries at "
            f"version {manifest.get('cache_version')}"
        )
        args.experiments = [n for n in args.experiments if n != "gc"]
        if not args.experiments:
            return 0

    names = expand_experiment_names(args.experiments)
    fidelity = resolve_fidelity(args.fidelity, args.seed)
    json_dir = Path(args.json) if args.json else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
        module = importlib.import_module(EXPERIMENTS[name])
        start = time.time()
        report = _warm_store(name, module, fidelity, args.jobs)
        result = module.run(fidelity)
        elapsed = time.time() - start
        print(f"==== {name} ({format_duration(elapsed)}) ====")
        print(result.format())
        print()
        if json_dir:
            payload = {
                "experiment": name,
                "fidelity": fidelity.name,
                "seed": args.seed,
                "jobs": args.jobs,
                "elapsed_seconds": round(elapsed, 3),
                "engine": report.stats.as_dict() if report else None,
                "result": result_to_jsonable(result),
            }
            (json_dir / f"{name}.json").write_text(json.dumps(payload, indent=2))
    store.flush_manifest()
    return 0


if __name__ == "__main__":
    sys.exit(main())
