"""Command-line runner over all experiment harnesses.

.. code-block:: console

   $ stretch-repro --list
   $ stretch-repro fig01 fig02
   $ stretch-repro run fig09 --jobs auto      # parallel simulation engine
   $ stretch-repro all --fidelity full --seed 7
   $ stretch-repro gc                         # evict stale cache versions
   $ stretch-repro run fig06 --trace out.trace.json --metrics out.jsonl
   $ stretch-repro run fig06 --check          # per-cycle invariant checking
   $ stretch-repro check --configs 200        # differential oracle sweep
   $ stretch-repro inspect                    # store + job telemetry
   $ stretch-repro inspect 3fb2               # jobs whose key starts 3fb2
   $ stretch-repro serve --servers 10000 --feed web_search --metrics out.jsonl
   $ stretch-repro serve --listen 9100 --dashboard --slo "qos:violation_rate<0.05"
   $ stretch-repro top http://127.0.0.1:9100  # attach a live dashboard
   $ stretch-repro postmortem postmortem.jsonl  # attribute an SLO alert

With ``--jobs N`` (or ``auto``) each experiment's simulation grid is first
executed on a process pool through :mod:`repro.engine`, populating the
content-addressed result store; the harness then assembles its figures from
pure cache hits.  Parallel results are bit-identical to serial runs because
every job derives all randomness from its embedded seed.

The observability flags surface :mod:`repro.obs`:

* ``--trace FILE`` writes Chrome trace-event JSON (open in
  https://ui.perfetto.dev) covering the engine job lifecycle and one span
  per experiment;
* ``--metrics FILE`` streams per-window core samples (JSONL, one
  ``core_window`` object per line) from every simulated core — including
  pool workers, which inherit the setting via the environment;
* ``--profile`` prints a self-time table over the simulator's hot loops
  and the engine phases.

The correctness harness (:mod:`repro.check`) surfaces in two places:
``--check`` attaches a per-cycle :class:`InvariantChecker` to every core —
including those built inside pool workers, via ``REPRO_CHECK=1`` in the
inherited environment — and the ``check`` subcommand sweeps seeded random
configurations through the ``SMTCore`` vs ``ReferenceCore`` differential
oracle (optionally plus the metamorphic relation suite).
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import json
import os
import sys
import time
from pathlib import Path

from repro.engine import EngineConfig, ExecutionEngine, default_store
from repro.engine.executor import parse_workers
from repro.experiments.common import Fidelity, fidelity_names
from repro.obs.profiler import active_profiler, disable_profiling, enable_profiling
from repro.obs.sampler import CHECK_ENV, METRICS_ENV
from repro.obs.tracer import SpanTracer
from repro.util.progress import ProgressPrinter, format_duration, format_rate
from repro.util.tables import format_table

__all__ = [
    "EXPERIMENTS",
    "expand_experiment_names",
    "main",
    "resolve_fidelity",
    "run_experiment",
]

#: Experiment id -> module implementing ``run(fidelity)`` (and, for the
#: simulation-grid figures, ``jobs(fidelity)`` for the execution engine).
EXPERIMENTS: dict[str, str] = {
    "tables": "repro.experiments.tables",
    "fig01": "repro.experiments.fig01_latency_vs_load",
    "fig02": "repro.experiments.fig02_slack",
    "fig03": "repro.experiments.fig03_colocation_slowdown",
    "fig04": "repro.experiments.fig04_resource_contention",
    "fig05": "repro.experiments.fig05_resource_contention_all",
    "fig06": "repro.experiments.fig06_rob_sensitivity",
    "fig07": "repro.experiments.fig07_mlp",
    "fig09": "repro.experiments.fig09_stretch_modes",
    "fig10": "repro.experiments.fig10_bmode_speedup",
    "fig11": "repro.experiments.fig11_dynamic_sharing",
    "fig12": "repro.experiments.fig12_fetch_throttling",
    "fig13": "repro.experiments.fig13_software_scheduling",
    "fig14": "repro.experiments.fig14_case_studies",
    # Extensions beyond the paper's evaluation (its §IV-D discussion points).
    "ext_two_services": "repro.experiments.ext_two_services",
    "ext_sensitivity": "repro.experiments.ext_sensitivity",
    "ext_adaptive": "repro.experiments.ext_adaptive",
    "ext_energy": "repro.experiments.ext_energy",
    "ext_fleet": "repro.experiments.ext_fleet",
    "ext_placement": "repro.experiments.ext_placement",
    "ext_autotune": "repro.experiments.ext_autotune",
    "characterize": "repro.experiments.characterization",
}


def run_experiment(name: str, fidelity: Fidelity):
    """Run one experiment by id and return its result object."""
    try:
        module_name = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    module = importlib.import_module(module_name)
    return module.run(fidelity)


def expand_experiment_names(tokens: list[str]) -> list[str]:
    """Expand ``all`` (anywhere in the list) and deduplicate, keeping order."""
    names: list[str] = []
    for token in tokens:
        if token == "all":
            names.extend(EXPERIMENTS)
        else:
            names.append(token)
    return list(dict.fromkeys(names))


def resolve_fidelity(choice: str | None, seed: int) -> Fidelity:
    """``--fidelity`` wins; otherwise honor ``REPRO_FIDELITY``.

    Both paths go through the :func:`~repro.experiments.common.register_fidelity`
    registry, so third-party tiers registered before CLI parsing resolve here
    too.
    """
    if choice is not None:
        return Fidelity.resolve(choice, seed)
    return Fidelity.from_env(seed)


def result_to_jsonable(result) -> object:
    """Convert an experiment result into JSON-serializable data.

    Dataclasses flatten recursively; enums and other exotic values fall back
    to ``str``.  Intended for piping results into external plotting tools.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_jsonable(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, dict):
        return {str(k): result_to_jsonable(v) for k, v in result.items()}
    if isinstance(result, (list, tuple)):
        return [result_to_jsonable(v) for v in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    return str(result)


def _warm_store(name: str, module, fidelity: Fidelity, workers: int,
                tracer: SpanTracer | None = None, profiler=None):
    """Pre-execute an experiment's simulation grid through the engine.

    Runs whenever the experiment module exposes ``jobs(fidelity)`` — with
    one worker the grid executes serially (same work, now with engine
    telemetry and tracing); with more it lands on the process pool.  The
    subsequent ``module.run()`` then assembles figures from cache hits.
    """
    if not hasattr(module, "jobs"):
        return None
    jobs = list(module.jobs(fidelity))
    if not jobs:
        return None
    engine = ExecutionEngine(EngineConfig(workers=workers))
    printer = ProgressPrinter(f"engine:{name}")
    report = engine.run_jobs(
        jobs,
        store=default_store(),
        progress=lambda stats: printer.update(
            f"{stats.done}/{stats.unique} done, {stats.running} running, "
            f"{stats.cache_hits} cached, "
            f"{format_rate(stats.done, stats.wall_time)}"
        ),
        tracer=tracer,
        profiler=profiler,
    )
    printer.close(report.stats.summary())
    return report


def _jobs_arg(value: str) -> int:
    try:
        return parse_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _inspect_main(argv: list[str]) -> int:
    """``stretch-repro inspect``: result store + per-job telemetry."""
    parser = argparse.ArgumentParser(
        prog="stretch-repro inspect",
        description="Inspect the content-addressed result store: cumulative "
                    "cache statistics and the per-job telemetry records the "
                    "engine leaves in the manifest.",
    )
    parser.add_argument(
        "key", nargs="?", default=None,
        help="job key prefix: show matching telemetry records and stored "
             "result values",
    )
    parser.add_argument(
        "--limit", type=int, default=15, metavar="N",
        help="recent jobs to list in the summary view (default: 15)",
    )
    args = parser.parse_args(argv)

    store = default_store()
    manifest = store.read_manifest()
    jobs = manifest.get("jobs")
    if not isinstance(jobs, dict):
        jobs = {}

    if args.key:
        matches = sorted(
            ((k, v) for k, v in jobs.items() if k.startswith(args.key)),
            key=lambda kv: -kv[1].get("ts", 0),
        )
        if not matches:
            print(f"no job telemetry matching key prefix {args.key!r}")
            return 1
        for key, record in matches:
            print(key)
            print(
                f"  mode={record.get('mode')}  tries={record.get('tries')}  "
                f"seconds={record.get('seconds')}"
            )
            values = store.get(key)
            if values is not None:
                shown = ", ".join(f"{v:g}" for v in values[:8])
                more = f", … ({len(values)} values)" if len(values) > 8 else ""
                print(f"  values=({shown}{more})")
        return 0

    print(f"cache dir:     {store.directory or '(memory only)'}")
    print(
        f"cache version: v{manifest.get('cache_version', store.version)}, "
        f"{manifest.get('entries', 0)} entries on disk"
    )
    print(
        f"lifetime:      {manifest.get('hits', 0)} hits, "
        f"{manifest.get('misses', 0)} misses, "
        f"{manifest.get('writes', 0)} writes, "
        f"{manifest.get('corrupt_entries', 0)} corrupt"
    )
    if jobs:
        recent = sorted(jobs.items(), key=lambda kv: -kv[1].get("ts", 0))
        rows = [
            [key[:16] + "…", record.get("mode", "?"),
             record.get("tries", 0), f"{record.get('seconds', 0.0):.3f}s"]
            for key, record in recent[: args.limit]
        ]
        print()
        print(format_table(
            ["job key", "mode", "tries", "seconds"], rows,
            title=f"Recent jobs ({min(len(recent), args.limit)} of {len(recent)})",
        ))
    else:
        print("no per-job telemetry recorded yet (run an experiment first)")
    return 0


def _surrogate_gate_main(args) -> int:
    """``stretch-repro check --surrogate``: held-out accuracy gate."""
    from repro.check import surrogate_accuracy_sweep

    start = time.time()
    printer = ProgressPrinter("check:surrogate")
    done = 0

    def progress(result) -> None:
        nonlocal done
        done += 1
        printer.update(f"{done}/{args.surrogate_configs} held-out configs, "
                       f"{format_rate(done, time.time() - start)}")

    report = surrogate_accuracy_sweep(
        n_configs=args.surrogate_configs, seed=args.seed, progress=progress
    )
    printer.close(report.summary())
    for result in report.failures:
        print(f"  FAIL {result.summary()}")
    print(f"check --surrogate: {'FAILED' if not report.ok else 'ok'} "
          f"({format_duration(time.time() - start)})")
    return 0 if report.ok else 1


def _check_main(argv: list[str]) -> int:
    """``stretch-repro check``: differential oracle + metamorphic relations."""
    parser = argparse.ArgumentParser(
        prog="stretch-repro check",
        description="Validate FastCore and the legacy SMTCore against the "
                    "unoptimized ReferenceCore on seeded random "
                    "configurations plus targeted stress cases "
                    "(bit-identical results required across all three "
                    "engines), with per-cycle invariant checking attached "
                    "to every run.",
    )
    parser.add_argument(
        "--configs", type=int, default=200, metavar="N",
        help="number of seeded random configurations to sweep (default: 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="root seed for configuration generation (default: 0)",
    )
    parser.add_argument(
        "--no-invariants", action="store_true",
        help="skip attaching the per-cycle invariant checker (faster)",
    )
    parser.add_argument(
        "--no-stress", action="store_true",
        help="skip the targeted stress cases (mode-switch storms, zero-idle "
             "pairs, cycle-0 completions, MSHR-saturated windows)",
    )
    parser.add_argument(
        "--metamorphic", action="store_true",
        help="also run the metamorphic relation suite (ROB monotonicity, "
             "co-runner direction, mode ordering)",
    )
    parser.add_argument(
        "--surrogate", action="store_true",
        help="run the surrogate-tier accuracy gate instead: fresh held-out "
             "configurations (fresh seeds) must land within each fitted "
             "UIPC surrogate's reported error bound",
    )
    parser.add_argument(
        "--surrogate-configs", type=int, default=50, metavar="N",
        help="held-out configurations for the --surrogate gate (default: 50)",
    )
    args = parser.parse_args(argv)

    if args.surrogate:
        return _surrogate_gate_main(args)

    from repro.check import (
        build_cases,
        build_stress_cases,
        differential_sweep,
        run_metamorphic_suite,
    )

    start = time.time()
    printer = ProgressPrinter("check:differential")
    cases = build_cases(args.configs, seed=args.seed)
    if not args.no_stress:
        cases = cases + build_stress_cases(seed=args.seed)
    done = 0

    def progress(case, diffs) -> None:
        nonlocal done
        done += 1
        printer.update(f"{done}/{len(cases)} cases, "
                       f"{format_rate(done, time.time() - start)}")

    report = differential_sweep(
        cases, check_invariants=not args.no_invariants, progress=progress
    )
    printer.close(report.summary())
    for line in report.mismatches + report.errors:
        print(f"  FAIL {line}")

    failed = not report.ok
    if args.metamorphic:
        for relation in run_metamorphic_suite(seed=args.seed or 7):
            print(relation.summary())
            if not relation.holds:
                failed = True
    print(f"check: {'FAILED' if failed else 'ok'} "
          f"({format_duration(time.time() - start)})")
    return 1 if failed else 0


def _serve_main(argv: list[str]) -> int:
    """``stretch-repro serve``: the live fleet service loop.

    Streams one LDJSON line per completed window (with ``--metrics``),
    answers control commands from stdin (``status`` / ``whatif`` /
    ``checkpoint`` / ``reconfigure`` / ``dump`` / ``stop`` — see
    :mod:`repro.service.control`), and shuts down cleanly on SIGINT with
    a final summary line on stdout.  ``--listen`` adds the OpenMetrics
    scrape endpoint, ``--dashboard`` a live terminal panel on stderr;
    SLO scoring and the violation flight recorder are on by default
    (``--slo none`` / ``--no-recorder`` to disable).
    """
    parser = argparse.ArgumentParser(
        prog="stretch-repro serve",
        description="Run a colocated server fleet as a live service: "
                    "ingest a load feed window by window, stream fleet.* "
                    "metrics, answer what-if/checkpoint/reconfigure "
                    "queries over a line-delimited JSON control plane.",
    )
    parser.add_argument(
        "--ls", default="web_search", metavar="WORKLOAD",
        help="latency-sensitive workload (default: web_search)",
    )
    parser.add_argument(
        "--batch", default="zeusmp", metavar="WORKLOAD",
        help="batch co-runner (default: zeusmp)",
    )
    parser.add_argument(
        "--servers", type=int, default=1000, metavar="N",
        help="fleet size (default: 1000)",
    )
    parser.add_argument(
        "--feed", default="web_search", metavar="SPEC",
        help="load feed: curve name, flat:<x>, phases:<spec>, or "
             "replay:<path.jsonl> (default: web_search)",
    )
    parser.add_argument(
        "--windows", type=int, default=None, metavar="N",
        help="serve at most N windows (default: the rest of the day)",
    )
    parser.add_argument(
        "--window-minutes", type=float, default=10.0, metavar="MIN",
        help="monitoring window length (default: 10)",
    )
    parser.add_argument(
        "--requests-per-window", type=int, default=2000, metavar="N",
        help="request samples per window (default: 2000)",
    )
    parser.add_argument(
        "--policy", default="jittered", metavar="NAME",
        help="load-balancing policy (default: jittered)",
    )
    parser.add_argument(
        "--scenario", metavar="SPEC", default=None,
        help="attach an adversarial scenario: a preset name from "
             "repro.scenarios.SCENARIO_NAMES, or an inline JSON spec "
             "dict (default: none)",
    )
    parser.add_argument(
        "--tail", choices=("surrogate", "exact"), default="surrogate",
        help="tail evaluator (default: surrogate)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="fleet seed (default: 0)",
    )
    parser.add_argument(
        "--fidelity", choices=fidelity_names(), default="quick",
        help="sampling effort for the on-the-fly performance measurement "
             "(default: quick; memoized via the result store)",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="stream one fleet_window JSONL record per window to FILE",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write Chrome trace-event JSON over the "
             "ingest->advance->publish loop",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="persist a content-addressed checkpoint every N windows "
             "(plus one final checkpoint at shutdown)",
    )
    parser.add_argument(
        "--resume", metavar="KEY", default=None,
        help="resume from a checkpoint key (bit-identical to never "
             "having stopped)",
    )
    parser.add_argument(
        "--max-gap", type=int, default=6, metavar="N",
        help="tolerated consecutive feed gaps (hold-last fill) before a "
             "clean feed_stalled shutdown (default: 6)",
    )
    parser.add_argument(
        "--chunk", type=int, default=None, metavar="N",
        help="servers advanced per chunk (default: "
             "$REPRO_FLEET_CHUNK or 65536)",
    )
    parser.add_argument(
        "--pace", type=float, default=0.0, metavar="SECONDS",
        help="real seconds per simulated window (0 = flat out)",
    )
    parser.add_argument(
        "--no-control", action="store_true",
        help="do not read control commands from stdin",
    )
    parser.add_argument(
        "--slo", action="append", metavar="SPEC", default=None,
        help="SLO spec NAME:violation_rate<FRACTION or NAME:tail<MSms, "
             "each optionally @FAST/SLOWxTHRESHOLD[,...]; repeatable; "
             "'none' disables scoring "
             "(default: qos:violation_rate<0.05)",
    )
    parser.add_argument(
        "--no-recorder", action="store_true",
        help="disable the violation flight recorder",
    )
    parser.add_argument(
        "--postmortem", metavar="FILE", default="postmortem.jsonl",
        help="flight-recorder bundle path, written by the control "
             "plane's dump verb and automatically on feed_stalled/SIGINT "
             "stops (default: postmortem.jsonl)",
    )
    parser.add_argument(
        "--listen", metavar="[HOST:]PORT", default=None,
        help="serve /metrics (OpenMetrics), /status and /healthz from a "
             "background HTTP thread; port 0 binds an ephemeral port — "
             "the bound address is announced as a 'listen' record on "
             "stdout",
    )
    parser.add_argument(
        "--dashboard", action="store_true",
        help="repaint a live status panel on stderr every window",
    )
    args = parser.parse_args(argv)

    import signal
    import time

    from repro.api import serve
    from repro.obs.export import DashboardPrinter, ObservabilityServer
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.sampler import JsonlSink
    from repro.service.control import ControlPlane, respond

    slo_specs = args.slo if args.slo else ["qos:violation_rate<0.05"]
    if any(spec.strip().lower() == "none" for spec in slo_specs):
        slo_specs = None
    use_recorder = not args.no_recorder
    scenario = args.scenario
    if scenario is not None:
        scenario = scenario.strip()
        if scenario.startswith("{"):
            scenario = json.loads(scenario)
    sink = JsonlSink(args.metrics) if args.metrics else None
    tracer = SpanTracer(process_name="stretch-repro serve") if args.trace else None
    service = serve(
        args.ls,
        args.batch,
        feed=args.feed,
        tail=args.tail,
        n_servers=args.servers,
        policy=args.policy,
        window_minutes=args.window_minutes,
        requests_per_window=args.requests_per_window,
        seed=args.seed,
        fidelity=args.fidelity,
        scenario=scenario,
        resume=args.resume,
        max_gap_windows=args.max_gap,
        chunk_size=args.chunk,
        registry=MetricsRegistry(),
        sink=sink,
        tracer=tracer,
        slos=slo_specs,
        recorder=use_recorder,
        postmortem_path=args.postmortem if use_recorder else None,
    )
    obs_server = None
    if args.listen is not None:
        host, _, port = args.listen.rpartition(":")
        obs_server = ObservabilityServer(
            service.registry,
            host=host or "127.0.0.1",
            port=int(port),
            status_fn=service.status,
        ).start()
        respond(sys.stdout, {
            "type": "listen", "url": obs_server.url,
            "host": obs_server.host, "port": obs_server.port,
        })
    printer = (
        DashboardPrinter(sys.stderr) if args.dashboard else None
    )
    progress = {"windows": 0, "t0": time.monotonic()}

    def on_window(svc, record) -> None:
        progress["windows"] += 1
        if printer is not None:
            elapsed = time.monotonic() - progress["t0"]
            printer.update(
                svc.status(), svc.registry,
                windows_per_s=(
                    progress["windows"] / elapsed if elapsed > 0 else None
                ),
            )

    control = None if args.no_control else ControlPlane(sys.stdin)
    previous = signal.signal(
        signal.SIGINT, lambda signum, frame: service.stop("sigint")
    )
    try:
        summary = service.run(
            n_windows=args.windows,
            control=control,
            out=sys.stdout,
            checkpoint_every=args.checkpoint_every,
            pace_seconds=args.pace,
            on_window=on_window,
        )
    finally:
        signal.signal(signal.SIGINT, previous)
        if obs_server is not None:
            obs_server.stop()
    if printer is not None:
        printer.update(service.status(), service.registry)
    if args.checkpoint_every and service.window > 0:
        summary["checkpoint"] = service.checkpoint()
    respond(sys.stdout, summary)
    if sink is not None:
        sink.flush()
    if tracer is not None:
        tracer.write(args.trace)
    return 0


def _top_main(argv: list[str]) -> int:
    """``stretch-repro top``: live dashboard over a serve ``--listen`` URL."""
    parser = argparse.ArgumentParser(
        prog="stretch-repro top",
        description="Attach a terminal dashboard to a running "
                    "'stretch-repro serve --listen' endpoint by polling "
                    "its /status route.",
    )
    parser.add_argument(
        "url", nargs="?", default="http://127.0.0.1:9100",
        help="base URL from the serve 'listen' record "
             "(default: http://127.0.0.1:9100)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval (default: 2.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render one panel and exit (scripting/smoke-test mode)",
    )
    args = parser.parse_args(argv)

    import json as _json
    import time
    import urllib.error
    import urllib.request

    from repro.obs.export import DashboardPrinter

    base = args.url.rstrip("/")
    printer = DashboardPrinter(sys.stdout)
    while True:
        try:
            with urllib.request.urlopen(base + "/status", timeout=10) as rsp:
                status = _json.loads(rsp.read().decode())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"top: cannot read {base}/status: {exc}", file=sys.stderr)
            return 1
        printer.update(status)
        if args.once or status.get("stopped") or status.get("done"):
            return 0
        try:
            time.sleep(max(args.interval, 0.1))
        except KeyboardInterrupt:
            return 0


def _postmortem_main(argv: list[str]) -> int:
    """``stretch-repro postmortem``: analyze a flight-recorder bundle."""
    parser = argparse.ArgumentParser(
        prog="stretch-repro postmortem",
        description="Analyze a postmortem JSONL bundle written by the "
                    "serve loop's flight recorder: summarize the window "
                    "history and attribute each SLO-alert capture to "
                    "load_spike / mode_switch_lag / straggler.",
    )
    parser.add_argument("bundle", help="postmortem bundle path (.jsonl)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full analysis as JSON instead of a report",
    )
    args = parser.parse_args(argv)

    import json as _json

    from repro.obs.recorder import analyze_bundle

    try:
        report = analyze_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        print(f"postmortem: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(report, indent=2))
        return 0
    meta = report["meta"]
    summary = report["summary"]
    service = meta.get("service", {})
    print(f"postmortem: {args.bundle}")
    print(
        f"  service   {service.get('ls_profile', '?')} fleet, "
        f"{service.get('n_servers', '?')} servers, feed "
        f"{service.get('feed', '?')}, policy {service.get('policy', '?')}"
        f" (dump reason: {meta.get('reason', '?')})"
    )
    windows = summary.get("windows")
    span = f"{windows[0]}..{windows[1]}" if windows else "none"
    print(
        f"  recorded  {summary['frames']} windows ({span}), "
        f"violation_rate {summary['violation_rate']:.4f}, "
        f"load median {summary['median_load']:.2f} / "
        f"peak {summary['peak_load']:.2f}"
    )
    print(
        f"  alerts    {summary['alerts']} fired, "
        f"{summary['captures']} captures"
    )
    for i, capture in enumerate(report["captures"]):
        evidence = capture["evidence"]
        scores = capture["scores"]
        score_txt = ", ".join(
            f"{name}={value:.2f}" for name, value in sorted(scores.items())
        )
        print(
            f"  capture {i}: windows {capture.get('lo_window')}.."
            f"{capture.get('hi_window')}, alert at "
            f"{evidence.get('alert_window')} "
            f"({evidence.get('slo')}/{evidence.get('policy')})"
        )
        print(f"    primary: {capture['primary']}  [{score_txt}]")
        if evidence.get("repeat_servers"):
            print(f"    repeat violators: {evidence['repeat_servers']}")
    if not report["captures"]:
        print("  no captures (no SLO alert fired while recording)")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "inspect":
        return _inspect_main(argv[1:])
    if argv and argv[0] == "check":
        return _check_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "postmortem":
        return _postmortem_main(argv[1:])
    if argv and argv[0] == "run":
        # Explicit subcommand form: ``stretch-repro run fig06 …``.
        argv = argv[1:]

    parser = argparse.ArgumentParser(
        prog="stretch-repro",
        description="Regenerate the tables and figures of the Stretch paper "
                    "(HPCA'19) from the simulation substrate.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig09), 'all', or 'gc' to evict stale "
             "cache versions",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--fidelity", choices=fidelity_names(), default=None,
        help="simulation effort (default: $REPRO_FIDELITY, else quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, metavar="N",
        help="root seed for all sampled simulations (default: 42)",
    )
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="worker processes for the simulation engine (default: 1 = "
             "serial; 'auto' = CPU count); results are bit-identical to "
             "serial runs",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write each result as DIR/<experiment>.json",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write Chrome trace-event JSON (engine job lifecycle + one "
             "span per experiment); view at https://ui.perfetto.dev",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="stream per-window core samples to FILE as JSONL "
             "(one core_window object per line; workers append too)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile simulator hot loops and engine phases; prints a "
             "self-time table at exit",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="attach the per-cycle invariant checker to every simulated "
             "core (including pool workers); violations raise immediately",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, module in EXPERIMENTS.items():
            doc = importlib.import_module(module).__doc__ or ""
            first = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{name:8s} {first}")
        return 0

    store = default_store()
    if "gc" in args.experiments:
        evicted = store.gc()
        manifest = store.read_manifest()
        print(
            f"cache gc: evicted {evicted} stale entries; "
            f"{manifest.get('entries', 0)} live entries at "
            f"version {manifest.get('cache_version')}"
        )
        args.experiments = [n for n in args.experiments if n != "gc"]
        if not args.experiments:
            return 0

    names = expand_experiment_names(args.experiments)
    fidelity = resolve_fidelity(args.fidelity, args.seed)
    json_dir = Path(args.json) if args.json else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)

    # Observability setup.  The metrics sink and profiler flag travel via
    # the environment so pool workers inherit them; both are restored on
    # exit so library callers of main() do not leak state.
    tracer = SpanTracer() if args.trace else None
    saved_metrics_env = os.environ.get(METRICS_ENV)
    saved_check_env = os.environ.get(CHECK_ENV)
    profiling_was_on = active_profiler() is not None
    if args.metrics:
        metrics_path = Path(args.metrics).resolve()
        metrics_path.write_text("")  # truncate; runs append line-by-line
        os.environ[METRICS_ENV] = str(metrics_path)
    if args.check:
        os.environ[CHECK_ENV] = "1"
    profiler = enable_profiling() if args.profile else active_profiler()

    try:
        for name in names:
            if name not in EXPERIMENTS:
                raise KeyError(
                    f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
                )
            module = importlib.import_module(EXPERIMENTS[name])
            start = time.time()
            span_start = tracer.now_us() if tracer is not None else 0.0
            report = _warm_store(name, module, fidelity, args.jobs,
                                 tracer=tracer, profiler=profiler)
            result = module.run(fidelity)
            elapsed = time.time() - start
            if tracer is not None:
                tracer.complete(
                    f"experiment:{name}", span_start,
                    tracer.now_us() - span_start, cat="experiment",
                    args={"fidelity": fidelity.name, "seed": args.seed},
                )
            print(f"==== {name} ({format_duration(elapsed)}) ====")
            print(result.format())
            print()
            if json_dir:
                payload = {
                    "experiment": name,
                    "fidelity": fidelity.name,
                    "seed": args.seed,
                    "jobs": args.jobs,
                    "elapsed_seconds": round(elapsed, 3),
                    "engine": report.stats.as_dict() if report else None,
                    "result": result_to_jsonable(result),
                }
                (json_dir / f"{name}.json").write_text(json.dumps(payload, indent=2))
    finally:
        if args.metrics:
            if saved_metrics_env is None:
                os.environ.pop(METRICS_ENV, None)
            else:
                os.environ[METRICS_ENV] = saved_metrics_env
        if args.check:
            if saved_check_env is None:
                os.environ.pop(CHECK_ENV, None)
            else:
                os.environ[CHECK_ENV] = saved_check_env
        if args.profile and not profiling_was_on:
            table = profiler.self_time_table() if profiler else ""
            disable_profiling()
            if table:
                print(table)
        if tracer is not None:
            count = tracer.write(args.trace)
            print(
                f"trace: {count} events -> {args.trace} "
                f"(open in https://ui.perfetto.dev)"
            )

    store.flush_manifest()
    return 0


if __name__ == "__main__":
    sys.exit(main())
