"""Command-line runner over all experiment harnesses.

.. code-block:: console

   $ stretch-repro --list
   $ stretch-repro fig01 fig02
   $ stretch-repro all --fidelity full
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import json
import sys
import time
from pathlib import Path

from repro.experiments.common import Fidelity

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

#: Experiment id -> module implementing ``run(fidelity)``.
EXPERIMENTS: dict[str, str] = {
    "tables": "repro.experiments.tables",
    "fig01": "repro.experiments.fig01_latency_vs_load",
    "fig02": "repro.experiments.fig02_slack",
    "fig03": "repro.experiments.fig03_colocation_slowdown",
    "fig04": "repro.experiments.fig04_resource_contention",
    "fig05": "repro.experiments.fig05_resource_contention_all",
    "fig06": "repro.experiments.fig06_rob_sensitivity",
    "fig07": "repro.experiments.fig07_mlp",
    "fig09": "repro.experiments.fig09_stretch_modes",
    "fig10": "repro.experiments.fig10_bmode_speedup",
    "fig11": "repro.experiments.fig11_dynamic_sharing",
    "fig12": "repro.experiments.fig12_fetch_throttling",
    "fig13": "repro.experiments.fig13_software_scheduling",
    "fig14": "repro.experiments.fig14_case_studies",
    # Extensions beyond the paper's evaluation (its §IV-D discussion points).
    "ext_two_services": "repro.experiments.ext_two_services",
    "ext_sensitivity": "repro.experiments.ext_sensitivity",
    "ext_adaptive": "repro.experiments.ext_adaptive",
    "ext_energy": "repro.experiments.ext_energy",
    "characterize": "repro.experiments.characterization",
}


def run_experiment(name: str, fidelity: Fidelity):
    """Run one experiment by id and return its result object."""
    try:
        module_name = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    module = importlib.import_module(module_name)
    return module.run(fidelity)


def result_to_jsonable(result) -> object:
    """Convert an experiment result into JSON-serializable data.

    Dataclasses flatten recursively; enums and other exotic values fall back
    to ``str``.  Intended for piping results into external plotting tools.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_jsonable(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, dict):
        return {str(k): result_to_jsonable(v) for k, v in result.items()}
    if isinstance(result, (list, tuple)):
        return [result_to_jsonable(v) for v in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    return str(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stretch-repro",
        description="Regenerate the tables and figures of the Stretch paper "
                    "(HPCA'19) from the simulation substrate.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig09), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--fidelity", choices=("quick", "full"), default="quick",
        help="simulation effort (default: quick)",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write each result as DIR/<experiment>.json",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, module in EXPERIMENTS.items():
            doc = importlib.import_module(module).__doc__ or ""
            first = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{name:8s} {first}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    fidelity = Fidelity.full() if args.fidelity == "full" else Fidelity.quick()
    json_dir = Path(args.json) if args.json else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.time()
        result = run_experiment(name, fidelity)
        elapsed = time.time() - start
        print(f"==== {name} ({elapsed:.1f}s) ====")
        print(result.format())
        print()
        if json_dir:
            payload = {"experiment": name, "fidelity": fidelity.name,
                       "result": result_to_jsonable(result)}
            (json_dir / f"{name}.json").write_text(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
