"""Stretch: Balancing QoS and Throughput for Colocated Server Workloads on SMT Cores.

A from-scratch Python reproduction of Margaritov et al., HPCA 2019
(DOI 10.1109/HPCA.2019.00024).

Package map
-----------
* :mod:`repro.core` — the paper's contribution: Stretch partition schemes,
  control register, software monitor, and the closed-loop colocated server.
* :mod:`repro.cpu` — the dual-thread SMT out-of-order core timing simulator
  (partitionable ROB/LSQ, shared caches/predictors, MSHRs, prefetcher).
* :mod:`repro.workloads` — statistical workload profiles and the synthetic
  µop-trace generator standing in for CloudSuite and SPEC CPU2006.
* :mod:`repro.qos` — the request-level queueing substrate (latency vs load,
  slack analysis, diurnal case studies).
* :mod:`repro.experiments` — one harness per paper figure/table.
* :mod:`repro.fleet` — the vectorized fleet-scale cluster engine.
* :mod:`repro.service` — the live simulation-as-a-service loop (feeds,
  what-if queries, checkpoint/resume, LDJSON control plane).
* :mod:`repro.scenarios` — declarative adversarial fleet scenarios
  (stragglers, generations, migrations, incidents, flash crowds).
* :mod:`repro.tune` — CRN-paired monitor autotuning against scenario
  portfolios.
* :mod:`repro.api` — the stable facade: :func:`~repro.api.simulate`,
  :func:`~repro.api.measure`, :func:`~repro.api.run_day`,
  :func:`~repro.api.run_fleet`, :func:`~repro.api.serve`,
  :func:`~repro.api.tune_policy`.

Quickstart
----------
>>> from repro import measure, run_fleet
>>> perf = measure("web_search", "zeusmp", fidelity="quick")  # doctest: +SKIP
>>> day = run_fleet("web_search", performance=perf)           # doctest: +SKIP
"""

from repro.api import (
    FleetService,
    measure,
    run_day,
    run_fleet,
    serve,
    simulate,
    tune_policy,
)
from repro.core import (
    B_MODES,
    BASELINE,
    DEFAULT_B_MODE,
    DEFAULT_Q_MODE,
    Q_MODES,
    ColocatedServer,
    ColocationPerformance,
    ControlRegister,
    MonitorConfig,
    PartitionScheme,
    StretchCore,
    StretchMode,
    StretchMonitor,
    measure_colocation_performance,
)
from repro.cpu.config import CoreConfig
from repro.cpu.sampling import SamplingConfig, mean_uipc, sample_colocation, sample_solo
from repro.workloads import CLOUDSUITE, SPEC2006, all_profiles, get_profile

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "B_MODES",
    "Q_MODES",
    "DEFAULT_B_MODE",
    "DEFAULT_Q_MODE",
    "PartitionScheme",
    "StretchCore",
    "StretchMode",
    "StretchMonitor",
    "MonitorConfig",
    "ControlRegister",
    "ColocatedServer",
    "ColocationPerformance",
    "measure_colocation_performance",
    "CoreConfig",
    "SamplingConfig",
    "sample_solo",
    "sample_colocation",
    "mean_uipc",
    "CLOUDSUITE",
    "SPEC2006",
    "all_profiles",
    "get_profile",
    "simulate",
    "measure",
    "run_day",
    "run_fleet",
    "serve",
    "tune_policy",
    "FleetService",
    "quick_colocation_demo",
]


def quick_colocation_demo(
    ls: str = "web_search", batch: str = "zeusmp", seed: int = 42
) -> dict[str, float]:
    """Tiny end-to-end demo: measure one pair under Baseline/B/Q modes.

    Returns a summary dict with the batch speedup of B-mode and the
    latency-sensitive performance factors per mode.
    """
    perf = measure(ls, batch, n_samples=2, seed=seed)
    return {
        "ls_solo_uipc": perf.ls_solo_uipc,
        "b_mode_batch_speedup": perf.batch_speedup(StretchMode.B_MODE),
        "baseline_ls_factor": perf.ls_perf_factor(StretchMode.BASELINE),
        "b_mode_ls_factor": perf.ls_perf_factor(StretchMode.B_MODE),
        "q_mode_ls_factor": perf.ls_perf_factor(StretchMode.Q_MODE),
    }
