"""The stable public facade (``repro.api``).

Four verbs cover the reproduction's entry points, with consistent keyword
names (``seed``, ``n_samples``, ``fidelity``, ``sampling``, ``engine``
mean the same thing everywhere):

* :func:`simulate` — mean UIPC of a stand-alone workload or a colocated
  pair on the SMT core timing model;
* :func:`measure` — a pair's full per-mode performance model
  (:class:`~repro.core.colocation.ColocationPerformance`);
* :func:`run_day` — one colocated server's 24-hour closed loop
  (:class:`~repro.core.server.ServerTimeline`);
* :func:`run_fleet` — a fleet/cluster day at any scale
  (:class:`~repro.fleet.engine.FleetTimeline`), choosing among the
  vectorized, exact, sharded and legacy engines;
* :func:`serve` — the same fleet as a *live service*
  (:class:`~repro.service.FleetService`): a load feed advances it window
  by window, with streaming metrics, what-if queries, and bit-identical
  checkpoint/resume;
* :func:`tune_policy` — CRN-paired search over
  :class:`~repro.core.monitor.MonitorConfig` against a weighted
  adversarial-scenario portfolio (:mod:`repro.scenarios` /
  :mod:`repro.tune`).

``run_fleet`` and ``serve`` accept ``scenario=`` — a
:class:`~repro.scenarios.ScenarioSpec`, a preset name from
:data:`repro.scenarios.SCENARIO_NAMES`, or a spec dict — attaching an
adversarial perturbation to the fleet day.

Sampling effort resolves the same way in every verb: pass ``sampling=``
(a full :class:`~repro.cpu.sampling.SamplingConfig`) *or* ``fidelity=``
(a registered tier name — see
:func:`repro.experiments.common.fidelity_names` — or a
:class:`~repro.experiments.common.Fidelity`), optionally overridden by
``seed=`` / ``n_samples=``; with neither, the library defaults apply.
``simulate``/``measure`` accept ``engine="store"`` (memoized through the
content-addressed result store) or ``engine="direct"`` (always re-run in
process); both produce identical values.  At ``fidelity="surrogate"``
the partitioned-ROB queries answer from a store-memoized
:class:`~repro.cpu.surrogate.UipcSurrogate` fit (error bound reported
per fit; anything the fit does not cover falls back to the exact
sampler), and ``tune_policy`` screens candidates with the surrogate
model before confirming the winner at the exact tier.

Superseded entry points (``measure_colocation_performance``,
``ClusterSimulator.run_day``) remain importable as thin deprecation shims
— see the "Stable API & deprecation policy" note in ``docs/API.md``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core.adaptive import AdaptiveStretchPolicy
from repro.core.cluster import ClusterSimulator
from repro.core.colocation import (
    ColocationPerformance,
    _measure_colocation_performance,
)
from repro.core.monitor import MonitorConfig, validate_monitor_config
from repro.core.partitioning import (
    BASELINE,
    DEFAULT_B_MODE,
    DEFAULT_Q_MODE,
    PartitionScheme,
)
from repro.core.server import ColocatedServer, ServerTimeline
from repro.core.stretch import StretchMode
from repro.cpu.config import CoreConfig
from repro.cpu.sampling import SamplingConfig
from repro.engine.job import SimJob
from repro.engine.store import default_store
from repro.experiments.common import Fidelity, pair_uipc_many, solo_uipc
from repro.fleet.engine import FleetConfig, FleetEngine, FleetTimeline
from repro.fleet.policies import resolve_load_curve
from repro.fleet.shard import run_fleet_sharded
from repro.scenarios import as_scenario
from repro.service import FleetService
from repro.tune import (
    PortfolioEntry,
    TuneResult,
    TuneSpace,
    confirm_candidates,
    tune_monitor,
)
from repro.workloads import get_profile
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "simulate",
    "measure",
    "run_day",
    "run_fleet",
    "serve",
    "tune_policy",
    "FleetService",
]


# ----------------------------------------------------------------------
# Shared argument resolution
# ----------------------------------------------------------------------


def _resolve_profile(workload) -> WorkloadProfile:
    if isinstance(workload, WorkloadProfile):
        return workload
    return get_profile(str(workload))


def _registered(profile: WorkloadProfile) -> bool:
    """Is this exact profile reachable through the registry by name?

    The memoized (store) paths address jobs by workload *name*; a custom
    profile object that shadows a registry name must fall back to direct
    execution or the cache would serve the wrong workload.
    """
    try:
        return get_profile(profile.name) == profile
    except KeyError:
        return False


def _resolve_effort(
    sampling: SamplingConfig | None,
    fidelity,
    seed: int | None,
    n_samples: int | None,
) -> tuple[SamplingConfig, Fidelity | None]:
    """Resolve the sampling kwargs into ``(sampling, fidelity-or-None)``.

    ``fidelity`` goes through the tier registry
    (:meth:`~repro.experiments.common.Fidelity.resolve`), so any
    registered name — not a hardcoded list — is accepted and unknown
    names report the live registry contents.  The second element is the
    resolved tier when one was requested (``None`` for plain
    ``sampling=`` calls), letting callers dispatch tier-specific
    behavior such as the surrogate paths.
    """
    if sampling is not None and fidelity is not None:
        raise ValueError("pass either sampling= or fidelity=, not both")
    if fidelity is not None:
        resolved = Fidelity.resolve(
            fidelity,
            42 if seed is None else int(seed),
            seed=None if seed is None else int(seed),
            n_samples=None if n_samples is None else int(n_samples),
        )
        return resolved.sampling, resolved
    base = sampling if sampling is not None else SamplingConfig()
    overrides = {}
    if seed is not None:
        overrides["seed"] = int(seed)
    if n_samples is not None:
        overrides["n_samples"] = int(n_samples)
    return (replace(base, **overrides) if overrides else base), None


def _resolve_sampling(
    sampling: SamplingConfig | None,
    fidelity,
    seed: int | None,
    n_samples: int | None,
) -> SamplingConfig:
    """Compatibility wrapper: :func:`_resolve_effort` without the tier."""
    return _resolve_effort(sampling, fidelity, seed, n_samples)[0]


def _check_surrogate_engine(engine: str) -> None:
    if engine == "direct":
        raise ValueError(
            "fidelity='surrogate' requires engine='store': surrogate fits "
            "memoize through the content-addressed result store"
        )


def _check_surrogate_profiles(*profiles: WorkloadProfile) -> None:
    for profile in profiles:
        if not _registered(profile):
            raise ValueError(
                f"fidelity='surrogate' addresses workloads by registry "
                f"name, but profile {profile.name!r} does not match the "
                f"registered one; use an exact tier for custom profiles"
            )


_MODE_SCHEMES = {
    StretchMode.BASELINE: BASELINE,
    StretchMode.B_MODE: DEFAULT_B_MODE,
    StretchMode.Q_MODE: DEFAULT_Q_MODE,
}
_MODE_NAMES = {
    "baseline": StretchMode.BASELINE,
    "b": StretchMode.B_MODE,
    "b_mode": StretchMode.B_MODE,
    "q": StretchMode.Q_MODE,
    "q_mode": StretchMode.Q_MODE,
}


def _resolve_scheme(mode) -> PartitionScheme:
    if mode is None:
        return BASELINE
    if isinstance(mode, PartitionScheme):
        return mode
    if isinstance(mode, str):
        try:
            mode = _MODE_NAMES[mode.lower()]
        except KeyError:
            raise ValueError(
                f"unknown mode {mode!r}; use baseline/b_mode/q_mode, a "
                "StretchMode, or a PartitionScheme"
            ) from None
    return _MODE_SCHEMES[mode]


def _run_job(job: SimJob, engine: str) -> tuple[float, ...]:
    if engine == "store":
        return default_store().compute(job)
    if engine == "direct":
        return job.run()
    raise ValueError(f"engine must be 'store' or 'direct', got {engine!r}")


# ----------------------------------------------------------------------
# simulate / measure — SMT-core sampling
# ----------------------------------------------------------------------


def simulate(
    workloads,
    *,
    mode=None,
    config: CoreConfig | None = None,
    engine: str = "store",
    sampling: SamplingConfig | None = None,
    fidelity=None,
    seed: int | None = None,
    n_samples: int | None = None,
):
    """Mean UIPC of a stand-alone workload or a colocated pair.

    ``workloads`` is one workload (name or profile) for a stand-alone
    full-core run, or a ``(latency_sensitive, batch)`` pair.  For pairs,
    ``mode`` selects the partitioning (``"baseline"``/``"b_mode"``/
    ``"q_mode"``, a :class:`~repro.core.stretch.StretchMode`, or an
    explicit :class:`~repro.core.partitioning.PartitionScheme`); returns a
    single float for stand-alone runs and ``(ls_uipc, batch_uipc)`` for
    pairs.
    """
    sampling, fid = _resolve_effort(sampling, fidelity, seed, n_samples)
    use_surrogate = fid is not None and fid.is_surrogate
    if use_surrogate:
        _check_surrogate_engine(engine)
    base = config if config is not None else CoreConfig()
    if isinstance(workloads, (str, WorkloadProfile)):
        if mode is not None:
            raise ValueError("mode= applies to colocated pairs only")
        profile = _resolve_profile(workloads)
        solo_config = base.single_thread(base.rob_entries)
        if use_surrogate:
            _check_surrogate_profiles(profile)
            return solo_uipc(profile.name, solo_config, fid)
        if engine == "store" and not _registered(profile):
            engine = "direct"
        job = SimJob.solo(profile.name, solo_config, sampling)
        return _run_job(job, engine)[0]

    ls, batch = workloads
    ls_profile, batch_profile = _resolve_profile(ls), _resolve_profile(batch)
    scheme = _resolve_scheme(mode)
    if use_surrogate:
        _check_surrogate_profiles(ls_profile, batch_profile)
        return pair_uipc_many(
            ls_profile.name, batch_profile.name, (scheme.apply(base),), fid
        )[0]
    if engine == "store" and not (
        _registered(ls_profile) and _registered(batch_profile)
    ):
        engine = "direct"
    job = SimJob.pair(
        ls_profile.name, batch_profile.name, scheme.apply(base), sampling
    )
    values = _run_job(job, engine)
    return values[0], values[1]


def measure(
    ls,
    batch,
    *,
    b_mode: PartitionScheme = DEFAULT_B_MODE,
    q_mode: PartitionScheme | None = DEFAULT_Q_MODE,
    config: CoreConfig | None = None,
    engine: str = "store",
    sampling: SamplingConfig | None = None,
    fidelity=None,
    seed: int | None = None,
    n_samples: int | None = None,
) -> ColocationPerformance:
    """Measure a pair's per-mode performance model.

    The stable replacement for ``measure_colocation_performance`` — same
    semantics and bit-identical values, with the facade's sampling kwargs
    and (by default) memoization through the result store.

    At ``fidelity="surrogate"`` the solo reference and per-mode pair
    grids are answered by the family's fitted
    :class:`~repro.cpu.surrogate.UipcSurrogate` (one fit serves every
    mode), falling back to exact jobs for configurations the fit does
    not cover.
    """
    sampling, fid = _resolve_effort(sampling, fidelity, seed, n_samples)
    use_surrogate = fid is not None and fid.is_surrogate
    if use_surrogate:
        _check_surrogate_engine(engine)
    ls_profile, batch_profile = _resolve_profile(ls), _resolve_profile(batch)
    if use_surrogate:
        _check_surrogate_profiles(ls_profile, batch_profile)
    elif engine == "store" and not (
        _registered(ls_profile) and _registered(batch_profile)
    ):
        engine = "direct"
    if engine == "direct":
        return _measure_colocation_performance(
            ls_profile, batch_profile, config, b_mode, q_mode, sampling
        )
    if engine != "store":
        raise ValueError(f"engine must be 'store' or 'direct', got {engine!r}")

    # Memoized path: the exact job grid of the direct implementation,
    # routed through the content-addressed store (or, at the surrogate
    # tier, through the family's fitted surrogate where it applies).
    from repro.core.colocation import ModePerformance

    base = config if config is not None else CoreConfig()
    effort = fid if use_surrogate else sampling
    solo = solo_uipc(
        ls_profile.name, base.single_thread(base.rob_entries), effort
    )
    schemes: dict[StretchMode, PartitionScheme] = {
        StretchMode.BASELINE: BASELINE,
        StretchMode.B_MODE: b_mode,
    }
    if q_mode is not None:
        schemes[StretchMode.Q_MODE] = q_mode
    pairs = pair_uipc_many(
        ls_profile.name, batch_profile.name,
        [scheme.apply(base) for scheme in schemes.values()], effort,
    )
    per_mode = {}
    for (stretch_mode, __), values in zip(schemes.items(), pairs):
        per_mode[stretch_mode] = ModePerformance(
            ls_uipc=values[0], batch_uipc=values[1]
        )
    if q_mode is None:
        per_mode[StretchMode.Q_MODE] = per_mode[StretchMode.BASELINE]
    return ColocationPerformance(
        ls_workload=ls_profile.name,
        batch_workload=batch_profile.name,
        ls_solo_uipc=solo,
        per_mode=per_mode,
    )


# ----------------------------------------------------------------------
# run_day / run_fleet — closed-loop QoS simulations
# ----------------------------------------------------------------------


def _resolve_corunners(
    ls_profile,
    config: FleetConfig,
    corunners,
    sampling,
    fidelity,
    n_samples,
) -> tuple[ColocationPerformance, ...] | None:
    """Measured co-runner models for a heterogeneous population.

    With a population configured and no pre-measured models supplied, each
    profile is measured against the LS service via :func:`measure` (the
    memoized store path, so repeated fleet runs reuse the grid).
    """
    if not config.population:
        if corunners:
            raise ValueError(
                "corunners were supplied but the fleet config has no population"
            )
        return None
    if corunners is not None:
        return tuple(corunners)
    return tuple(
        measure(
            ls_profile, name,
            sampling=sampling, fidelity=fidelity, n_samples=n_samples,
        )
        for name in config.population
    )


def run_day(
    ls,
    batch=None,
    *,
    performance: ColocationPerformance | None = None,
    load="web_search",
    adaptive: AdaptiveStretchPolicy | None = None,
    monitor: MonitorConfig | None = None,
    window_minutes: float = 5.0,
    requests_per_window: int = 3000,
    n_workers: int = 8,
    q_mode_available: bool = True,
    seed: int = 0,
    metrics=None,
    sampling: SamplingConfig | None = None,
    fidelity=None,
    n_samples: int | None = None,
) -> ServerTimeline:
    """One colocated server's 24-hour closed loop.

    ``load`` is a registered curve name, a ``"flat:<x>"`` spec, or a
    callable ``hour -> fraction``.  Supply a pre-measured ``performance``
    model, or a ``batch`` workload to measure one on the fly (using the
    facade's sampling kwargs).  With ``adaptive=`` the multi-B-mode policy
    loop runs instead of the fixed monitor.  ``seed`` drives the server's
    request streams (not the sampling seed — set that via ``sampling=`` /
    ``fidelity=``).
    """
    ls_profile = _resolve_profile(ls)
    if performance is None:
        if batch is None:
            raise ValueError("pass a performance model or a batch workload")
        performance = measure(
            ls_profile, batch,
            sampling=sampling, fidelity=fidelity, n_samples=n_samples,
        )
    _, load_fn = resolve_load_curve(load)
    server = ColocatedServer(
        ls_profile,
        performance,
        monitor_config=(
            monitor if monitor is not None
            else MonitorConfig()
        ),
        n_workers=n_workers,
        seed=seed,
        q_mode_available=q_mode_available,
        metrics=metrics,
    )
    if adaptive is not None:
        return server.run_day_adaptive(
            load_fn, adaptive,
            window_minutes=window_minutes,
            requests_per_window=requests_per_window,
        )
    return server.run_day(
        load_fn,
        window_minutes=window_minutes,
        requests_per_window=requests_per_window,
    )


def run_fleet(
    ls,
    batch=None,
    *,
    performance: ColocationPerformance | None = None,
    load="web_search",
    engine: str = "vectorized",
    config: FleetConfig | None = None,
    n_servers: int = 1000,
    policy: str = "jittered",
    overprovision: float = 1.2,
    balance_jitter: float = 0.05,
    window_minutes: float = 10.0,
    requests_per_window: int = 2000,
    n_workers: int = 8,
    monitor: MonitorConfig | None = None,
    q_mode_available: bool = True,
    seed: int = 0,
    population: tuple[str, ...] | None = None,
    population_mix: tuple[float, ...] | None = None,
    placement: str = "random",
    placement_epoch: int = 6,
    corunners: tuple[ColocationPerformance, ...] | None = None,
    scenario=None,
    workers: int | None = None,
    surrogate=None,
    store=None,
    metrics=None,
    sampling: SamplingConfig | None = None,
    fidelity=None,
    n_samples: int | None = None,
) -> FleetTimeline:
    """Simulate a 24-hour day across a fleet of colocated servers.

    ``engine`` selects the evaluation strategy:

    * ``"vectorized"`` — the numpy fleet engine with the tail surrogate
      (default; scales to 100k+ servers);
    * ``"exact"`` — the fleet engine driving one DES per server
      (bit-compatible with the legacy cluster under ``policy="jittered"``);
    * ``"sharded"`` — the surrogate engine split into content-addressed
      shard jobs on the ``repro.engine`` process pool (``workers=`` caps
      the shard count; ``load`` must be a named curve);
    * ``"legacy"`` — the per-object :class:`~repro.core.cluster.ClusterSimulator`
      loop, aggregated into the same :class:`~repro.fleet.engine.FleetTimeline`.

    ``seed`` drives the fleet's per-server streams; sampling kwargs only
    affect an on-the-fly ``measure`` when no ``performance`` is given.

    A heterogeneous co-runner ``population`` (tuple of batch workload
    names, apportioned by ``population_mix`` and assigned to servers by
    the ``placement`` policy — see :mod:`repro.fleet.placement`) is
    measured per profile via :func:`measure` unless pre-measured
    ``corunners`` models are supplied.

    ``scenario`` attaches an adversarial perturbation from
    :mod:`repro.scenarios` (spec, preset name, or dict); results stay
    bit-identical across shard counts, and a null scenario is
    bit-identical to no scenario at all.
    """
    ls_profile = _resolve_profile(ls)
    if performance is None:
        if batch is None:
            raise ValueError("pass a performance model or a batch workload")
        performance = measure(
            ls_profile, batch,
            sampling=sampling, fidelity=fidelity, n_samples=n_samples,
        )
    if config is None:
        config = FleetConfig(
            n_servers=n_servers,
            overprovision=overprovision,
            balance_jitter=balance_jitter,
            policy=policy,
            window_minutes=window_minutes,
            requests_per_window=requests_per_window,
            n_workers=n_workers,
            q_mode_available=q_mode_available,
            seed=seed,
            monitor=monitor if monitor is not None else MonitorConfig(),
            population=population or (),
            population_mix=population_mix or (),
            placement=placement,
            placement_epoch=placement_epoch,
        )
    corunners = _resolve_corunners(
        ls_profile, config, corunners, sampling, fidelity, n_samples
    )
    scenario = as_scenario(scenario)
    if engine == "legacy" and config.population:
        raise ValueError(
            "the legacy cluster loop has no placement layer; use the "
            "vectorized/exact/sharded engines for heterogeneous populations"
        )
    if engine == "legacy" and scenario is not None:
        raise ValueError(
            "the legacy cluster loop has no scenario layer; use the "
            "vectorized/exact/sharded engines for adversarial scenarios"
        )

    if engine in ("vectorized", "exact"):
        fleet = FleetEngine(
            ls_profile, performance, config,
            surrogate=surrogate, store=store, metrics=metrics,
            corunners=corunners, scenario=scenario,
        )
        tail = "surrogate" if engine == "vectorized" else "exact"
        return fleet.run_day(load, tail=tail)
    if engine == "sharded":
        timeline = run_fleet_sharded(
            ls_profile, performance, config, load,
            store=store, n_shards=workers, surrogate=surrogate,
            corunners=corunners, scenario=scenario,
        )
        if metrics is not None:
            from repro.obs.fleet import publish_fleet_metrics

            publish_fleet_metrics(metrics, timeline)
        return timeline
    if engine == "legacy":
        _, load_fn = resolve_load_curve(load)
        cluster = ClusterSimulator(
            ls_profile,
            performance,
            n_servers=config.n_servers,
            overprovision=config.overprovision,
            balance_jitter=config.balance_jitter,
            monitor_config=config.monitor,
            q_mode_available=config.q_mode_available,
            seed=config.seed,
        )
        cluster_timeline = cluster._run_day(
            load_fn,
            window_minutes=config.window_minutes,
            requests_per_window=config.requests_per_window,
        )
        timeline = FleetTimeline.from_cluster(
            cluster_timeline, config.window_minutes
        )
        if metrics is not None:
            from repro.obs.fleet import publish_fleet_metrics

            publish_fleet_metrics(metrics, timeline)
        return timeline
    raise ValueError(
        f"engine must be vectorized/exact/sharded/legacy, got {engine!r}"
    )


def serve(
    ls,
    batch=None,
    *,
    performance: ColocationPerformance | None = None,
    feed="web_search",
    tail: str = "surrogate",
    config: FleetConfig | None = None,
    n_servers: int = 1000,
    policy: str = "jittered",
    overprovision: float = 1.2,
    balance_jitter: float = 0.05,
    window_minutes: float = 10.0,
    requests_per_window: int = 2000,
    n_workers: int = 8,
    monitor: MonitorConfig | None = None,
    q_mode_available: bool = True,
    seed: int = 0,
    population: tuple[str, ...] | None = None,
    population_mix: tuple[float, ...] | None = None,
    placement: str = "random",
    placement_epoch: int = 6,
    corunners: tuple[ColocationPerformance, ...] | None = None,
    scenario=None,
    resume: str | None = None,
    max_gap_windows: int = 6,
    chunk_size: int | None = None,
    surrogate=None,
    store=None,
    registry=None,
    sink=None,
    tracer=None,
    slos=None,
    recorder=None,
    postmortem_path: str | None = None,
    sampling: SamplingConfig | None = None,
    fidelity=None,
    n_samples: int | None = None,
) -> FleetService:
    """Stand up a live :class:`~repro.service.FleetService` (not yet run).

    The fleet construction kwargs mirror :func:`run_fleet`; ``feed`` is a
    :class:`~repro.service.LoadFeed`, a registered curve name,
    ``"flat:<x>"``, ``"phases:<spec>"``, ``"replay:<path>"``, or a
    callable ``hour -> fraction``.  Pass ``resume=`` a checkpoint key to
    restore mid-day state bit-identically.  ``slos`` (SLO spec strings,
    :class:`~repro.obs.slo.SLOSpec` objects, or an
    :class:`~repro.obs.slo.SLOEngine`) scores every window against the
    declared objectives; ``recorder`` (``True`` or a
    :class:`~repro.obs.recorder.FlightRecorder`) keeps the violation
    flight-recorder ring, dumped to ``postmortem_path`` on abnormal
    stops.  Drive the returned service with
    :meth:`~repro.service.FleetService.run` (the ``stretch-repro serve``
    loop) or :meth:`~repro.service.FleetService.advance`.

    ``scenario`` (spec, preset name, or dict) attaches an adversarial
    perturbation to the live fleet; it is part of the checkpoint
    identity and can be swapped mid-day via
    :meth:`~repro.service.FleetService.reconfigure`.
    """
    ls_profile = _resolve_profile(ls)
    if performance is None:
        if batch is None:
            raise ValueError("pass a performance model or a batch workload")
        performance = measure(
            ls_profile, batch,
            sampling=sampling, fidelity=fidelity, n_samples=n_samples,
        )
    if config is None:
        config = FleetConfig(
            n_servers=n_servers,
            overprovision=overprovision,
            balance_jitter=balance_jitter,
            policy=policy,
            window_minutes=window_minutes,
            requests_per_window=requests_per_window,
            n_workers=n_workers,
            q_mode_available=q_mode_available,
            seed=seed,
            monitor=monitor if monitor is not None else MonitorConfig(),
            population=population or (),
            population_mix=population_mix or (),
            placement=placement,
            placement_epoch=placement_epoch,
        )
    corunners = _resolve_corunners(
        ls_profile, config, corunners, sampling, fidelity, n_samples
    )
    engine = FleetEngine(
        ls_profile, performance, config,
        surrogate=surrogate, store=store, corunners=corunners,
        scenario=as_scenario(scenario),
    )
    kwargs = dict(
        tail=tail,
        store=store,
        registry=registry,
        sink=sink,
        tracer=tracer,
        max_gap_windows=max_gap_windows,
        chunk_size=chunk_size,
        slos=slos,
        recorder=recorder,
        postmortem_path=postmortem_path,
    )
    if resume is not None:
        return FleetService.resume(resume, engine, feed, **kwargs)
    return FleetService(engine, feed, **kwargs)


def tune_policy(
    ls,
    batch=None,
    *,
    performance: ColocationPerformance | None = None,
    load="web_search",
    config: FleetConfig | None = None,
    n_servers: int = 1000,
    policy: str = "jittered",
    window_minutes: float = 10.0,
    requests_per_window: int = 2000,
    monitor: MonitorConfig | None = None,
    q_mode_available: bool = True,
    seed: int = 0,
    portfolio: tuple[PortfolioEntry, ...] | None = None,
    space: TuneSpace | None = None,
    n_trials: int = 12,
    descent_rounds: int = 2,
    tune_seed: int = 17,
    slo="qos:violation_rate<0.05",
    surrogate=None,
    store=None,
    sampling: SamplingConfig | None = None,
    fidelity=None,
    n_samples: int | None = None,
) -> TuneResult:
    """Tune :class:`MonitorConfig` against an adversarial-scenario portfolio.

    Searches the :class:`~repro.tune.TuneSpace` grid (random trials +
    coordinate descent) with **common random numbers**: every candidate
    runs the same fleet ``seed`` on every portfolio scenario, and every
    fleet day is memoized through the content-addressed result store —
    warm re-runs simulate nothing.  ``config.monitor`` (or ``monitor=``)
    is the incumbent the result's ``default`` row reports; ``slo``
    supplies the violation-rate budget the score penalizes against.
    ``tune_seed`` drives the search's own randomness, decoupled from the
    fleet's CRN ``seed``.

    At ``fidelity="surrogate"`` (with a ``batch`` workload rather than a
    pre-measured ``performance``) the search *screens* candidates with
    the surrogate-measured performance model, then re-scores the winner
    and the incumbent with an exact-tier model at the same sampling
    effort — the returned ``best``/``default`` rows carry exact scores,
    while ``candidates`` keeps the screening ranking.
    """
    ls_profile = _resolve_profile(ls)
    __, fid = _resolve_effort(sampling, fidelity, None, n_samples)
    screening = (
        fid is not None and fid.is_surrogate
        and performance is None and batch is not None
    )
    if performance is None:
        if batch is None:
            raise ValueError("pass a performance model or a batch workload")
        performance = measure(
            ls_profile, batch,
            sampling=sampling, fidelity=fidelity, n_samples=n_samples,
        )
    if config is None:
        config = FleetConfig(
            n_servers=n_servers,
            policy=policy,
            window_minutes=window_minutes,
            requests_per_window=requests_per_window,
            q_mode_available=q_mode_available,
            seed=seed,
            monitor=monitor if monitor is not None else MonitorConfig(),
        )
    elif monitor is not None:
        config = replace(config, monitor=monitor)
    result = tune_monitor(
        ls_profile, performance, config,
        portfolio=portfolio, space=space, load=load,
        n_trials=n_trials, descent_rounds=descent_rounds, seed=tune_seed,
        slo=slo, surrogate=surrogate, store=store,
    )
    if not screening:
        return result

    # Exact-tier confirmation: re-measure the pair exactly (same sampling
    # effort as the surrogate's calibration) and re-score the short list.
    exact_performance = measure(ls_profile, batch, sampling=fid.sampling)
    monitors = [result.best.monitor]
    if result.default.monitor != result.best.monitor:
        monitors.append(result.default.monitor)
    scores, fleet_runs, cached_runs = confirm_candidates(
        ls_profile, exact_performance, config, monitors,
        portfolio=result.portfolio, load=load, slo=result.slo,
        surrogate=surrogate, store=store,
    )
    confirmed = {score.monitor: score for score in scores}
    best = confirmed[result.best.monitor]
    return replace(
        result,
        best=best,
        default=confirmed.get(result.default.monitor, best),
        fleet_runs=result.fleet_runs + fleet_runs,
        cached_runs=result.cached_runs + cached_runs,
    )
