"""Statistics helpers used throughout the experiment harnesses.

The paper reports distributions as violin plots annotated with the median and
interquartile range (Figs. 3 and 9).  :class:`DistributionSummary` captures the
same five-number view plus the mean, and is the canonical result type for any
experiment that aggregates over colocation pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["percentile", "geometric_mean", "DistributionSummary", "summarize"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) of ``samples``.

    Uses linear interpolation, matching how tail-latency targets such as
    "99th percentile below 100 ms" are evaluated in the paper.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample set")
    return float(np.percentile(arr, q))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (standard for speedups)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary plus mean, mirroring the paper's violin annotations."""

    n: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range (the black box in the paper's violins)."""
        return self.p75 - self.p25

    def as_row(self) -> list[float]:
        """Values in a fixed order convenient for tabular output."""
        return [self.mean, self.minimum, self.p25, self.median, self.p75, self.maximum]

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:+.1%} min={self.minimum:+.1%} "
            f"median={self.median:+.1%} max={self.maximum:+.1%}"
        )


def summarize(samples: Sequence[float]) -> DistributionSummary:
    """Summarize a sample distribution (used for every violin in the paper)."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return DistributionSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
    )
