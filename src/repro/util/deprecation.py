"""Deprecation plumbing for pre-``repro.api`` entry points.

The facade (:mod:`repro.api`) is the stable surface; superseded entry
points keep working but route through :func:`warn_deprecated` so callers
get a one-line migration hint.  CI runs the test suite with
``-W error::DeprecationWarning`` filtered to ``repro.*`` modules, so any
*internal* caller of a shim fails the build while external callers only
see the warning.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated"]


def warn_deprecated(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit the standard shim warning: ``<old> is deprecated; use <new>``.

    ``stacklevel=3`` points the warning at the shim's caller (helper →
    shim → caller), which is also what scopes the CI error filter to
    internal callers.
    """
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
