"""Shared utilities: deterministic RNG discipline, statistics, table rendering."""

from repro.util.rng import SeedSequenceFactory, derive_seed
from repro.util.stats import (
    DistributionSummary,
    geometric_mean,
    percentile,
    summarize,
)
from repro.util.tables import format_table

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "DistributionSummary",
    "geometric_mean",
    "percentile",
    "summarize",
    "format_table",
]
