"""Shared utilities: RNG discipline, statistics, tables, progress reporting."""

from repro.util.deprecation import warn_deprecated
from repro.util.progress import ProgressPrinter, format_duration
from repro.util.rng import SeedSequenceFactory, derive_seed
from repro.util.stats import (
    DistributionSummary,
    geometric_mean,
    percentile,
    summarize,
)
from repro.util.tables import format_table

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "DistributionSummary",
    "geometric_mean",
    "percentile",
    "summarize",
    "format_table",
    "ProgressPrinter",
    "format_duration",
    "warn_deprecated",
]
