"""Terminal progress reporting for long-running sweeps.

A :class:`ProgressPrinter` renders ``done/total`` counter lines, updating
in place on a TTY and rate-limiting itself to meaningful changes
elsewhere, so piping ``stretch-repro`` output to a file stays readable.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressPrinter", "format_duration", "format_rate"]


def format_duration(seconds: float) -> str:
    """Render a wall time compactly: ``850ms``, ``12.3s``, ``4m07s``."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:04.1f}s"


def format_rate(count: int, seconds: float) -> str:
    """Render a throughput compactly: ``12.4/s``, ``0.8/s``, ``3.1/min``."""
    if seconds <= 0 or count <= 0:
        return "-/s"
    per_second = count / seconds
    if per_second >= 0.5:
        return f"{per_second:.1f}/s"
    return f"{per_second * 60:.1f}/min"


class ProgressPrinter:
    """Print ``[label] done/total ...`` lines with in-place TTY updates."""

    def __init__(self, label: str, stream=None, min_interval: float = 0.5):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_emit = 0.0
        self._last_text = ""
        self._dirty = False

    @property
    def _tty(self) -> bool:
        try:
            return bool(self.stream.isatty())
        except (AttributeError, ValueError):
            return False

    def update(self, text: str, force: bool = False) -> None:
        """Show ``text`` (rate-limited; identical lines are skipped)."""
        now = time.monotonic()
        if text == self._last_text:
            return
        if not force and now - self._last_emit < self.min_interval:
            self._dirty = True
            return
        line = f"[{self.label}] {text}"
        if self._tty:
            self.stream.write(f"\r\x1b[2K{line}")
        else:
            self.stream.write(f"{line}\n")
        self.stream.flush()
        self._last_emit = now
        self._last_text = text
        self._dirty = False

    def close(self, text: str | None = None) -> None:
        """Emit the final line (always) and terminate the TTY line."""
        if text is not None:
            self.update(text, force=True)
        if self._tty and self._last_text:
            self.stream.write("\n")
            self.stream.flush()
        self._last_text = ""
