"""Plain-text violin rendering.

The paper presents its distribution results (Figs. 3 and 9) as violin plots
annotated with median and interquartile range.  This module renders the same
view in monospace text so experiment harnesses can show the distribution
*shape* — not just summary numbers — in a terminal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.stats import summarize

__all__ = ["render_violin", "render_violin_row"]

_DENSITY_GLYPHS = " .:-=+*#%@"


def render_violin(
    samples: Sequence[float],
    width: int = 41,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render the density of ``samples`` as one line of glyphs.

    The line spans ``[lo, hi]`` (defaults: sample min/max); glyph intensity
    encodes density, ``|`` marks the median.
    """
    if width < 5:
        raise ValueError("width must be at least 5")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot render an empty sample set")
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, width + 1)
    counts, __ = np.histogram(np.clip(arr, lo, hi), bins=edges)
    peak = counts.max() if counts.max() else 1
    glyphs = [
        _DENSITY_GLYPHS[int(round((count / peak) * (len(_DENSITY_GLYPHS) - 1)))]
        for count in counts
    ]
    median = float(np.percentile(arr, 50))
    median_bin = min(int((median - lo) / (hi - lo) * width), width - 1)
    glyphs[median_bin] = "|"
    return "".join(glyphs)


def render_violin_row(
    label: str,
    samples: Sequence[float],
    width: int = 41,
    lo: float | None = None,
    hi: float | None = None,
    value_fmt: str = "+.1%",
) -> str:
    """One labelled violin with min/median/max annotations."""
    summary = summarize(samples)
    violin = render_violin(samples, width=width, lo=lo, hi=hi)
    return (
        f"{label:<22} [{violin}] "
        f"min={format(summary.minimum, value_fmt)} "
        f"med={format(summary.median, value_fmt)} "
        f"max={format(summary.maximum, value_fmt)}"
    )
