"""Plain-text line charts for experiment series (Figs. 1, 2, 6 shapes).

Terminal-rendered multi-series charts: one glyph per series, row-per-level
canvas, labelled y-extremes. Used by experiment ``format()`` methods so the
*shape* of a curve family — crossings, knees, saturation — is visible
without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_chart"]

_SERIES_GLYPHS = "ox+*#@%&"


def render_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str] | None = None,
    height: int = 12,
    y_fmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render ``series`` (name -> y values) as a monospace line chart.

    All series must share the same length; points map to columns, values to
    rows.  Collisions print the later series' glyph.  Returns the chart with
    a legend line; raises on empty or ragged input.
    """
    if not series:
        raise ValueError("no series to render")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series are empty")
    if height < 3:
        raise ValueError("height must be at least 3")
    if len(series) > len(_SERIES_GLYPHS):
        raise ValueError(f"at most {len(_SERIES_GLYPHS)} series supported")

    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1e-9
    col_width = 3
    width = n_points * col_width

    canvas = [[" "] * width for _ in range(height)]
    for (name, values), glyph in zip(series.items(), _SERIES_GLYPHS):
        for i, value in enumerate(values):
            row = height - 1 - int(round((value - lo) / (hi - lo) * (height - 1)))
            canvas[row][i * col_width + 1] = glyph

    top_label = format(hi, y_fmt)
    bottom_label = format(lo, y_fmt)
    margin = max(len(top_label), len(bottom_label)) + 1
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = top_label.rjust(margin - 1)
        elif row_index == height - 1:
            label = bottom_label.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|{''.join(row)}")
    if x_labels is not None:
        if len(x_labels) != n_points:
            raise ValueError("x_labels length must match the series length")
        axis = [" "] * width
        for i, text in enumerate(x_labels):
            start = i * col_width
            for j, ch in enumerate(str(text)[:col_width]):
                axis[start + j] = ch
        lines.append(" " * margin + "".join(axis))
    legend = "  ".join(
        f"{glyph}={name}" for (name, __), glyph in zip(series.items(), _SERIES_GLYPHS)
    )
    lines.append(" " * margin + legend)
    return "\n".join(lines)
