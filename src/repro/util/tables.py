"""Plain-text table rendering for experiment output.

Every benchmark harness prints the rows/series of the corresponding paper
table or figure; this module renders them in aligned, copy-pasteable form.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _cell(value: object, fmt: str) -> str:
    if isinstance(value, float):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Floats are formatted with ``float_fmt``; all other values via ``str``.
    Raises ``ValueError`` if any row width differs from the header width.
    """
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    text_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in text_rows)) if text_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
