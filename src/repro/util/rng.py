"""Deterministic random-number discipline.

Every stochastic component in the reproduction (trace generators, arrival
processes, cache-warming noise) draws from a :class:`numpy.random.Generator`
seeded through this module, so that any experiment is exactly reproducible
from a single root seed.  Child seeds are derived from string labels rather
than positional order, so adding a new component never perturbs the streams
of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "SeedSequenceFactory"]

_SEED_MASK = (1 << 63) - 1


def derive_seed(root_seed: int, *labels: str | int) -> int:
    """Derive a deterministic 63-bit child seed from a root seed and labels.

    The derivation hashes ``root_seed`` together with each label, so two
    distinct label paths always produce statistically independent streams.

    >>> derive_seed(42, "websearch", "trace") == derive_seed(42, "websearch", "trace")
    True
    >>> derive_seed(42, "a") != derive_seed(42, "b")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode())
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode())
    return int.from_bytes(hasher.digest()[:8], "little") & _SEED_MASK


class SeedSequenceFactory:
    """Factory producing named, independent :class:`numpy.random.Generator` objects.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.  All generators handed out by this factory
        are pure functions of ``root_seed`` and the requested label path.
    """

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self.root_seed = int(root_seed)

    def generator(self, *labels: str | int) -> np.random.Generator:
        """Return a generator for the given label path."""
        return np.random.default_rng(derive_seed(self.root_seed, *labels))

    def child(self, *labels: str | int) -> "SeedSequenceFactory":
        """Return a factory rooted at a derived seed (for nested components)."""
        return SeedSequenceFactory(derive_seed(self.root_seed, *labels))

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
