"""Performance-slack analysis (paper §II, Figure 2).

*Slack* is the amount of single-thread performance a latency-sensitive
service can give up while still meeting its tail-latency target at a given
load.  The paper measures it on real hardware by modulating core performance
with Elfen-style fine-grained time multiplexing: a non-contentious co-runner
is interleaved at sub-millisecond granularity, so the service effectively
receives a programmable duty cycle of the core.

We reproduce the same experiment against the queueing substrate:
:class:`DutyCycleModulator` maps a duty cycle to an effective performance
factor (interleaving at sub-millisecond granularity is orders of magnitude
below the latency targets, so the mapping is nearly proportional, minus a
small context-switch overhead), and :func:`required_performance` bisects for
the smallest factor that still meets QoS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qos.queueing import ServiceSimulator
from repro.workloads.profiles import WorkloadProfile

__all__ = ["DutyCycleModulator", "required_performance", "slack_curve"]


@dataclass(frozen=True)
class DutyCycleModulator:
    """Elfen-style fine-grain time multiplexing of a core.

    ``switch_overhead`` is the fraction of each borrowed quantum lost to the
    lender/borrower switch (Elfen reports sub-microsecond switches against
    ~100 µs quanta, hence the small default).
    """

    switch_overhead: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.switch_overhead < 0.5:
            raise ValueError("switch_overhead must be in [0, 0.5)")

    def performance(self, duty_cycle: float) -> float:
        """Effective performance factor for a given duty cycle in (0, 1]."""
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        if duty_cycle >= 1.0:
            return 1.0
        return duty_cycle * (1.0 - self.switch_overhead)

    def duty_for_performance(self, perf_factor: float) -> float:
        """Smallest duty cycle delivering at least ``perf_factor``."""
        if not 0.0 < perf_factor <= 1.0:
            raise ValueError("perf_factor must be in (0, 1]")
        if perf_factor >= 1.0 - self.switch_overhead:
            return 1.0
        return min(1.0, perf_factor / (1.0 - self.switch_overhead))


def required_performance(
    service: ServiceSimulator,
    load_fraction: float,
    n_requests: int = 20000,
    tolerance: float = 0.01,
) -> float:
    """Minimum performance factor meeting QoS at ``load_fraction`` of peak.

    Bisection over the performance factor with common random numbers (the
    same arrival/service draws at every probe), which makes the QoS
    predicate monotone in the factor.  Returns 1.0 if even full performance
    misses the target (possible slightly above peak load).
    """
    if not 0.0 < load_fraction <= 1.2:
        raise ValueError(f"load fraction {load_fraction} out of range")
    peak = service.peak_load(n_requests=n_requests)
    rate = peak * load_fraction

    if not service.meets_qos(service.run(rate, 1.0, n_requests)):
        return 1.0
    lo, hi = 0.01, 1.0
    if service.meets_qos(service.run(rate, lo, n_requests)):
        return lo
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if service.meets_qos(service.run(rate, mid, n_requests)):
            hi = mid
        else:
            lo = mid
    return hi


def slack_curve(
    profile: WorkloadProfile,
    load_fractions: list[float],
    n_workers: int = 8,
    n_requests: int = 20000,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Figure 2 series for one service: (load, required performance) pairs.

    Slack at a load point is ``1 - required performance``.
    """
    if profile.qos is None:
        raise ValueError(f"workload {profile.name!r} has no QoS contract")
    service = ServiceSimulator(profile.qos, n_workers=n_workers, seed=seed)
    return [
        (load, required_performance(service, load, n_requests=n_requests))
        for load in load_fractions
    ]
