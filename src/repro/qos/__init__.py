"""Request-level QoS substrate.

The paper's Figures 1, 2 and 14 are measured on real server hardware driving
real latency-sensitive services.  This package substitutes a discrete-event
queueing model: bursty (MMPP-modulated) request arrivals into a pool of
workers whose service rate scales with the core performance delivered by the
SMT simulator.  That preserves exactly the relationships those figures rest
on — tail latency versus load, slack versus load, and diurnal-load case
studies — without the proprietary measurement setup.
"""

from repro.qos.queueing import (
    LatencyStats,
    MMPPConfig,
    ServiceSimulator,
)
from repro.qos.slack import (
    DutyCycleModulator,
    required_performance,
    slack_curve,
)
from repro.qos.diurnal import (
    DiurnalCaseStudy,
    web_search_cluster_load,
    youtube_cluster_load,
)
from repro.qos.loadgen import (
    clamp,
    compose_max,
    constant,
    flash_crowd,
    sinusoidal,
    step,
)

__all__ = [
    "LatencyStats",
    "MMPPConfig",
    "ServiceSimulator",
    "DutyCycleModulator",
    "required_performance",
    "slack_curve",
    "DiurnalCaseStudy",
    "web_search_cluster_load",
    "youtube_cluster_load",
    "clamp",
    "compose_max",
    "constant",
    "flash_crowd",
    "sinusoidal",
    "step",
]
