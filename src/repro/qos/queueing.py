"""Discrete-event queueing simulator for latency-sensitive services.

Models one server of a load-balanced cluster: requests arrive following a
Markov-modulated Poisson process (bursty, as the paper notes — "queuing can
occur even at low average loads due to bursty request arrival", §II), wait in
a FIFO queue for one of ``n_workers`` service threads, and complete after a
lognormally distributed service time.

Core performance couples in through ``perf_factor``: a request's service time
scales as ``1 / perf_factor``, where the factor is the fraction of full-core
single-thread performance the latency-sensitive thread currently receives
(from SMT colocation, a Stretch mode, or Elfen-style duty-cycling).

Latency is reported at the percentiles of the service's QoS contract
(Table I), reproducing the Figure 1 latency-versus-load curves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.workloads.profiles import QoSSpec

__all__ = ["MMPPConfig", "LatencyStats", "ServiceSimulator"]


@dataclass(frozen=True)
class MMPPConfig:
    """Two-state Markov-modulated Poisson arrival process.

    The process alternates between a calm and a bursty state; rates are
    relative multipliers normalized so the long-run mean equals the requested
    arrival rate.  ``burst_fraction`` is the long-run fraction of time spent
    in the bursty state.
    """

    calm_rate: float = 0.75
    burst_rate: float = 2.5
    burst_fraction: float = 0.15
    mean_dwell_requests: float = 400.0

    def __post_init__(self) -> None:
        if self.calm_rate <= 0 or self.burst_rate <= self.calm_rate:
            raise ValueError("need 0 < calm_rate < burst_rate")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.mean_dwell_requests <= 1:
            raise ValueError("mean_dwell_requests must exceed 1")

    @property
    def mean_multiplier(self) -> float:
        return (
            self.calm_rate * (1.0 - self.burst_fraction)
            + self.burst_rate * self.burst_fraction
        )


@dataclass(frozen=True)
class LatencyStats:
    """Sojourn-time statistics of one queueing run (milliseconds).

    ``mean_queue_depth`` / ``p95_queue_depth`` report the number of requests
    already in the system when each request arrived — the queue-length QoS
    metric the paper mentions as an alternative monitor input (§IV-C, after
    Rubik [11]).
    """

    n_requests: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    mean_queue_depth: float = 0.0
    p95_queue_depth: float = 0.0

    @classmethod
    def from_latencies(
        cls, latencies: np.ndarray, queue_depths: np.ndarray | None = None
    ) -> "LatencyStats":
        if latencies.size == 0:
            raise ValueError("no latencies recorded")
        mean_depth = p95_depth = 0.0
        if queue_depths is not None and queue_depths.size:
            mean_depth = float(queue_depths.mean())
            p95_depth = float(np.percentile(queue_depths, 95))
        return cls(
            n_requests=int(latencies.size),
            mean=float(latencies.mean()),
            p50=float(np.percentile(latencies, 50)),
            p95=float(np.percentile(latencies, 95)),
            p99=float(np.percentile(latencies, 99)),
            max=float(latencies.max()),
            mean_queue_depth=mean_depth,
            p95_queue_depth=p95_depth,
        )

    def percentile(self, q: float) -> float:
        """Latency at a QoS percentile (50, 95 or 99 are precomputed)."""
        if q == 50.0:
            return self.p50
        if q == 95.0:
            return self.p95
        if q == 99.0:
            return self.p99
        raise ValueError(f"percentile {q} not tracked; use 50, 95 or 99")


class ServiceSimulator:
    """One latency-sensitive service instance under synthetic load."""

    def __init__(
        self,
        qos: QoSSpec,
        n_workers: int = 8,
        mmpp: MMPPConfig = MMPPConfig(),
        seed: int = 0,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.qos = qos
        self.n_workers = n_workers
        self.mmpp = mmpp
        self.seed = int(seed)
        self._peak_rate_cache: dict[int, float] = {}

    # ------------------------------------------------------------------

    def _sample_arrivals(self, rate_per_ms: float, n: int, rng: np.random.Generator) -> np.ndarray:
        """Arrival times (ms) of ``n`` requests under the MMPP at mean ``rate_per_ms``."""
        m = self.mmpp
        base = rate_per_ms / m.mean_multiplier
        dwell = m.mean_dwell_requests
        gaps = np.empty(n)
        i = 0
        bursty = rng.random() < m.burst_fraction
        while i < n:
            run = min(n - i, max(1, int(rng.exponential(dwell))))
            state_rate = base * (m.burst_rate if bursty else m.calm_rate)
            gaps[i : i + run] = rng.exponential(1.0 / state_rate, size=run)
            i += run
            # States are redrawn i.i.d. per dwell, so the long-run fraction
            # of bursty dwells equals burst_fraction.
            bursty = rng.random() < m.burst_fraction
        return np.cumsum(gaps)

    def _sample_services(self, perf_factor: float, n: int, rng: np.random.Generator) -> np.ndarray:
        """Service times (ms), lognormal with the QoS contract's mean/CV."""
        mean = self.qos.base_service_ms / perf_factor
        cv = self.qos.service_cv
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - 0.5 * sigma2
        return rng.lognormal(mu, np.sqrt(sigma2), size=n)

    def run(
        self,
        arrival_rate_per_ms: float,
        perf_factor: float = 1.0,
        n_requests: int = 20000,
        seed_offset: int = 0,
    ) -> LatencyStats:
        """Simulate ``n_requests`` and return sojourn-time statistics.

        ``perf_factor`` scales service times (1.0 = full-core performance).
        ``seed_offset`` selects an independent replication; the default keeps
        common random numbers across configurations, making comparisons
        paired (the binary searches in the slack analysis rely on this).
        """
        if arrival_rate_per_ms <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 < perf_factor <= 1.0 + 1e-9:
            raise ValueError("perf_factor must be in (0, 1]")
        rng = np.random.default_rng((self.seed * 1_000_003 + seed_offset) & 0x7FFFFFFF)
        arrivals = self._sample_arrivals(arrival_rate_per_ms, n_requests, rng)
        services = self._sample_services(perf_factor, n_requests, rng)

        workers = [0.0] * self.n_workers
        heapq.heapify(workers)
        in_system: list[float] = []  # completion times of admitted requests
        latencies = np.empty(n_requests)
        depths = np.empty(n_requests)
        for i in range(n_requests):
            arrival = arrivals[i]
            while in_system and in_system[0] <= arrival:
                heapq.heappop(in_system)
            depths[i] = len(in_system)
            free_at = heapq.heappop(workers)
            start = free_at if free_at > arrival else arrival
            done = start + services[i]
            heapq.heappush(workers, done)
            heapq.heappush(in_system, done)
            latencies[i] = done - arrival
        return LatencyStats.from_latencies(latencies, depths)

    # ------------------------------------------------------------------

    def meets_qos(self, stats: LatencyStats) -> bool:
        """Does a run satisfy the service's latency target?"""
        return stats.percentile(self.qos.percentile) <= self.qos.target_ms

    def peak_load(self, n_requests: int = 20000) -> float:
        """Peak sustainable arrival rate (requests/ms) at full performance.

        The largest rate whose tail latency still meets the QoS target —
        the paper's "100% load" reference point, found by bisection.
        """
        cached = self._peak_rate_cache.get(n_requests)
        if cached is not None:
            return cached
        # Upper bound: service capacity; lower bound: near-zero load.
        capacity = self.n_workers / self.qos.base_service_ms
        lo, hi = capacity * 0.02, capacity * 0.999
        if not self.meets_qos(self.run(lo, n_requests=n_requests)):
            raise RuntimeError(
                "QoS target unreachable even at minimal load; check the QoSSpec"
            )
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if self.meets_qos(self.run(mid, n_requests=n_requests)):
                lo = mid
            else:
                hi = mid
        self._peak_rate_cache[n_requests] = lo
        return lo

    def latency_vs_load(
        self,
        load_fractions: list[float],
        perf_factor: float = 1.0,
        n_requests: int = 20000,
    ) -> list[tuple[float, LatencyStats]]:
        """Figure 1: latency statistics across load points (fractions of peak)."""
        peak = self.peak_load(n_requests=n_requests)
        out = []
        for fraction in load_fractions:
            if not 0.0 < fraction <= 1.2:
                raise ValueError(f"load fraction {fraction} out of range")
            out.append(
                (fraction, self.run(peak * fraction, perf_factor, n_requests))
            )
        return out
