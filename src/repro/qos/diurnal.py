"""Diurnal load models and cluster case studies (paper §VI-D, Figure 14).

Two empirical load shapes from the literature the paper cites:

* a **Web Search cluster** (Meisner et al. [9]): pronounced overnight trough,
  long daytime plateau near peak — below 85% of peak for ≈11 hours/day;
* a **YouTube edge cluster** (Gill et al. [28]): requests concentrated
  between 10 am and 7 pm, peaking at 2 pm — below 85% for ≈17 hours/day.

:class:`DiurnalCaseStudy` integrates a measured Stretch B-mode batch gain
over the hours the mode can be engaged (load below the threshold), yielding
the paper's cluster-level daily throughput improvements.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["web_search_cluster_load", "youtube_cluster_load", "DiurnalCaseStudy"]

# Hourly load fractions (of peak); piecewise-linear between points.
_WEB_SEARCH_HOURLY = [
    0.45, 0.38, 0.32, 0.28, 0.25, 0.27, 0.35, 0.50,  # 00-07: overnight trough
    0.68, 0.86, 0.92, 0.97, 1.00, 0.99, 0.97, 0.95,  # 08-15: ramp + plateau
    0.93, 0.92, 0.93, 0.95, 0.93, 0.86, 0.68, 0.55,  # 16-23: plateau + decay
]

_YOUTUBE_HOURLY = [
    0.30, 0.25, 0.22, 0.20, 0.20, 0.22, 0.28, 0.38,  # 00-07: night
    0.55, 0.70, 0.82, 0.88, 0.95, 1.00, 0.98, 0.92,  # 08-15: rise to 2pm peak
    0.88, 0.86, 0.80, 0.70, 0.60, 0.50, 0.42, 0.35,  # 16-23: evening decay
]


def _interpolate(hourly: list[float], hour: float) -> float:
    h = hour % 24.0
    lo = int(h)
    hi = (lo + 1) % 24
    frac = h - lo
    return hourly[lo] * (1.0 - frac) + hourly[hi] * frac


def web_search_cluster_load(hour: float) -> float:
    """Web Search cluster load (fraction of peak) at a time of day."""
    return _interpolate(_WEB_SEARCH_HOURLY, hour)


def youtube_cluster_load(hour: float) -> float:
    """YouTube edge cluster load (fraction of peak) at a time of day."""
    return _interpolate(_YOUTUBE_HOURLY, hour)


@dataclass(frozen=True)
class DiurnalCaseStudy:
    """Integrate a B-mode batch-throughput gain over a diurnal load curve.

    Stretch's coarse policy (§VI-D): engage B-mode whenever the service load
    is below ``threshold`` (slack analysis guarantees QoS there), otherwise
    run the baseline equal partitioning.

    Attributes
    ----------
    name:
        Case-study label.
    bmode_batch_gain:
        Measured batch speedup of the chosen B-mode configuration over
        equal partitioning (e.g. 0.13 for +13%).
    threshold:
        Load fraction below which B-mode is engaged (0.85 in the paper).
    """

    name: str
    bmode_batch_gain: float
    threshold: float = 0.85

    def __post_init__(self) -> None:
        if self.bmode_batch_gain <= -1.0:
            raise ValueError("gain must exceed -100%")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")

    def hours_enabled(self, load_fn, step_minutes: int = 15) -> float:
        """Hours per day with B-mode engaged under ``load_fn``."""
        steps = int(24 * 60 / step_minutes)
        enabled = sum(
            1 for k in range(steps) if load_fn(k * step_minutes / 60.0) < self.threshold
        )
        return enabled * step_minutes / 60.0

    def daily_throughput_gain(self, load_fn, step_minutes: int = 15) -> float:
        """Mean batch-throughput gain over a 24-hour period."""
        return self.bmode_batch_gain * self.hours_enabled(load_fn, step_minutes) / 24.0
