"""Analytic queueing approximations — cross-validation for the simulator.

Closed-form results for the service model underlying
:class:`~repro.qos.queueing.ServiceSimulator`:

* **Erlang C** (M/M/k): exact waiting probability and mean wait for Poisson
  arrivals and exponential service;
* **Allen-Cunneen** (G/G/k): the standard two-moment approximation scaling
  the M/M/k wait by the arrival/service variability
  ``(ca² + cs²) / 2``.

The test suite uses these to validate the discrete-event simulator in the
regimes where the formulas are exact or tight (Poisson arrivals, moderate
utilization); the simulator is then trusted in the bursty-MMPP regime the
formulas do not cover.
"""

from __future__ import annotations

import math

__all__ = [
    "erlang_c",
    "mmk_mean_wait",
    "mmk_mean_sojourn",
    "allen_cunneen_wait",
    "utilization",
]


def utilization(arrival_rate: float, service_time: float, servers: int) -> float:
    """Offered utilization ``rho = lambda * E[S] / k``."""
    if arrival_rate <= 0 or service_time <= 0 or servers <= 0:
        raise ValueError("arrival rate, service time and servers must be positive")
    return arrival_rate * service_time / servers


def erlang_c(arrival_rate: float, service_time: float, servers: int) -> float:
    """Probability an arriving request must queue (M/M/k, exact).

    Requires a stable system (utilization < 1).
    """
    rho = utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        raise ValueError(f"system unstable: utilization {rho:.3f} >= 1")
    a = arrival_rate * service_time  # offered load in Erlangs
    # Sum_{n<k} a^n/n! computed iteratively for numeric stability.
    term = 1.0
    total = 1.0
    for n in range(1, servers):
        term *= a / n
        total += term
    term *= a / servers  # a^k / k!
    tail = term / (1.0 - rho)
    return tail / (total + tail)


def mmk_mean_wait(arrival_rate: float, service_time: float, servers: int) -> float:
    """Mean queueing delay (excluding service) of an M/M/k system."""
    rho = utilization(arrival_rate, service_time, servers)
    pw = erlang_c(arrival_rate, service_time, servers)
    return pw * service_time / (servers * (1.0 - rho))


def mmk_mean_sojourn(arrival_rate: float, service_time: float, servers: int) -> float:
    """Mean sojourn time (wait + service) of an M/M/k system."""
    return mmk_mean_wait(arrival_rate, service_time, servers) + service_time


def allen_cunneen_wait(
    arrival_rate: float,
    service_time: float,
    servers: int,
    ca2: float,
    cs2: float,
) -> float:
    """Allen-Cunneen G/G/k mean-wait approximation.

    ``ca2`` / ``cs2`` are the squared coefficients of variation of the
    inter-arrival and service time distributions (1.0 recovers M/M/k).
    """
    if ca2 < 0 or cs2 < 0:
        raise ValueError("squared coefficients of variation must be non-negative")
    return mmk_mean_wait(arrival_rate, service_time, servers) * (ca2 + cs2) / 2.0


def mm1_p99_sojourn(arrival_rate: float, service_time: float) -> float:
    """99th-percentile sojourn of an M/M/1 (exact: exponential sojourn)."""
    rho = utilization(arrival_rate, service_time, 1)
    if rho >= 1.0:
        raise ValueError("system unstable")
    mean_sojourn = service_time / (1.0 - rho)
    return -mean_sojourn * math.log(0.01)
