"""Parametric load patterns for closed-loop studies.

Beyond the two empirical diurnal shapes of :mod:`repro.qos.diurnal`, these
composable generators cover the situations an operator would test a Stretch
deployment against: steady load, step changes (deploy/failover), flash
crowds (sudden spikes with decay), and sinusoidal day/night swings.  Every
generator returns an ``hour -> load fraction`` callable compatible with
:meth:`~repro.core.server.ColocatedServer.run_day`.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

__all__ = ["constant", "step", "flash_crowd", "sinusoidal", "compose_max",
           "clamp"]

LoadFn = Callable[[float], float]


def clamp(load_fn: LoadFn, lo: float = 0.0, hi: float = 1.0) -> LoadFn:
    """Clamp a load function into ``[lo, hi]``."""
    if lo > hi:
        raise ValueError("lo must not exceed hi")

    def clamped(hour: float) -> float:
        return min(max(load_fn(hour), lo), hi)

    return clamped


def constant(level: float) -> LoadFn:
    """Steady load at ``level`` of peak."""
    if not 0.0 <= level <= 1.2:
        raise ValueError("level out of range")
    return lambda hour: level


def step(before: float, after: float, at_hour: float) -> LoadFn:
    """A step change at ``at_hour`` (deployment shift, failover inheritance)."""
    if not 0.0 <= at_hour < 24.0:
        raise ValueError("at_hour must be within the day")

    def load(hour: float) -> float:
        return after if (hour % 24.0) >= at_hour else before

    return load


def flash_crowd(
    base: float,
    peak: float,
    at_hour: float,
    decay_hours: float = 1.5,
) -> LoadFn:
    """A sudden spike at ``at_hour`` decaying exponentially back to ``base``.

    The canonical QoS stress case: load jumps instantly (news event, retry
    storm) and drains with time constant ``decay_hours``.
    """
    if peak < base:
        raise ValueError("peak must be at least base")
    if decay_hours <= 0:
        raise ValueError("decay_hours must be positive")

    def load(hour: float) -> float:
        h = hour % 24.0
        if h < at_hour:
            return base
        return base + (peak - base) * math.exp(-(h - at_hour) / decay_hours)

    return load


def sinusoidal(mean: float, amplitude: float, peak_hour: float = 14.0) -> LoadFn:
    """Smooth day/night swing peaking at ``peak_hour``."""
    if amplitude < 0 or mean - amplitude < 0:
        raise ValueError("mean/amplitude must keep load non-negative")

    def load(hour: float) -> float:
        phase = 2.0 * math.pi * ((hour - peak_hour) % 24.0) / 24.0
        return mean + amplitude * math.cos(phase)

    return load


def compose_max(load_fns: Sequence[LoadFn]) -> LoadFn:
    """Pointwise maximum of several patterns (e.g. diurnal + flash crowd)."""
    fns = list(load_fns)
    if not fns:
        raise ValueError("compose_max needs at least one load function")
    return lambda hour: max(fn(hour) for fn in fns)
