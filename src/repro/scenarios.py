"""Adversarial fleet scenarios: declarative perturbations of a fleet day.

The fleet engine simulates a *well-behaved* cluster: every server is the
same hardware, the diurnal curve is the only traffic signal, and nothing
breaks mid-day.  Real fleets are messier, and a monitor configuration
tuned on calm traffic can fall over exactly when it matters.  This
module declares the messiness as data: a :class:`ScenarioSpec` bundles
up to five perturbation components —

* :class:`Stragglers` — a random subset of servers runs slow all day
  (per-server tail-latency scaling, the "5% bad NICs" axis);
* :class:`Generations` — heterogeneous server generations: each server
  draws a generation with a per-generation tail scale factor;
* :class:`Migration` — a mid-day workload/population migration: a subset
  of servers drains most of its traffic onto the rest of the fleet;
* :class:`Incident` — a partial-fleet incident: a fraction of servers
  loses capacity for a bounded span (served load is inflated on the
  affected servers while it lasts);
* :class:`FlashCrowd` — a cluster-wide load spike over a bounded span.

A spec compiles into a :class:`ScenarioSampler`, which the
:class:`~repro.fleet.engine.FleetStepper` consults each window.  Every
perturbation vector is a **pure function of ``(seed, window)``** drawn
for the *whole* fleet and sliced per shard — the same stateless-RNG
discipline as the balancing and placement policies — so shard count,
chunk size and checkpoint/resume never change outcomes.  Servers a
component does not touch receive a multiplier of exactly ``1.0``
(bit-preserving), and a *null* scenario (no components, or all at zero
magnitude) is skipped entirely: results are bit-identical to an
unperturbed run.  Both guarantees are test-gated
(``tests/test_scenarios.py``).

Specs are frozen, hashable and ``repr``-stable, so they ride in
content-addressed :class:`~repro.fleet.shard.FleetShardJob` payloads
(the CRN-paired evaluation cache behind :mod:`repro.tune`) and in
service checkpoint identities.  :data:`SCENARIO_NAMES` lists the named
presets of the adversarial suite; :func:`as_scenario` resolves the
public entry points' ``scenario=`` argument (spec, preset name, dict,
or ``None``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Mapping

import numpy as np

from repro.util.rng import derive_seed

__all__ = [
    "SCENARIO_NAMES",
    "FlashCrowd",
    "Generations",
    "Incident",
    "Migration",
    "ScenarioSampler",
    "ScenarioSpec",
    "Stragglers",
    "as_scenario",
    "get_scenario",
    "scenario_from_dict",
]


@dataclass(frozen=True)
class Stragglers:
    """Chronically slow servers (bad NIC, failing disk, noisy neighbor).

    Attributes
    ----------
    fraction:
        Fraction of the fleet affected, in ``[0, 1]``; each server is
        drawn independently from the scenario's seed.
    slowdown:
        Tail-latency multiplier applied to affected servers all day
        (``>= 1``; ``1.0`` disables the component).
    """

    fraction: float = 0.05
    slowdown: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("straggler fraction must be in [0, 1]")
        if self.slowdown < 1.0:
            raise ValueError("straggler slowdown must be >= 1")

    @property
    def is_null(self) -> bool:
        return self.fraction == 0.0 or self.slowdown == 1.0


@dataclass(frozen=True)
class Generations:
    """Heterogeneous server generations with per-generation tail scaling.

    Attributes
    ----------
    factors:
        Tail-latency scale per generation (``1.0`` = the reference
        generation; older generations are ``> 1``).
    mix:
        Fractional share per generation (same length as ``factors``;
        empty = uniform shares).
    """

    factors: tuple[float, ...] = (1.0, 1.15, 1.3)
    mix: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "factors",
                           tuple(float(f) for f in self.factors))
        object.__setattr__(self, "mix", tuple(float(m) for m in self.mix))
        if not self.factors:
            raise ValueError("generations need at least one factor")
        if min(self.factors) <= 0.0:
            raise ValueError("generation factors must be positive")
        if self.mix:
            if len(self.mix) != len(self.factors):
                raise ValueError("mix length must match factors")
            if min(self.mix) <= 0.0:
                raise ValueError("mix shares must be positive")

    @property
    def is_null(self) -> bool:
        return all(f == 1.0 for f in self.factors)

    @property
    def shares(self) -> tuple[float, ...]:
        n = len(self.factors)
        if not self.mix:
            return (1.0 / n,) * n
        total = sum(self.mix)
        return tuple(m / total for m in self.mix)


@dataclass(frozen=True)
class Migration:
    """Mid-day workload migration: a server subset drains onto the rest.

    From ``start_hour`` on, each affected server keeps only ``retain``
    of its balanced load; the drained remainder is redistributed over
    the unaffected servers (count-weighted, conserving the fleet's
    total balanced load).

    Attributes
    ----------
    start_hour:
        Hour of day the migration begins (it never reverts).
    fraction:
        Fraction of the fleet that drains, in ``[0, 1)``.
    retain:
        Load share a drained server keeps, in ``[0, 1]``
        (``1.0`` disables the component).
    """

    start_hour: float = 12.0
    fraction: float = 0.3
    retain: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_hour < 24.0:
            raise ValueError("start_hour must be in [0, 24)")
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError("migration fraction must be in [0, 1)")
        if not 0.0 <= self.retain <= 1.0:
            raise ValueError("retain must be in [0, 1]")

    @property
    def is_null(self) -> bool:
        return self.fraction == 0.0 or self.retain == 1.0


@dataclass(frozen=True)
class Incident:
    """Partial-fleet incident: some servers lose capacity for a span.

    While active, each affected server's load is inflated by
    ``1 / (1 - capacity_loss)`` — the queueing-level effect of serving
    the same traffic with fewer effective workers.

    Attributes
    ----------
    start_hour:
        Hour of day the incident begins.
    duration_hours:
        Incident length in hours (must be positive).
    fraction:
        Fraction of the fleet affected, in ``[0, 1]``.
    capacity_loss:
        Fraction of capacity lost on affected servers, in ``[0, 1)``
        (``0.0`` disables the component).
    """

    start_hour: float = 10.0
    duration_hours: float = 3.0
    fraction: float = 0.25
    capacity_loss: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_hour < 24.0:
            raise ValueError("start_hour must be in [0, 24)")
        if self.duration_hours <= 0.0:
            raise ValueError("duration_hours must be positive")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("incident fraction must be in [0, 1]")
        if not 0.0 <= self.capacity_loss < 1.0:
            raise ValueError("capacity_loss must be in [0, 1)")

    @property
    def is_null(self) -> bool:
        return self.fraction == 0.0 or self.capacity_loss == 0.0


@dataclass(frozen=True)
class FlashCrowd:
    """Cluster-wide load spike over a bounded span.

    Attributes
    ----------
    start_hour:
        Hour of day the spike begins.
    duration_hours:
        Spike length in hours (must be positive).
    magnitude:
        Cluster-load multiplier while active (``> 0``; ``1.0``
        disables the component).
    """

    start_hour: float = 18.0
    duration_hours: float = 2.0
    magnitude: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_hour < 24.0:
            raise ValueError("start_hour must be in [0, 24)")
        if self.duration_hours <= 0.0:
            raise ValueError("duration_hours must be positive")
        if self.magnitude <= 0.0:
            raise ValueError("magnitude must be positive")

    @property
    def is_null(self) -> bool:
        return self.magnitude == 1.0


#: Component field name -> component class (spec (de)serialization).
_COMPONENTS = {
    "stragglers": Stragglers,
    "generations": Generations,
    "migration": Migration,
    "incident": Incident,
    "flash_crowd": FlashCrowd,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative adversarial scenario: up to five perturbations.

    Attributes
    ----------
    name:
        Scenario label (metrics, experiment rows, checkpoint identity).
    stragglers:
        Chronically slow servers, or ``None``.
    generations:
        Heterogeneous server generations, or ``None``.
    migration:
        Mid-day workload migration, or ``None``.
    incident:
        Partial-fleet capacity incident, or ``None``.
    flash_crowd:
        Cluster-wide load spike, or ``None``.
    salt:
        Extra seed label mixed into every scenario draw, decorrelating
        repeated runs of the same scenario shape.
    """

    name: str = "scenario"
    stragglers: Stragglers | None = None
    generations: Generations | None = None
    migration: Migration | None = None
    incident: Incident | None = None
    flash_crowd: FlashCrowd | None = None
    salt: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        for field_name, cls in _COMPONENTS.items():
            value = getattr(self, field_name)
            if value is not None and not isinstance(value, cls):
                raise TypeError(
                    f"{field_name} must be a {cls.__name__} or None, "
                    f"got {value!r}"
                )

    @property
    def components(self) -> tuple[str, ...]:
        """Names of the non-null components this scenario carries."""
        return tuple(
            field_name for field_name in _COMPONENTS
            if getattr(self, field_name) is not None
            and not getattr(self, field_name).is_null
        )

    @property
    def is_null(self) -> bool:
        """True when the scenario perturbs nothing (bit-identical no-op)."""
        return not self.components

    def to_dict(self) -> dict:
        """JSON-ready form (the control plane's ``scenario`` payloads)."""
        out: dict = {"name": self.name, "salt": self.salt}
        for field_name in _COMPONENTS:
            value = getattr(self, field_name)
            if value is not None:
                out[field_name] = asdict(value)
        return out


def scenario_from_dict(payload: Mapping) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from its :meth:`~ScenarioSpec.to_dict`
    form, strictly (unknown keys raise)."""
    known = {f.name for f in fields(ScenarioSpec)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(
            f"unknown scenario fields {unknown}; known: {sorted(known)}"
        )
    kwargs: dict = {}
    for key, value in payload.items():
        if key in _COMPONENTS and value is not None and not isinstance(
            value, _COMPONENTS[key]
        ):
            component_cls = _COMPONENTS[key]
            component_fields = {f.name for f in fields(component_cls)}
            bad = sorted(set(value) - component_fields)
            if bad:
                raise ValueError(
                    f"unknown {key} fields {bad}; "
                    f"known: {sorted(component_fields)}"
                )
            value = component_cls(**{
                k: tuple(v) if isinstance(v, list) else v
                for k, v in value.items()
            })
        kwargs[key] = value
    return ScenarioSpec(**kwargs)


#: The named adversarial suite: one preset per perturbation family plus
#: the calm anchor and a combined stress day.
_SUITE: dict[str, ScenarioSpec] = {
    "calm": ScenarioSpec(name="calm"),
    "stragglers": ScenarioSpec(name="stragglers", stragglers=Stragglers()),
    "mixed_generations": ScenarioSpec(
        name="mixed_generations",
        generations=Generations(factors=(1.0, 1.15, 1.3), mix=(0.5, 0.3, 0.2)),
    ),
    "migration": ScenarioSpec(name="migration", migration=Migration()),
    "incident": ScenarioSpec(name="incident", incident=Incident()),
    "flash_crowd": ScenarioSpec(name="flash_crowd", flash_crowd=FlashCrowd()),
    "black_friday": ScenarioSpec(
        name="black_friday",
        stragglers=Stragglers(fraction=0.03, slowdown=1.5),
        incident=Incident(start_hour=12.0, duration_hours=2.0,
                          fraction=0.15, capacity_loss=0.3),
        flash_crowd=FlashCrowd(start_hour=9.0, duration_hours=6.0,
                               magnitude=1.4),
    ),
}

SCENARIO_NAMES: tuple[str, ...] = tuple(_SUITE)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a named scenario preset from the adversarial suite."""
    try:
        return _SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}"
        ) from None


def as_scenario(spec) -> ScenarioSpec | None:
    """Resolve a public ``scenario=`` argument.

    Accepts ``None`` (no scenario), a :class:`ScenarioSpec`, a preset
    name from :data:`SCENARIO_NAMES`, or a dict in
    :meth:`ScenarioSpec.to_dict` form.
    """
    if spec is None or isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, str):
        return get_scenario(spec)
    if isinstance(spec, Mapping):
        return scenario_from_dict(spec)
    raise TypeError(
        f"scenario must be a ScenarioSpec, preset name, dict or None; "
        f"got {spec!r}"
    )


class ScenarioSampler:
    """A :class:`ScenarioSpec` compiled against one fleet's shape.

    All vectors are drawn once for the **full fleet** from
    ``derive_seed(seed, "scenario-<component>", salt)`` label paths —
    no carried RNG state — and callers slice ``[lo:hi]`` per shard, so
    perturbation streams are shard-slice- and resume-invariant by
    construction.  Per-window activation is a pure function of the
    window's hour.  Servers outside a component's mask carry a
    multiplier of exactly ``1.0``; their trajectories are
    bit-identical to an unperturbed run.
    """

    def __init__(self, spec: ScenarioSpec, *, n_servers: int, seed: int):
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        self.spec = spec
        self.n_servers = int(n_servers)
        self.seed = int(seed)
        n = self.n_servers

        # Static per-server tail multiplier: stragglers × generations.
        tail = None
        stragglers = spec.stragglers
        if stragglers is not None and not stragglers.is_null:
            mask = self._mask("stragglers", stragglers.fraction)
            tail = np.where(mask, stragglers.slowdown, 1.0)
        generations = spec.generations
        if generations is not None and not generations.is_null:
            u = self._rng("generations").random(n)
            cuts = np.cumsum(generations.shares)
            gen = np.minimum(
                np.searchsorted(cuts, u, side="right"),
                len(generations.factors) - 1,
            )
            gen_tail = np.asarray(generations.factors)[gen]
            tail = gen_tail if tail is None else tail * gen_tail
        self._tail = tail

        # Static per-server load-factor vectors; activation is windowed.
        migration = spec.migration
        if migration is not None and not migration.is_null:
            mask = self._mask("migration", migration.fraction)
            moved = int(mask.sum())
            stayers = n - moved
            # Count-weighted conservation: the drained share lands
            # evenly on the remaining servers (none -> drop the load).
            spill = (
                1.0 + moved * (1.0 - migration.retain) / stayers
                if stayers > 0 else 1.0
            )
            self._migration_vec = np.where(mask, migration.retain, spill)
        else:
            self._migration_vec = None
        incident = spec.incident
        if incident is not None and not incident.is_null:
            mask = self._mask("incident", incident.fraction)
            self._incident_vec = np.where(
                mask, 1.0 / (1.0 - incident.capacity_loss), 1.0
            )
        else:
            self._incident_vec = None

        # Combined load-factor vectors, memoized per activation signature
        # (which components are live this window).  The underlying
        # vectors are static for the day, so each of the <=8 signatures
        # is combined exactly once — steady-state windows allocate
        # nothing here.
        self._lf_cache: dict[tuple[bool, bool, bool], np.ndarray | None] = {}

    def _rng(self, label: str) -> np.random.Generator:
        return np.random.default_rng(
            derive_seed(self.seed, f"scenario-{label}", self.spec.salt)
        )

    def _mask(self, label: str, fraction: float) -> np.ndarray:
        return self._rng(label).random(self.n_servers) < fraction

    # -- per-window perturbations ----------------------------------------

    @staticmethod
    def _in_span(hour: float, start: float, duration: float) -> bool:
        return start <= hour < start + duration

    def tail_factors(self) -> np.ndarray | None:
        """Static full-fleet tail-latency multiplier (``None`` = none)."""
        return self._tail

    def active_components(self, hour: float) -> tuple[str, ...]:
        """Component names perturbing the fleet at ``hour``."""
        spec = self.spec
        active = []
        if self._tail is not None:
            if spec.stragglers is not None and not spec.stragglers.is_null:
                active.append("stragglers")
            if spec.generations is not None and not spec.generations.is_null:
                active.append("generations")
        if self._migration_vec is not None and hour >= spec.migration.start_hour:
            active.append("migration")
        if self._incident_vec is not None and self._in_span(
            hour, spec.incident.start_hour, spec.incident.duration_hours
        ):
            active.append("incident")
        flash = spec.flash_crowd
        if flash is not None and not flash.is_null and self._in_span(
            hour, flash.start_hour, flash.duration_hours
        ):
            active.append("flash_crowd")
        return tuple(active)

    def load_factors(self, window: int, hour: float) -> np.ndarray | None:
        """Full-fleet per-server load multiplier for this window.

        ``None`` when no load-perturbing component is active — the
        caller skips the multiply entirely, keeping inactive windows
        bit-identical to an unperturbed run.  Windows sharing an
        activation signature share one cached combined vector (the
        caller must not mutate it).
        """
        spec = self.spec
        migrating = self._migration_vec is not None and (
            hour >= spec.migration.start_hour
        )
        incident = self._incident_vec is not None and self._in_span(
            hour, spec.incident.start_hour, spec.incident.duration_hours
        )
        flash = spec.flash_crowd
        flashing = flash is not None and not flash.is_null and self._in_span(
            hour, flash.start_hour, flash.duration_hours
        )
        signature = (migrating, incident, flashing)
        if signature in self._lf_cache:
            return self._lf_cache[signature]
        factors = None
        if migrating:
            factors = self._migration_vec
        if incident:
            factors = (
                self._incident_vec if factors is None
                else factors * self._incident_vec
            )
        if flashing:
            scale = np.full(self.n_servers, flash.magnitude)
            factors = scale if factors is None else factors * flash.magnitude
        self._lf_cache[signature] = factors
        return factors

    def window_summary(
        self,
        hour: float,
        load_factors_slice: np.ndarray | None,
        tail_factors_slice: np.ndarray | None,
    ) -> dict:
        """The window record's ``scenario`` section for one fleet slice.

        ``load_factors_slice``/``tail_factors_slice`` are the already
        sliced per-server multipliers the stepper applied this window
        (``None`` = not active).  A pure read: computing the summary
        never perturbs the simulation.
        """
        affected = None
        mean_factor = 1.0
        if load_factors_slice is not None:
            mean_factor = float(load_factors_slice.mean())
            affected = load_factors_slice != 1.0
        if tail_factors_slice is not None:
            slow = tail_factors_slice != 1.0
            affected = slow if affected is None else (affected | slow)
        return {
            "name": self.spec.name,
            "active": list(self.active_components(hour)),
            "load_factor": mean_factor,
            "affected": 0 if affected is None else int(affected.sum()),
        }
