"""Synthetic µop-trace generator.

Turns a :class:`~repro.workloads.profiles.WorkloadProfile` into a concrete
:class:`~repro.cpu.trace.Trace`.  The generator synthesizes:

* a **control-flow skeleton**: a stream of basic blocks drawn Zipf-style from
  a static code footprint, each ending in a branch whose direction follows a
  fixed per-branch bias (so real table-based predictors achieve roughly the
  profile's ``branch_predictability``) and whose dynamic target is the next
  block (so the BTB sees realistic target churn on large code footprints);
* a **data reference stream** mixing hot-region reuse (cache-resident),
  independent cold misses (the MLP carriers), pointer-chase loads (a single
  serialized chain, the low-MLP server signature), and strided streams
  (prefetchable, lbm-style);
* a **register dataflow** with short- and far-range dependency distances.

Everything is derived deterministically from ``(profile, seed)`` via NumPy
vector operations, so trace generation is cheap relative to simulation.

Address-space layout (per trace; the simulator tags addresses per thread):
code occupies ``[CODE_BASE, ...)``, the hot data region ``[DATA_BASE, ...)``,
the cold region above it, and streaming regions above that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.isa import OpClass
from repro.cpu.trace import Trace
from repro.workloads.profiles import WorkloadProfile

__all__ = ["TraceGenerator", "generate_trace", "MemoryMap", "CODE_BASE", "DATA_BASE"]

CODE_BASE = 0x0010_0000
DATA_BASE = 0x1_0000_0000

#: Dependencies farther than this must already have committed (the simulated
#: ROB holds at most 192 µops), so longer distances carry no timing
#: information and are clipped.
MAX_DEP_DISTANCE = 256

_MIN_BLOCK_LEN = 3
_MAX_BLOCK_LEN = 24


def _clipped_geometric_mean_param(target_mean: float) -> float:
    """Geometric 'mean' parameter whose clipped realization hits ``target_mean``.

    Block lengths are drawn as ``clip(geometric(1/(m-2)) + 2, 3, 24)``; the
    upper clip drags the realized mean below ``m`` for long-block profiles.
    Fixed-point iteration on the analytic clipped expectation compensates.
    """
    def clipped_mean(m: float) -> float:
        p = 1.0 / max(m - 2.0, 1.0)
        ks = np.arange(1, 400)
        pmf = p * (1.0 - p) ** (ks - 1)
        values = np.clip(ks + 2, _MIN_BLOCK_LEN, _MAX_BLOCK_LEN)
        return float((pmf * values).sum() + (1.0 - pmf.sum()) * _MAX_BLOCK_LEN)

    guess = target_mean
    for __ in range(30):
        realized = clipped_mean(guess)
        error = target_mean - realized
        if abs(error) < 1e-3:
            break
        guess = min(max(guess + error, 2.5), 60.0)
    return guess


@dataclass(frozen=True)
class MemoryMap:
    """Byte-address layout of a workload's synthetic data regions.

    Used by the sampling harness to perform statistical checkpoint warming
    (installing steady-state-resident lines into the LLC before a sample).
    """

    hot_start: int
    hot_end: int
    cold_start: int
    cold_end: int
    stream_start: int

    def region_of(self, addr: int) -> str:
        """Classify a data address: 'hot', 'cold' or 'stream'."""
        if self.hot_start <= addr < self.hot_end:
            return "hot"
        if self.cold_start <= addr < self.cold_end:
            return "cold"
        return "stream"


class TraceGenerator:
    """Generates reproducible synthetic traces for one workload profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0):
        self.profile = profile
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._build_static_code()
        hot_bytes = profile.hot_region_kb * 1024
        cold_bytes = max(profile.data_footprint_kb * 1024 - hot_bytes, 64)
        self.memory_map = MemoryMap(
            hot_start=DATA_BASE,
            hot_end=DATA_BASE + hot_bytes,
            cold_start=DATA_BASE + hot_bytes,
            cold_end=DATA_BASE + hot_bytes + cold_bytes,
            stream_start=DATA_BASE + hot_bytes + cold_bytes,
        )

    # ------------------------------------------------------------------
    # Static program structure (fixed per workload instance)
    # ------------------------------------------------------------------

    #: Code-region granularity for the two-level CFG (16 KB of code).
    _REGION_BYTES = 16 * 1024
    #: Probability that a taken edge stays within its code region.
    _LOCAL_JUMP_PROB = 0.98

    def _build_static_code(self) -> None:
        """Lay out the static control-flow graph.

        Blocks are packed contiguously in the code region and grouped into
        16 KB *regions* (functions / software phases).  Each block ends in a
        branch with a *fixed* taken-target and sequential fallthrough, so a
        BTB can learn targets and direction predictability is controlled
        purely by the per-branch bias.  Taken edges are region-local with
        high probability; occasional global edges pick a region Zipf-weighted
        by ``code_zipf`` — a high exponent (SPEC loop nests) concentrates
        execution on hot regions that fit the L1-I and BTB, while a low
        exponent (deep server stacks) spreads it across the footprint,
        producing the L1-I/BTB pressure characteristic of server workloads.
        """
        p = self.profile
        rng = self._rng
        footprint_bytes = p.instr_footprint_kb * 1024
        mean_block_bytes = p.block_len_mean * 4.0
        self.n_blocks = max(8, int(footprint_bytes / mean_block_bytes))
        # Static block lengths: geometric around the mean, clipped.  The clip
        # to [3, 24] shortens the realized mean for long-block profiles, so
        # the geometric parameter is adjusted until the clipped expectation
        # matches the profile's block_len_mean.
        adjusted = _clipped_geometric_mean_param(p.block_len_mean)
        raw = rng.geometric(1.0 / max(adjusted - 2.0, 1.0), self.n_blocks)
        self.block_len = np.clip(raw + 2, _MIN_BLOCK_LEN, _MAX_BLOCK_LEN).astype(np.int64)

        region_blocks = max(8, int(self._REGION_BYTES / mean_block_bytes))
        n_regions = (self.n_blocks + region_blocks - 1) // region_blocks

        # Pack blocks contiguously in the code region.
        ends = np.cumsum(self.block_len * 4)
        self.block_base = CODE_BASE + np.concatenate(([0], ends[:-1]))
        region_of = np.arange(self.n_blocks) // region_blocks
        region_start = region_of * region_blocks
        region_size = np.minimum(region_start + region_blocks, self.n_blocks) - region_start

        def zipf_probs(n: int, s: float) -> np.ndarray:
            w = np.arange(1, n + 1, dtype=np.float64) ** -s
            return w / w.sum()

        # Local edges: Zipf-lite within the region (hot entry blocks).  The
        # exponent trades front-end pressure against per-window variance in
        # the realized branch rate (hot loops trap the walk); 0.6 matches
        # the calibrated front-end behavior of DESIGN.md.
        local_offset = rng.choice(
            region_blocks, size=self.n_blocks, p=zipf_probs(region_blocks, 0.6)
        )
        local_target = region_start + local_offset % region_size

        # Global edges: pick a region by popularity, then a block within it.
        target_region = rng.choice(n_regions, size=self.n_blocks,
                                   p=zipf_probs(n_regions, p.code_zipf))
        g_start = target_region * region_blocks
        g_size = np.minimum(g_start + region_blocks, self.n_blocks) - g_start
        global_target = g_start + rng.choice(
            region_blocks, size=self.n_blocks, p=zipf_probs(region_blocks, 0.6)
        ) % g_size

        is_local = rng.random(self.n_blocks) < self._LOCAL_JUMP_PROB
        self.succ_taken = np.where(is_local, local_target, global_target)

        # Per-branch direction bias: taken with probability P or 1-P, so a
        # bimodal/gshare predictor converges to ~P accuracy.
        signs = rng.random(self.n_blocks) < 0.5
        self.branch_taken_prob = np.where(
            signs, p.branch_predictability, 1.0 - p.branch_predictability
        )

    # ------------------------------------------------------------------
    # Trace synthesis
    # ------------------------------------------------------------------

    def generate(self, length: int) -> Trace:
        """Generate a trace of exactly ``length`` µops."""
        if length <= 0:
            raise ValueError(f"trace length must be positive, got {length}")
        rng = self._rng
        p = self.profile

        blocks, taken_seq, starts, total = self._walk_cfg(length, rng)
        seq_len = self.block_len[blocks]

        # Expand block sequence to per-µop arrays.
        offset = np.arange(total, dtype=np.int64) - np.repeat(starts, seq_len)
        pc = self.block_base[np.repeat(blocks, seq_len)] + 4 * offset

        op = self._draw_op_classes(total, rng)
        is_last = np.zeros(total, dtype=bool)
        is_last[np.cumsum(seq_len) - 1] = True
        op[is_last] = OpClass.BRANCH

        taken = np.zeros(total, dtype=bool)
        target = np.zeros(total, dtype=np.int64)
        taken[is_last] = taken_seq
        # The architectural taken-target of each branch is static.
        target[is_last] = self.block_base[self.succ_taken[blocks]]

        addr, sid = self._draw_addresses(op, rng)
        dep1, dep2 = self._draw_dependencies(op, addr, rng)

        trace = Trace(
            name=p.name,
            op=op[:length].astype(np.uint8),
            dep1=dep1[:length],
            dep2=dep2[:length],
            pc=pc[:length],
            addr=addr[:length],
            taken=taken[:length],
            target=target[:length],
            sid=sid[:length],
        )
        return trace

    def _walk_cfg(
        self, length: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Random-walk the static CFG until ``length`` µops are covered.

        At each block the branch is taken with the block's fixed bias; taken
        goes to the static successor, not-taken falls through to the next
        block in address order.

        Returns (block ids, branch outcomes, per-block µop start offsets,
        total µop count).
        """
        max_steps = int(length / _MIN_BLOCK_LEN) + 2
        uniforms = rng.random(max_steps)
        block_len = self.block_len
        succ = self.succ_taken
        bias = self.branch_taken_prob
        n_blocks = self.n_blocks

        blocks_list: list[int] = []
        taken_list: list[bool] = []
        current = int(rng.integers(n_blocks))
        covered = 0
        step = 0
        while covered < length:
            blocks_list.append(current)
            covered += int(block_len[current])
            is_taken = bool(uniforms[step] < bias[current])
            taken_list.append(is_taken)
            current = int(succ[current]) if is_taken else (current + 1) % n_blocks
            step += 1

        blocks = np.asarray(blocks_list, dtype=np.int64)
        taken_seq = np.asarray(taken_list, dtype=bool)
        lengths = block_len[blocks]
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        return blocks, taken_seq, starts, int(lengths.sum())

    def _draw_op_classes(self, total: int, rng: np.random.Generator) -> np.ndarray:
        """Draw non-branch op classes from the profile mix."""
        p = self.profile
        f_branch = p.frac_branch
        rest = 1.0 - f_branch
        probs = np.array(
            [
                max(rest - p.frac_load - p.frac_store - p.frac_int_mul - p.frac_fp, 0.0),
                p.frac_int_mul,
                p.frac_fp,
                p.frac_load,
                p.frac_store,
            ]
        )
        probs = probs / probs.sum()
        classes = np.array(
            [OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP, OpClass.LOAD, OpClass.STORE],
            dtype=np.uint8,
        )
        return classes[rng.choice(5, size=total, p=probs)].astype(np.int64)

    def _draw_addresses(
        self, op: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign effective addresses (and stream ids) to memory µops.

        Memory accesses are split into four behaviors by profile fractions:
        strided streams, pointer-chase (loads only), independent cold misses,
        and hot-region reuse.  Returns ``(addr, sid)`` arrays.
        """
        p = self.profile
        addr = np.zeros(len(op), dtype=np.int64)
        sid = np.zeros(len(op), dtype=np.int64)
        is_load = op == OpClass.LOAD
        is_mem = is_load | (op == OpClass.STORE)
        mem_idx = np.flatnonzero(is_mem)
        n_mem = len(mem_idx)
        if n_mem == 0:
            return addr, sid

        mm = self.memory_map
        hot_bytes = mm.hot_end - mm.hot_start
        cold_bytes = mm.cold_end - mm.cold_start
        hot_base = mm.hot_start
        cold_base = mm.cold_start
        stream_base = mm.stream_start

        u = rng.random(n_mem)
        cat = np.zeros(n_mem, dtype=np.int8)  # 0=hot, 1=cold, 2=stream, 3=chase
        edge_stream = p.streaming_frac
        edge_cold = edge_stream + p.cold_miss_frac
        edge_chase = edge_cold + p.pointer_chase_frac
        cat[u < edge_stream] = 2
        cat[(u >= edge_stream) & (u < edge_cold)] = 1
        chase_mask = (u >= edge_cold) & (u < edge_chase) & is_load[mem_idx]
        cat[chase_mask] = 3
        # Residual hot accesses, plus would-be chase stores, stay category 0.

        hot = cat == 0
        addr_mem = np.zeros(n_mem, dtype=np.int64)
        # Hot accesses: uniform over the (cache-resident) hot region.
        addr_mem[hot] = hot_base + rng.integers(0, hot_bytes, size=int(hot.sum()))
        # Cold and chase accesses: uniform over the cold region.
        coldish = (cat == 1) | (cat == 3)
        addr_mem[coldish] = cold_base + (
            rng.integers(0, cold_bytes // 64, size=int(coldish.sum())) * 64
        )
        # Streaming accesses: round-robin across sequential streams, one cache
        # line per access so untamed streams thrash L1-D (lbm's signature).
        streamish = np.flatnonzero(cat == 2)
        if len(streamish):
            stream_id = np.arange(len(streamish)) % p.stream_count
            pos = np.arange(len(streamish)) // p.stream_count
            region = max(cold_bytes // max(p.stream_count, 1), 1 << 16)
            addr_mem[streamish] = (
                stream_base + stream_id * region + (pos * 64) % region
            )
            sid[mem_idx[streamish]] = stream_id + 1

        addr[mem_idx] = addr_mem
        self._chase_positions = mem_idx[cat == 3]
        return addr, sid

    def _draw_dependencies(
        self, op: np.ndarray, addr: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw register dependency distances; serialize the chase chain."""
        p = self.profile
        total = len(op)
        near = rng.geometric(1.0 / p.dep_near_mean, size=total)
        far = rng.geometric(1.0 / p.dep_far_mean, size=total)
        dep1 = np.where(rng.random(total) < p.dep_short_frac, near, far).astype(np.int64)
        dep2 = np.where(
            rng.random(total) < p.dep2_frac,
            np.where(rng.random(total) < p.dep_short_frac, near[::-1], far[::-1]),
            0,
        ).astype(np.int64)

        # Pointer-chase loads form one serialized chain: each depends on the
        # previous chase load, so their misses cannot overlap (low MLP).
        chase = getattr(self, "_chase_positions", np.empty(0, dtype=np.int64))
        if len(chase) > 1:
            dep1[chase[1:]] = np.diff(chase)

        idx = np.arange(total, dtype=np.int64)
        dep1 = np.minimum(np.minimum(dep1, idx), MAX_DEP_DISTANCE)
        dep2 = np.minimum(np.minimum(dep2, idx), MAX_DEP_DISTANCE)
        return dep1, dep2


def generate_trace(profile: WorkloadProfile, length: int, seed: int = 0) -> Trace:
    """Convenience wrapper: generate one trace for ``profile``."""
    return TraceGenerator(profile, seed=seed).generate(length)
