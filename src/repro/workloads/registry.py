"""Unified lookup across all workload profiles (CloudSuite + SPEC CPU2006)."""

from __future__ import annotations

from repro.workloads.cloudsuite import CLOUDSUITE
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec2006 import SPEC2006

__all__ = ["all_profiles", "get_profile"]


def all_profiles() -> dict[str, WorkloadProfile]:
    """All known profiles, keyed by name."""
    merged = dict(CLOUDSUITE)
    overlap = merged.keys() & SPEC2006.keys()
    if overlap:
        raise RuntimeError(f"workload name collision between suites: {sorted(overlap)}")
    merged.update(SPEC2006)
    return merged


def get_profile(name: str) -> WorkloadProfile:
    """Look up any workload profile by name."""
    profiles = all_profiles()
    try:
        return profiles[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(sorted(profiles))}"
        ) from None
