"""Workload profile model.

A :class:`WorkloadProfile` captures the statistical microarchitectural
signature of one application.  The fields map one-to-one onto the behaviors
the paper's analysis identifies as decisive:

* **MLP / ROB sensitivity** — ``cold_miss_frac`` (independent long-latency
  loads whose overlap grows with window size) versus ``pointer_chase_frac``
  (dependent loads that serialize regardless of window size, the signature of
  scale-out services per Ferdman et al. / Kanev et al., cited as [8] and [2]).
* **L1-D pressure** — ``data_footprint_kb``, ``hot_region_kb``,
  ``hot_access_frac`` and ``streaming_frac`` (lbm's streaming writes are the
  paper's L1-D outlier).
* **L1-I / BTB pressure** — ``instr_footprint_kb`` and ``block_len_mean``
  (large multi-megabyte instruction footprints are characteristic of server
  workloads).
* **Branch behavior** — ``branch_predictability``.

Latency-sensitive profiles additionally carry a :class:`QoSSpec` with the
paper's Table I latency targets and a request service-time model for the
queueing substrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["WorkloadKind", "QoSSpec", "WorkloadProfile"]


class WorkloadKind(enum.Enum):
    LATENCY_SENSITIVE = "latency-sensitive"
    BATCH = "batch"


@dataclass(frozen=True)
class QoSSpec:
    """Quality-of-service contract of a latency-sensitive service (Table I).

    Attributes
    ----------
    target_ms:
        Tail-latency target in milliseconds.
    percentile:
        The percentile the target applies to (e.g. 99.0); Media Streaming
        uses a delivery timeout, which we model as a high-percentile bound.
    base_service_ms:
        Mean per-request service time on an uncontended full core.
    service_cv:
        Coefficient of variation of the service-time distribution.
    """

    target_ms: float
    percentile: float
    base_service_ms: float
    service_cv: float = 1.0

    def __post_init__(self) -> None:
        if self.target_ms <= 0 or self.base_service_ms <= 0:
            raise ValueError("latency values must be positive")
        if not 50.0 <= self.percentile <= 100.0:
            raise ValueError(f"percentile must be in [50, 100], got {self.percentile}")
        if self.base_service_ms >= self.target_ms:
            raise ValueError("service time must be below the latency target")


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical microarchitectural signature of one workload."""

    name: str
    kind: WorkloadKind
    description: str
    # --- instruction mix (branch fraction is implied by block_len_mean) ---
    frac_load: float = 0.25
    frac_store: float = 0.10
    frac_int_mul: float = 0.02
    frac_fp: float = 0.05
    # --- register dependency structure ---
    dep_short_frac: float = 0.7
    dep_near_mean: float = 3.0
    dep_far_mean: float = 24.0
    dep2_frac: float = 0.4
    # --- data-side memory behavior ---
    data_footprint_kb: int = 8 * 1024
    hot_region_kb: int = 32
    hot_access_frac: float = 0.85
    streaming_frac: float = 0.0
    stream_count: int = 4
    cold_miss_frac: float = 0.05
    pointer_chase_frac: float = 0.0
    # --- instruction-side behavior ---
    instr_footprint_kb: int = 24
    block_len_mean: float = 9.0
    #: Zipf exponent of taken-edge targets in the synthetic CFG.  Higher
    #: values concentrate execution on a small hot code set (typical SPEC
    #: loop nests); lower values spread it across the footprint (deep server
    #: software stacks, which is what pressures L1-I/BTB).
    code_zipf: float = 1.15
    # --- control flow ---
    branch_predictability: float = 0.95
    # --- QoS (latency-sensitive workloads only) ---
    qos: QoSSpec | None = None

    def __post_init__(self) -> None:
        fracs = {
            "frac_load": self.frac_load,
            "frac_store": self.frac_store,
            "frac_int_mul": self.frac_int_mul,
            "frac_fp": self.frac_fp,
        }
        for field_name, value in fracs.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if sum(fracs.values()) >= 1.0:
            raise ValueError("instruction-mix fractions must leave room for ALU ops")
        for field_name in (
            "dep_short_frac",
            "dep2_frac",
            "hot_access_frac",
            "streaming_frac",
            "cold_miss_frac",
            "pointer_chase_frac",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.streaming_frac + self.cold_miss_frac + self.pointer_chase_frac > 1.0:
            raise ValueError(
                "streaming, cold-miss and pointer-chase fractions cannot exceed 1"
            )
        if not 0.5 <= self.branch_predictability <= 1.0:
            raise ValueError("branch_predictability must be in [0.5, 1]")
        if not 0.0 <= self.code_zipf <= 3.0:
            raise ValueError("code_zipf must be in [0, 3]")
        if self.block_len_mean < 2.0:
            raise ValueError("mean basic-block length must be at least 2")
        if self.hot_region_kb > self.data_footprint_kb:
            raise ValueError("hot region cannot exceed the data footprint")
        if self.kind is WorkloadKind.LATENCY_SENSITIVE and self.qos is None:
            raise ValueError(f"latency-sensitive workload {self.name!r} needs a QoSSpec")
        if self.kind is WorkloadKind.BATCH and self.qos is not None:
            raise ValueError(f"batch workload {self.name!r} must not carry a QoSSpec")

    @property
    def frac_branch(self) -> float:
        """Branch fraction implied by the mean basic-block length."""
        return 1.0 / self.block_len_mean

    @property
    def is_latency_sensitive(self) -> bool:
        return self.kind is WorkloadKind.LATENCY_SENSITIVE
