"""Trace-vs-profile validation.

A generated trace is supposed to *realize* its profile's statistical
signature.  This module measures the realized statistics and checks them
against the profile within tolerances — the guard rail that keeps the
synthetic-workload substitution honest when profiles or the generator are
recalibrated.

``validate_trace`` raises :class:`TraceValidationError` listing every
violated property; ``measure_trace`` returns the realized statistics for
inspection or reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.isa import OpClass
from repro.cpu.trace import Trace
from repro.workloads.profiles import WorkloadProfile

__all__ = ["RealizedStatistics", "TraceValidationError", "measure_trace",
           "validate_trace"]


class TraceValidationError(AssertionError):
    """A generated trace does not realize its profile's signature."""

    def __init__(self, workload: str, violations: list[str]):
        self.workload = workload
        self.violations = violations
        super().__init__(
            f"trace for {workload!r} violates its profile: "
            + "; ".join(violations)
        )


@dataclass(frozen=True)
class RealizedStatistics:
    """Measured statistical properties of one trace."""

    n: int
    frac_load: float
    frac_store: float
    frac_branch: float
    frac_stream_of_mem: float
    mean_dep1_distance: float
    code_footprint_kb: float
    data_footprint_kb: float
    taken_fraction: float
    majority_direction_accuracy: float


def measure_trace(trace: Trace) -> RealizedStatistics:
    """Compute the realized statistics of ``trace``."""
    n = len(trace)
    op = trace.op
    is_load = op == OpClass.LOAD
    is_store = op == OpClass.STORE
    is_branch = op == OpClass.BRANCH
    is_mem = is_load | is_store
    n_mem = int(is_mem.sum())

    br_pc = trace.pc[is_branch]
    br_taken = trace.taken[is_branch]
    if len(br_pc):
        unique, inverse = np.unique(br_pc, return_inverse=True)
        counts = np.bincount(inverse)
        votes = np.bincount(inverse, weights=br_taken.astype(float))
        majority = np.maximum(votes, counts - votes).sum() / counts.sum()
        taken_fraction = float(br_taken.mean())
    else:
        majority = 1.0
        taken_fraction = 0.0

    deps = trace.dep1[trace.dep1 > 0]
    return RealizedStatistics(
        n=n,
        frac_load=float(is_load.mean()),
        frac_store=float(is_store.mean()),
        frac_branch=float(is_branch.mean()),
        frac_stream_of_mem=float((trace.sid[is_mem] > 0).mean()) if n_mem else 0.0,
        mean_dep1_distance=float(deps.mean()) if len(deps) else 0.0,
        code_footprint_kb=len(np.unique(trace.pc >> 6)) * 64 / 1024,
        data_footprint_kb=(
            len(np.unique(trace.addr[is_mem] >> 6)) * 64 / 1024 if n_mem else 0.0
        ),
        taken_fraction=taken_fraction,
        majority_direction_accuracy=float(majority),
    )


def validate_trace(
    trace: Trace,
    profile: WorkloadProfile,
    mix_rel_tolerance: float = 0.35,
    predictability_abs_tolerance: float = 0.08,
) -> RealizedStatistics:
    """Check that ``trace`` realizes ``profile``; raise on violations.

    Tolerances are generous by design: short traces carry sampling noise,
    and the structural invariants (`Trace.validate`) are checked exactly
    elsewhere.  This guards the *signature*, not the randomness.
    """
    trace.validate()
    stats = measure_trace(trace)
    violations: list[str] = []

    def check_frac(name: str, realized: float, target: float) -> None:
        if target == 0.0:
            if realized > 0.02:
                violations.append(f"{name}: expected ~0, realized {realized:.3f}")
            return
        if abs(realized - target) > mix_rel_tolerance * target:
            violations.append(
                f"{name}: target {target:.3f}, realized {realized:.3f}"
            )

    check_frac("frac_load", stats.frac_load, profile.frac_load)
    check_frac("frac_store", stats.frac_store, profile.frac_store)
    # The realized branch rate is phase-dependent: the CFG walk spends
    # variable time in hot loops (short blocks) vs straight-line sweeps, so
    # a single window can sit well off the long-run mean.  Guard only
    # against gross mismatch.
    ratio = stats.frac_branch / max(profile.frac_branch, 1e-9)
    if not 0.4 <= ratio <= 2.5:
        violations.append(
            f"frac_branch: target {profile.frac_branch:.3f}, realized "
            f"{stats.frac_branch:.3f} (ratio {ratio:.2f})"
        )
    check_frac(
        "streaming fraction of memory ops",
        stats.frac_stream_of_mem,
        profile.streaming_frac,
    )

    if (
        abs(stats.majority_direction_accuracy - profile.branch_predictability)
        > predictability_abs_tolerance
    ):
        violations.append(
            f"branch predictability: target {profile.branch_predictability:.2f},"
            f" realized {stats.majority_direction_accuracy:.2f}"
        )

    budget = profile.instr_footprint_kb * 1.3
    if stats.code_footprint_kb > budget:
        violations.append(
            f"code footprint {stats.code_footprint_kb:.0f} KB exceeds "
            f"{budget:.0f} KB"
        )
    if stats.data_footprint_kb > profile.data_footprint_kb * 1.1:
        violations.append(
            f"data footprint {stats.data_footprint_kb:.0f} KB exceeds profile "
            f"{profile.data_footprint_kb} KB"
        )

    if violations:
        raise TraceValidationError(profile.name, violations)
    return stats
