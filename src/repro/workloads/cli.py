"""``stretch-trace``: generate, inspect and characterize workload traces.

.. code-block:: console

   $ stretch-trace list                      # all registered workloads
   $ stretch-trace generate zeusmp -n 100000 -o zeusmp.npz
   $ stretch-trace info zeusmp.npz           # mix / footprints / streams
   $ stretch-trace characterize web_search   # run it on the simulated core
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.cpu.isa import OpClass
from repro.cpu.sampling import SamplingConfig
from repro.cpu.trace import Trace
from repro.workloads.characterize import characterize
from repro.workloads.generator import generate_trace
from repro.workloads.registry import all_profiles, get_profile

__all__ = ["main"]


def _cmd_list(_: argparse.Namespace) -> int:
    for name, profile in sorted(all_profiles().items()):
        print(f"{name:<18} {profile.kind.value:<18} {profile.description}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    profile = get_profile(args.workload)
    trace = generate_trace(profile, args.length, seed=args.seed)
    trace.save(args.output)
    print(f"wrote {args.length} µops of {profile.name!r} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    mix = trace.mix
    is_mem = (trace.op == OpClass.LOAD) | (trace.op == OpClass.STORE)
    code_kb = len(np.unique(trace.pc >> 6)) * 64 / 1024
    data_kb = len(np.unique(trace.addr[is_mem] >> 6)) * 64 / 1024
    streams = int(trace.sid.max())
    print(f"trace      : {trace.name} ({len(trace)} µops)")
    for op in OpClass:
        print(f"  {op.name:<8} {mix[op]:6.1%}")
    print(f"code lines touched : {code_kb:8.1f} KB")
    print(f"data lines touched : {data_kb:8.1f} KB")
    print(f"streams            : {streams}")
    print(f"branches taken     : {float(trace.taken[trace.op == OpClass.BRANCH].mean()):6.1%}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    profile = get_profile(args.workload)
    sampling = SamplingConfig(n_samples=args.samples, seed=args.seed)
    character = characterize(profile, sampling=sampling)
    print(f"{character.name} ({character.kind})")
    print(f"  UIPC                 : {character.uipc:.3f}")
    print(f"  L1-D MPKI            : {character.l1d_mpki:.1f}")
    print(f"  L1-I MPKI            : {character.l1i_mpki:.1f}")
    print(f"  BP misprediction rate: {character.branch_misprediction_rate:.1%}")
    print(f"  MLP >=2 / >=3 time   : {character.mlp_ge2:.1%} / {character.mlp_ge3:.1%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stretch-trace",
        description="Workload-trace utilities for the Stretch reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workload profiles")

    generate = sub.add_parser("generate", help="synthesize and save a trace")
    generate.add_argument("workload")
    generate.add_argument("-n", "--length", type=int, default=100_000)
    generate.add_argument("-s", "--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True)

    info = sub.add_parser("info", help="summarize a saved trace")
    info.add_argument("trace")

    character = sub.add_parser("characterize",
                               help="run a workload solo on the simulated core")
    character.add_argument("workload")
    character.add_argument("--samples", type=int, default=3)
    character.add_argument("-s", "--seed", type=int, default=42)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "generate": _cmd_generate,
        "info": _cmd_info,
        "characterize": _cmd_characterize,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
