"""Statistical profiles for the four CloudSuite latency-sensitive services.

These reproduce the microarchitectural signature the paper (and the scale-out
characterization work it cites, [2] and [8]) attributes to server workloads:

* **low MLP** — data-dependent access patterns; loads frequently chase
  pointers, so misses serialize and a large ROB buys little (Figs. 6-7:
  Web Search has ≥2 in-flight misses only 9% of the time);
* **large instruction footprints** — deep software stacks stress L1-I/BTB;
* **modest core demands overall** — IPC is miss-dominated, leaving most
  dispatch slots to a co-runner.

Each profile also carries its Table I QoS contract and a request service-time
model used by the queueing substrate (Figs. 1-2, 14).
"""

from __future__ import annotations

from repro.workloads.profiles import QoSSpec, WorkloadKind, WorkloadProfile

__all__ = ["CLOUDSUITE", "CLOUDSUITE_NAMES", "cloudsuite_profile"]


def _service(name: str, description: str, qos: QoSSpec, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        kind=WorkloadKind.LATENCY_SENSITIVE,
        description=description,
        qos=qos,
        **kwargs,
    )


CLOUDSUITE: dict[str, WorkloadProfile] = {
    p.name: p
    for p in (
        _service(
            "data_serving",
            "Apache Cassandra NoSQL store, 95:5 read/write mix (Tables I & III)",
            QoSSpec(target_ms=20.0, percentile=99.0, base_service_ms=1.2, service_cv=1.1),
            frac_load=0.31, frac_store=0.12, frac_fp=0.01, frac_int_mul=0.01,
            dep_short_frac=0.66, dep_near_mean=2.5, dep_far_mean=16.0,
            data_footprint_kb=10 * 1024, hot_region_kb=24, hot_access_frac=0.62,
            cold_miss_frac=0.015, pointer_chase_frac=0.020,
            instr_footprint_kb=320, block_len_mean=5.5, branch_predictability=0.92,
            code_zipf=0.70,
        ),
        _service(
            "web_serving",
            "Nginx + PHP (Elgg) + MySQL social-networking stack (Tables I & III)",
            QoSSpec(target_ms=1000.0, percentile=95.0, base_service_ms=35.0, service_cv=1.2),
            frac_load=0.30, frac_store=0.13, frac_fp=0.0, frac_int_mul=0.01,
            dep_short_frac=0.68, dep_near_mean=2.5, dep_far_mean=14.0,
            data_footprint_kb=6 * 1024, hot_region_kb=32, hot_access_frac=0.66,
            cold_miss_frac=0.012, pointer_chase_frac=0.024,
            instr_footprint_kb=300, block_len_mean=5.5, branch_predictability=0.93,
            code_zipf=0.85,
        ),
        _service(
            "web_search",
            "Nutch / Lucene index-serving node (Tables I & III)",
            QoSSpec(target_ms=100.0, percentile=99.0, base_service_ms=8.0, service_cv=1.0),
            frac_load=0.32, frac_store=0.08, frac_fp=0.01, frac_int_mul=0.01,
            dep_short_frac=0.66, dep_near_mean=2.5, dep_far_mean=16.0,
            data_footprint_kb=8 * 1024, hot_region_kb=24, hot_access_frac=0.60,
            cold_miss_frac=0.012, pointer_chase_frac=0.022,
            instr_footprint_kb=280, block_len_mean=5.5, branch_predictability=0.93,
            code_zipf=0.72,
        ),
        _service(
            "media_streaming",
            "Darwin Streaming Server, high-bitrate feeds (Tables I & III)",
            QoSSpec(target_ms=2000.0, percentile=99.0, base_service_ms=50.0, service_cv=0.8),
            frac_load=0.29, frac_store=0.12, frac_fp=0.01, frac_int_mul=0.01,
            dep_short_frac=0.66, dep_near_mean=2.5, dep_far_mean=16.0,
            data_footprint_kb=10 * 1024, hot_region_kb=24, hot_access_frac=0.65,
            cold_miss_frac=0.012, pointer_chase_frac=0.020, streaming_frac=0.04,
            instr_footprint_kb=160, block_len_mean=6.0, branch_predictability=0.95,
            code_zipf=0.95,
        ),
    )
}

CLOUDSUITE_NAMES: tuple[str, ...] = tuple(CLOUDSUITE)


def cloudsuite_profile(name: str) -> WorkloadProfile:
    """Return the profile for a CloudSuite latency-sensitive service by name."""
    try:
        return CLOUDSUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown CloudSuite service {name!r}; known: {', '.join(CLOUDSUITE_NAMES)}"
        ) from None
