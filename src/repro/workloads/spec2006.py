"""Statistical profiles for the 29 SPEC CPU2006 batch benchmarks.

The paper colocates each latency-sensitive service with every SPEC CPU2006
benchmark (§V-B).  Each profile below is calibrated to the published
microarchitectural character of its benchmark — most importantly the
properties the paper's results hinge on:

* its *ROB sensitivity* (Fig. 6: batch average loses 19% at half ROB, 31%
  worst case; Fig. 4: ROB sharing costs >15% for 15 of 29 benchmarks),
  which in this model follows from ``cold_miss_frac`` (density of
  independent long-latency loads → MLP grows with window size) and the
  data footprint (whether those misses are LLC hits or memory accesses);
* *L1-D aggressiveness* (lbm is the paper's outlier that hurts co-runners
  through L1-D capacity, Figs. 4-5), from ``streaming_frac`` and footprint;
* compute-bound benchmarks (gamess, povray, namd, ...) with small footprints
  and high branch predictability, which gain little from extra ROB.

Absolute parameter values are necessarily approximate — they are tuned so the
*population* reproduces the paper's distributions, not per-benchmark IPC.
"""

from __future__ import annotations

from repro.workloads.profiles import WorkloadKind, WorkloadProfile

__all__ = ["SPEC2006", "SPEC2006_NAMES", "spec_profile"]


def _batch(name: str, description: str, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(
        name=name, kind=WorkloadKind.BATCH, description=description, **kwargs
    )


#: High-MLP memory-bound benchmarks: dense independent misses, large
#: footprints.  These are the ~15 benchmarks that lose >15% from ROB halving.
_MEMORY_MLP = [
    _batch(
        "zeusmp",
        "Computational fluid dynamics; the paper's high-ROB-sensitivity exemplar",
        frac_load=0.30, frac_store=0.11, frac_fp=0.30, frac_int_mul=0.01,
        dep_short_frac=0.45, dep_far_mean=40.0,
        data_footprint_kb=24 * 1024, hot_region_kb=24, hot_access_frac=0.55,
        cold_miss_frac=0.080, streaming_frac=0.05,
        instr_footprint_kb=20, block_len_mean=14.0, branch_predictability=0.985,
    ),
    _batch(
        "lbm",
        "Lattice Boltzmann; streaming stores over a huge grid (L1-D outlier)",
        frac_load=0.27, frac_store=0.24, frac_fp=0.32, frac_int_mul=0.0,
        dep_short_frac=0.45, dep_far_mean=48.0,
        data_footprint_kb=64 * 1024, hot_region_kb=16, hot_access_frac=0.30,
        cold_miss_frac=0.075, streaming_frac=0.45, stream_count=8,
        instr_footprint_kb=8, block_len_mean=18.0, branch_predictability=0.99,
    ),
    _batch(
        "libquantum",
        "Quantum simulation; long sequential sweeps, very regular",
        frac_load=0.25, frac_store=0.08, frac_fp=0.05, frac_int_mul=0.02,
        dep_short_frac=0.50, dep_far_mean=44.0,
        data_footprint_kb=32 * 1024, hot_region_kb=16, hot_access_frac=0.40,
        cold_miss_frac=0.065, streaming_frac=0.25, stream_count=2,
        instr_footprint_kb=6, block_len_mean=7.0, branch_predictability=0.99,
    ),
    _batch(
        "milc",
        "Lattice QCD; large working set, independent gather accesses",
        frac_load=0.31, frac_store=0.13, frac_fp=0.28, frac_int_mul=0.01,
        dep_short_frac=0.48, dep_far_mean=36.0,
        data_footprint_kb=28 * 1024, hot_region_kb=24, hot_access_frac=0.50,
        cold_miss_frac=0.068, streaming_frac=0.10,
        instr_footprint_kb=14, block_len_mean=12.0, branch_predictability=0.98,
    ),
    _batch(
        "leslie3d",
        "Computational fluid dynamics; strided sweeps with reuse",
        frac_load=0.30, frac_store=0.12, frac_fp=0.31, frac_int_mul=0.01,
        dep_short_frac=0.48, dep_far_mean=38.0,
        data_footprint_kb=20 * 1024, hot_region_kb=32, hot_access_frac=0.55,
        cold_miss_frac=0.062, streaming_frac=0.12,
        instr_footprint_kb=16, block_len_mean=13.0, branch_predictability=0.985,
    ),
    _batch(
        "GemsFDTD",
        "Finite-difference time domain; multi-array sweeps",
        frac_load=0.32, frac_store=0.12, frac_fp=0.30, frac_int_mul=0.01,
        dep_short_frac=0.47, dep_far_mean=40.0,
        data_footprint_kb=26 * 1024, hot_region_kb=24, hot_access_frac=0.50,
        cold_miss_frac=0.070, streaming_frac=0.12, stream_count=6,
        instr_footprint_kb=18, block_len_mean=13.0, branch_predictability=0.985,
    ),
    _batch(
        "bwaves",
        "Blast-wave CFD; large dense solver, wide independent accesses",
        frac_load=0.31, frac_store=0.10, frac_fp=0.33, frac_int_mul=0.01,
        dep_short_frac=0.46, dep_far_mean=42.0,
        data_footprint_kb=22 * 1024, hot_region_kb=32, hot_access_frac=0.52,
        cold_miss_frac=0.066, streaming_frac=0.14,
        instr_footprint_kb=10, block_len_mean=15.0, branch_predictability=0.99,
    ),
    _batch(
        "soplex",
        "Linear programming; sparse matrix operations, irregular misses",
        frac_load=0.29, frac_store=0.09, frac_fp=0.18, frac_int_mul=0.02,
        dep_short_frac=0.52, dep_far_mean=32.0,
        data_footprint_kb=16 * 1024, hot_region_kb=32, hot_access_frac=0.55,
        cold_miss_frac=0.070, streaming_frac=0.05,
        instr_footprint_kb=24, block_len_mean=9.0, branch_predictability=0.95,
    ),
    _batch(
        "sphinx3",
        "Speech recognition; gaussian scoring over large acoustic model",
        frac_load=0.30, frac_store=0.07, frac_fp=0.25, frac_int_mul=0.02,
        dep_short_frac=0.50, dep_far_mean=34.0,
        data_footprint_kb=14 * 1024, hot_region_kb=32, hot_access_frac=0.58,
        cold_miss_frac=0.050, streaming_frac=0.10,
        instr_footprint_kb=20, block_len_mean=10.0, branch_predictability=0.96,
    ),
    _batch(
        "mcf",
        "Network simplex; pointer-heavy but with multiple concurrent chains",
        frac_load=0.33, frac_store=0.10, frac_fp=0.0, frac_int_mul=0.01,
        dep_short_frac=0.55, dep_far_mean=30.0,
        data_footprint_kb=40 * 1024, hot_region_kb=16, hot_access_frac=0.40,
        cold_miss_frac=0.064, pointer_chase_frac=0.012,
        instr_footprint_kb=8, block_len_mean=7.0, branch_predictability=0.92,
    ),
    _batch(
        "omnetpp",
        "Discrete-event simulation; heap-allocated event structures",
        frac_load=0.31, frac_store=0.14, frac_fp=0.02, frac_int_mul=0.02,
        dep_short_frac=0.55, dep_far_mean=28.0,
        data_footprint_kb=18 * 1024, hot_region_kb=24, hot_access_frac=0.52,
        cold_miss_frac=0.060, pointer_chase_frac=0.010,
        instr_footprint_kb=40, block_len_mean=7.0, branch_predictability=0.93,
    ),
    _batch(
        "cactusADM",
        "Numerical relativity; stencil sweeps over large grids",
        frac_load=0.31, frac_store=0.11, frac_fp=0.34, frac_int_mul=0.01,
        dep_short_frac=0.47, dep_far_mean=40.0,
        data_footprint_kb=18 * 1024, hot_region_kb=32, hot_access_frac=0.55,
        cold_miss_frac=0.055, streaming_frac=0.12,
        instr_footprint_kb=12, block_len_mean=16.0, branch_predictability=0.99,
    ),
    _batch(
        "wrf",
        "Weather modeling; many-array physics kernels",
        frac_load=0.29, frac_store=0.11, frac_fp=0.30, frac_int_mul=0.01,
        dep_short_frac=0.50, dep_far_mean=34.0,
        data_footprint_kb=16 * 1024, hot_region_kb=48, hot_access_frac=0.58,
        cold_miss_frac=0.055, streaming_frac=0.10,
        instr_footprint_kb=48, block_len_mean=12.0, branch_predictability=0.97,
    ),
    _batch(
        "gcc",
        "Compiler; large irregular data structures and code footprint",
        frac_load=0.28, frac_store=0.13, frac_fp=0.01, frac_int_mul=0.01,
        dep_short_frac=0.58, dep_far_mean=26.0,
        data_footprint_kb=12 * 1024, hot_region_kb=32, hot_access_frac=0.60,
        cold_miss_frac=0.044, pointer_chase_frac=0.006,
        instr_footprint_kb=96, block_len_mean=6.5, branch_predictability=0.93,
    ),
    _batch(
        "xalancbmk",
        "XML transformation; pointer-rich DOM traversal with some MLP",
        frac_load=0.32, frac_store=0.10, frac_fp=0.0, frac_int_mul=0.01,
        dep_short_frac=0.56, dep_far_mean=26.0,
        data_footprint_kb=14 * 1024, hot_region_kb=24, hot_access_frac=0.58,
        cold_miss_frac=0.042, pointer_chase_frac=0.008,
        instr_footprint_kb=64, block_len_mean=6.0, branch_predictability=0.94,
    ),
]

#: Moderately ROB-sensitive benchmarks (the paper's "other 2 benefit by over
#: 10%" plus the mid-field): some independent misses, mostly cache-resident.
_MODERATE = [
    _batch(
        "astar",
        "Path-finding; graph traversal with mixed dependent/independent loads",
        frac_load=0.30, frac_store=0.09, frac_fp=0.02, frac_int_mul=0.01,
        dep_short_frac=0.58, dep_far_mean=24.0,
        data_footprint_kb=10 * 1024, hot_region_kb=32, hot_access_frac=0.62,
        cold_miss_frac=0.038, pointer_chase_frac=0.012,
        instr_footprint_kb=12, block_len_mean=7.5, branch_predictability=0.92,
    ),
    _batch(
        "hmmer",
        "Hidden-Markov-model search; dense dynamic programming",
        frac_load=0.28, frac_store=0.12, frac_fp=0.02, frac_int_mul=0.03,
        dep_short_frac=0.55, dep_far_mean=28.0,
        data_footprint_kb=4 * 1024, hot_region_kb=32, hot_access_frac=0.84,
        cold_miss_frac=0.026, streaming_frac=0.08,
        instr_footprint_kb=10, block_len_mean=11.0, branch_predictability=0.97,
    ),
    _batch(
        "bzip2",
        "Compression; table-driven with moderate working set",
        frac_load=0.26, frac_store=0.11, frac_fp=0.0, frac_int_mul=0.02,
        dep_short_frac=0.62, dep_near_mean=2.5, dep_far_mean=20.0,
        data_footprint_kb=6 * 1024, hot_region_kb=40, hot_access_frac=0.80,
        cold_miss_frac=0.022,
        instr_footprint_kb=12, block_len_mean=8.0, branch_predictability=0.93,
    ),
    _batch(
        "perlbench",
        "Perl interpreter; branchy, large code footprint, small data misses",
        frac_load=0.27, frac_store=0.13, frac_fp=0.0, frac_int_mul=0.01,
        dep_short_frac=0.62, dep_far_mean=20.0,
        data_footprint_kb=5 * 1024, hot_region_kb=36, hot_access_frac=0.82,
        cold_miss_frac=0.016, pointer_chase_frac=0.008,
        instr_footprint_kb=80, block_len_mean=6.0, branch_predictability=0.94,
    ),
    _batch(
        "gobmk",
        "Go playing; branchy search over board structures",
        frac_load=0.27, frac_store=0.12, frac_fp=0.0, frac_int_mul=0.01,
        dep_short_frac=0.62, dep_far_mean=20.0,
        data_footprint_kb=3 * 1024, hot_region_kb=32, hot_access_frac=0.84,
        cold_miss_frac=0.010,
        instr_footprint_kb=56, block_len_mean=6.0, branch_predictability=0.88,
    ),
    _batch(
        "sjeng",
        "Chess search; deep recursion, hard-to-predict branches",
        frac_load=0.25, frac_store=0.10, frac_fp=0.0, frac_int_mul=0.01,
        dep_short_frac=0.62, dep_far_mean=20.0,
        data_footprint_kb=4 * 1024, hot_region_kb=32, hot_access_frac=0.84,
        cold_miss_frac=0.010,
        instr_footprint_kb=24, block_len_mean=6.5, branch_predictability=0.89,
    ),
    _batch(
        "dealII",
        "Finite elements; templated C++ with moderate locality",
        frac_load=0.30, frac_store=0.10, frac_fp=0.22, frac_int_mul=0.01,
        dep_short_frac=0.56, dep_far_mean=26.0,
        data_footprint_kb=8 * 1024, hot_region_kb=36, hot_access_frac=0.78,
        cold_miss_frac=0.034,
        instr_footprint_kb=48, block_len_mean=8.0, branch_predictability=0.96,
    ),
    _batch(
        "gromacs",
        "Molecular dynamics; compute-dense inner loops with neighbor lists",
        frac_load=0.28, frac_store=0.09, frac_fp=0.33, frac_int_mul=0.01,
        dep_short_frac=0.55, dep_far_mean=28.0,
        data_footprint_kb=6 * 1024, hot_region_kb=32, hot_access_frac=0.84,
        cold_miss_frac=0.020,
        instr_footprint_kb=16, block_len_mean=12.0, branch_predictability=0.97,
    ),
    _batch(
        "h264ref",
        "Video encoding; motion estimation over frame buffers",
        frac_load=0.30, frac_store=0.10, frac_fp=0.03, frac_int_mul=0.04,
        dep_short_frac=0.58, dep_far_mean=24.0,
        data_footprint_kb=5 * 1024, hot_region_kb=36, hot_access_frac=0.84,
        cold_miss_frac=0.016, streaming_frac=0.08,
        instr_footprint_kb=32, block_len_mean=9.0, branch_predictability=0.95,
    ),
]

#: Compute-bound benchmarks: cache-resident working sets, little to gain from
#: a larger window beyond exposing more ILP in arithmetic.
_COMPUTE = [
    _batch(
        "gamess",
        "Quantum chemistry; tight FP kernels, tiny data misses",
        frac_load=0.27, frac_store=0.09, frac_fp=0.35, frac_int_mul=0.01,
        dep_short_frac=0.60, dep_far_mean=22.0,
        data_footprint_kb=2 * 1024, hot_region_kb=28, hot_access_frac=0.90,
        cold_miss_frac=0.006,
        instr_footprint_kb=40, block_len_mean=10.0, branch_predictability=0.98,
    ),
    _batch(
        "povray",
        "Ray tracing; recursive, cache-resident scene data",
        frac_load=0.28, frac_store=0.10, frac_fp=0.30, frac_int_mul=0.02,
        dep_short_frac=0.62, dep_far_mean=18.0,
        data_footprint_kb=2 * 1024, hot_region_kb=24, hot_access_frac=0.90,
        cold_miss_frac=0.005,
        instr_footprint_kb=36, block_len_mean=7.5, branch_predictability=0.95,
    ),
    _batch(
        "namd",
        "Molecular dynamics; highly regular FP compute",
        frac_load=0.28, frac_store=0.08, frac_fp=0.38, frac_int_mul=0.01,
        dep_short_frac=0.58, dep_far_mean=26.0,
        data_footprint_kb=3 * 1024, hot_region_kb=28, hot_access_frac=0.88,
        cold_miss_frac=0.008,
        instr_footprint_kb=16, block_len_mean=14.0, branch_predictability=0.99,
    ),
    _batch(
        "calculix",
        "Structural mechanics; dense solver kernels",
        frac_load=0.29, frac_store=0.09, frac_fp=0.33, frac_int_mul=0.01,
        dep_short_frac=0.58, dep_far_mean=24.0,
        data_footprint_kb=3 * 1024, hot_region_kb=32, hot_access_frac=0.88,
        cold_miss_frac=0.009,
        instr_footprint_kb=28, block_len_mean=11.0, branch_predictability=0.98,
    ),
    _batch(
        "tonto",
        "Quantum crystallography; object-oriented Fortran compute",
        frac_load=0.28, frac_store=0.10, frac_fp=0.30, frac_int_mul=0.01,
        dep_short_frac=0.60, dep_far_mean=22.0,
        data_footprint_kb=3 * 1024, hot_region_kb=32, hot_access_frac=0.88,
        cold_miss_frac=0.009,
        instr_footprint_kb=44, block_len_mean=9.0, branch_predictability=0.97,
    ),
]

SPEC2006: dict[str, WorkloadProfile] = {
    p.name: p for p in (*_MEMORY_MLP, *_MODERATE, *_COMPUTE)
}

SPEC2006_NAMES: tuple[str, ...] = tuple(sorted(SPEC2006))

if len(SPEC2006) != 29:
    raise AssertionError(f"expected 29 SPEC CPU2006 profiles, found {len(SPEC2006)}")


def spec_profile(name: str) -> WorkloadProfile:
    """Return the profile for a SPEC CPU2006 benchmark by name."""
    try:
        return SPEC2006[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC2006 benchmark {name!r}; known: {', '.join(SPEC2006_NAMES)}"
        ) from None
