"""Synthetic workload substrate.

The paper runs four CloudSuite latency-sensitive services and all 29 SPEC
CPU2006 benchmarks on a full-system simulator.  Neither CloudSuite's
SPARC/Solaris software stack nor SPEC binaries are available offline, so this
package substitutes *statistical workload profiles*: each workload is
described by the microarchitectural signature the paper's analysis rests on
(dependency structure / MLP, data and instruction footprints, streaming
behavior, branch predictability), and a generator synthesizes µop traces with
those properties.  See DESIGN.md §1 for the substitution rationale.
"""

from repro.workloads.profiles import QoSSpec, WorkloadKind, WorkloadProfile
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.spec2006 import SPEC2006, spec_profile
from repro.workloads.cloudsuite import CLOUDSUITE, cloudsuite_profile
from repro.workloads.registry import all_profiles, get_profile

__all__ = [
    "QoSSpec",
    "WorkloadKind",
    "WorkloadProfile",
    "TraceGenerator",
    "generate_trace",
    "SPEC2006",
    "spec_profile",
    "CLOUDSUITE",
    "cloudsuite_profile",
    "all_profiles",
    "get_profile",
]
