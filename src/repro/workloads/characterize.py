"""Workload characterization report (the paper's §III methodology).

Runs each profile stand-alone on the full core and reports the
microarchitectural signature the paper's analysis is built on: UIPC, cache
MPKIs, branch behavior, and the MLP distribution.  Useful both as a
library feature (what does this profile actually look like on the core?)
and as the calibration surface for the synthetic-workload substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.config import CoreConfig
from repro.cpu.metrics import ThreadResult
from repro.cpu.sampling import SamplingConfig, sample_solo
from repro.util.tables import format_table
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.registry import all_profiles

__all__ = ["WorkloadCharacter", "characterize", "characterize_all"]


@dataclass(frozen=True)
class WorkloadCharacter:
    """Averaged stand-alone signature of one workload."""

    name: str
    kind: str
    uipc: float
    l1d_mpki: float
    l1i_mpki: float
    branch_mpki: float
    branch_misprediction_rate: float
    mlp_ge2: float
    mlp_ge3: float

    def as_row(self) -> list:
        return [
            self.name, self.kind, self.uipc, self.l1d_mpki, self.l1i_mpki,
            self.branch_misprediction_rate, self.mlp_ge2,
        ]


def _merge(name: str, kind: str, threads: list[ThreadResult]) -> WorkloadCharacter:
    n = len(threads)
    instructions = sum(t.instructions for t in threads)
    branches = sum(t.branches for t in threads)
    return WorkloadCharacter(
        name=name,
        kind=kind,
        uipc=sum(t.uipc for t in threads) / n,
        l1d_mpki=sum(t.l1d_mpki for t in threads) / n,
        l1i_mpki=sum(t.l1i_mpki for t in threads) / n,
        branch_mpki=1000.0 * sum(t.branch_mispredicts for t in threads)
        / max(instructions, 1),
        branch_misprediction_rate=sum(t.branch_mispredicts for t in threads)
        / max(branches, 1),
        mlp_ge2=sum(t.mlp_at_least(2) for t in threads) / n,
        mlp_ge3=sum(t.mlp_at_least(3) for t in threads) / n,
    )


def characterize(
    profile: WorkloadProfile,
    config: CoreConfig | None = None,
    sampling: SamplingConfig = SamplingConfig(),
) -> WorkloadCharacter:
    """Stand-alone characterization of one workload profile."""
    core_config = (config or CoreConfig()).single_thread(192)
    results = sample_solo(profile, core_config, sampling)
    return _merge(
        profile.name, profile.kind.value, [r.threads[0] for r in results]
    )


def characterize_all(
    sampling: SamplingConfig = SamplingConfig(),
) -> dict[str, WorkloadCharacter]:
    """Characterize every registered workload (4 services + 29 SPEC)."""
    return {
        name: characterize(profile, sampling=sampling)
        for name, profile in sorted(all_profiles().items())
    }


def format_characterization(characters: dict[str, WorkloadCharacter]) -> str:
    """Render a characterization table (sorted: services first, then batch)."""
    ordered = sorted(
        characters.values(), key=lambda c: (c.kind != "latency-sensitive", c.name)
    )
    return format_table(
        ["workload", "kind", "UIPC", "L1-D MPKI", "L1-I MPKI", "BP miss rate",
         "MLP>=2"],
        [c.as_row() for c in ordered],
        float_fmt=".3f",
        title="Stand-alone workload characterization (192-entry ROB)",
    )
