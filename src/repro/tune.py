"""CRN-paired autotuning of the Stretch monitor against scenario suites.

The paper fixes :class:`~repro.core.monitor.MonitorConfig` by hand
(engage fraction and streak, violation streak, throttle length).  This
module searches that space against a **weighted portfolio of
adversarial scenarios** (:mod:`repro.scenarios`) and scores each
candidate on the violation-rate-vs-batch-UIPC trade the paper's Fig. 14
frames, using the SLO error-budget machinery of :mod:`repro.obs.slo`.

Methodology — **common random numbers, content-addressed**:

* every candidate is evaluated with the *same* ``config.seed``, so all
  balancing jitter, surrogate noise and scenario masks are identical
  across candidates (paired evaluation: score differences are policy
  effects, not resampling noise);
* each (candidate, scenario) day runs as a
  :class:`~repro.fleet.shard.FleetShardJob` through the
  :class:`~repro.engine.store.ResultStore`, whose key covers the config
  *and* the scenario — coordinate descent revisits and warm re-runs of
  the tuner are cache hits, not simulations.

The search is deliberately simple and derivative-free: the paper
default, ``n_trials`` random draws from the :class:`TuneSpace` grid,
then coordinate descent (full axis sweeps around the incumbent) until
no axis improves or the round budget runs out.  All randomness derives
from ``derive_seed(seed, "tune-trial", t)`` — re-running a tune is
deterministic and (via the store) nearly free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.core.monitor import MonitorConfig
from repro.fleet.engine import FleetConfig, FleetEngine, FleetTimeline
from repro.fleet.shard import FleetShardJob
from repro.obs.slo import SLOSpec, parse_slo
from repro.scenarios import ScenarioSpec, as_scenario
from repro.util.rng import derive_seed

__all__ = [
    "CandidateScore",
    "PortfolioEntry",
    "ScenarioOutcome",
    "TuneResult",
    "TuneSpace",
    "confirm_candidates",
    "default_portfolio",
    "tune_monitor",
]

#: Score penalty per whole error budget burned beyond the SLO target.
OVER_BUDGET_PENALTY = 1.0
#: Throughput-gain units traded per error budget consumed within target
#: (a mild pressure toward cleaner days among budget-compliant configs).
BURN_TIEBREAK = 0.02


@dataclass(frozen=True)
class TuneSpace:
    """The monitor-parameter grid the tuner searches.

    One axis per :class:`~repro.core.monitor.MonitorConfig` field; each
    axis is a tuple of admissible values.  The default grid brackets the
    paper's hand-picked config (0.6 / 3 / 3 / 10) on every axis.

    Attributes
    ----------
    engage_fraction:
        Candidate B-mode engage thresholds (fraction of the QoS target).
    engage_windows:
        Candidate compliant-streak lengths before engaging B-mode.
    violation_windows_to_throttle:
        Candidate violation-streak lengths before ordering a throttle.
    throttle_windows:
        Candidate throttle interval lengths.
    """

    engage_fraction: tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8)
    engage_windows: tuple[int, ...] = (1, 2, 3, 4, 6)
    violation_windows_to_throttle: tuple[int, ...] = (1, 2, 3, 4, 6)
    throttle_windows: tuple[int, ...] = (4, 6, 10, 14, 20)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "engage_fraction",
            tuple(float(v) for v in self.engage_fraction),
        )
        for name in (
            "engage_windows", "violation_windows_to_throttle",
            "throttle_windows",
        ):
            object.__setattr__(
                self, name, tuple(int(v) for v in getattr(self, name))
            )
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name} has no values")
            for value in values:
                # Fail fast on values MonitorConfig would reject mid-search.
                MonitorConfig(**{name: value})

    @property
    def axes(self) -> dict[str, tuple]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def size(self) -> int:
        """Number of distinct configurations on the grid."""
        return math.prod(len(v) for v in self.axes.values())

    def sample(self, rng: np.random.Generator) -> MonitorConfig:
        """One uniform draw from the grid."""
        return MonitorConfig(**{
            name: values[int(rng.integers(len(values)))]
            for name, values in self.axes.items()
        })


@dataclass(frozen=True)
class PortfolioEntry:
    """One weighted scenario in the tuning portfolio.

    ``load`` overrides the tune-level diurnal curve for this entry
    (``None`` inherits it); ``weight`` scales the entry's contribution
    to the aggregate score.
    """

    scenario: ScenarioSpec
    weight: float = 1.0
    load: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenario", as_scenario(self.scenario))
        if not isinstance(self.scenario, ScenarioSpec):
            raise TypeError("portfolio entries need a scenario")
        if self.weight <= 0:
            raise ValueError("portfolio weights must be positive")


def default_portfolio() -> tuple[PortfolioEntry, ...]:
    """The stock tuning portfolio: calm plus one preset per family.

    The calm day anchors the throughput side (a tuned config must not
    give up batch UIPC on ordinary days to survive the adversaries).
    """
    return tuple(
        PortfolioEntry(scenario=name)
        for name in ("calm", "stragglers", "incident", "flash_crowd")
    )


@dataclass(frozen=True)
class ScenarioOutcome:
    """One (candidate, scenario) day's aggregates."""

    scenario: str
    weight: float
    violation_rate: float
    mean_batch_uipc: float
    bmode_fraction: float
    throttled_fraction: float
    budget_burn: float  # violation_rate / SLO target (1.0 = budget spent)


@dataclass(frozen=True)
class CandidateScore:
    """One monitor configuration's portfolio evaluation."""

    monitor: MonitorConfig
    score: float
    violation_rate: float  # weighted across the portfolio
    batch_gain: float  # weighted mean batch UIPC vs always-Baseline
    budget_burn: float  # weighted violation_rate / SLO target
    outcomes: tuple[ScenarioOutcome, ...]

    def dominates(self, other: "CandidateScore") -> tuple[str, ...]:
        """Scenarios where self strictly dominates ``other``.

        Domination on a scenario: strictly lower violation rate at
        equal-or-better mean batch UIPC (the ``ext_autotune``
        acceptance relation).
        """
        names = []
        theirs = {o.scenario: o for o in other.outcomes}
        for ours in self.outcomes:
            base = theirs.get(ours.scenario)
            if base is None:
                continue
            if (ours.violation_rate < base.violation_rate
                    and ours.mean_batch_uipc >= base.mean_batch_uipc):
                names.append(ours.scenario)
        return tuple(names)


class _Evaluator:
    """Scores monitor candidates over the portfolio, CRN-paired.

    Every fleet day goes through the result store as a full-fleet
    :class:`FleetShardJob` (``lo=0, hi=n_servers``), so repeated
    evaluations of the same (monitor, scenario) pair — coordinate
    descent revisits, warm tuner re-runs — are cache hits.
    """

    def __init__(
        self,
        ls_profile,
        performance,
        config: FleetConfig,
        portfolio: tuple[PortfolioEntry, ...],
        *,
        load: str,
        slo: SLOSpec,
        store,
        surrogate_values: tuple[float, ...] | None,
        corunners=None,
        baseline_uipc: float,
    ):
        self.ls_profile = ls_profile
        self.performance = performance
        self.config = config
        self.portfolio = portfolio
        self.load = load
        self.slo = slo
        self.store = store
        self.surrogate_values = surrogate_values
        self.corunners = corunners
        self.baseline_uipc = baseline_uipc
        self.fleet_runs = 0
        self.cached_runs = 0
        self._memo: dict[MonitorConfig, CandidateScore] = {}

    def _day(self, monitor: MonitorConfig, entry: PortfolioEntry):
        job = FleetShardJob(
            profile_name=self.ls_profile.name,
            performance=self.performance,
            config=replace(self.config, monitor=monitor),
            load=entry.load if entry.load is not None else self.load,
            lo=0,
            hi=self.config.n_servers,
            surrogate_values=self.surrogate_values,
            corunners=self.corunners,
            # Null scenarios run as plain fleet days, sharing cache
            # entries with non-tuner runs of the same config.
            scenario=None if entry.scenario.is_null else entry.scenario,
        )
        if self.store.get(job.key) is not None:
            self.cached_runs += 1
        else:
            self.fleet_runs += 1
        return FleetTimeline.from_values(self.store.compute(job))

    def __call__(self, monitor: MonitorConfig) -> CandidateScore:
        hit = self._memo.get(monitor)
        if hit is not None:
            return hit
        outcomes = []
        for entry in self.portfolio:
            day = self._day(monitor, entry)
            windows = day.total_windows
            vr = day.violation_rate
            outcomes.append(ScenarioOutcome(
                scenario=entry.scenario.name,
                weight=entry.weight,
                violation_rate=vr,
                mean_batch_uipc=(
                    float(day.batch_uipc_sum.sum()) / windows
                    if windows else 0.0
                ),
                bmode_fraction=day.bmode_fraction,
                throttled_fraction=day.throttled_fraction,
                budget_burn=vr / self.slo.target,
            ))
        total_weight = sum(o.weight for o in outcomes)
        vr = sum(o.weight * o.violation_rate for o in outcomes) / total_weight
        uipc = sum(
            o.weight * o.mean_batch_uipc for o in outcomes
        ) / total_weight
        gain = uipc / self.baseline_uipc - 1.0 if self.baseline_uipc else 0.0
        burn = vr / self.slo.target
        score = (
            gain
            - OVER_BUDGET_PENALTY * max(0.0, burn - 1.0)
            - BURN_TIEBREAK * burn
        )
        result = CandidateScore(
            monitor=monitor,
            score=score,
            violation_rate=vr,
            batch_gain=gain,
            budget_burn=burn,
            outcomes=tuple(outcomes),
        )
        self._memo[monitor] = result
        return result

    @property
    def evaluations(self) -> int:
        return len(self._memo)


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`tune_monitor` search.

    ``candidates`` holds every distinct configuration evaluated, best
    first; ``default`` is the incumbent the search started from (the
    paper's hand-picked config unless overridden).  ``fleet_runs`` /
    ``cached_runs`` split simulated from store-served fleet days — a
    warm re-run reports ``fleet_runs == 0``.
    """

    best: CandidateScore
    default: CandidateScore
    candidates: tuple[CandidateScore, ...]
    fleet_runs: int
    cached_runs: int
    slo: SLOSpec
    portfolio: tuple[PortfolioEntry, ...]
    seed: int

    @property
    def improved(self) -> bool:
        return self.best.score > self.default.score

    @property
    def dominating_scenarios(self) -> tuple[str, ...]:
        """Scenarios where the tuned config strictly dominates the default."""
        return self.best.dominates(self.default)

    def format(self) -> str:
        lines = [
            f"tuned monitor vs default "
            f"({len(self.candidates)} candidates, "
            f"{self.fleet_runs} simulated + {self.cached_runs} cached "
            f"fleet days, SLO {self.slo.name}<{self.slo.target:g})",
        ]
        for label, cand in (("default", self.default), ("tuned", self.best)):
            m = cand.monitor
            lines.append(
                f"  {label:<8} engage={m.engage_fraction:g}/"
                f"{m.engage_windows}w throttle="
                f"{m.violation_windows_to_throttle}v/{m.throttle_windows}w"
                f"  score={cand.score:+.4f} gain={cand.batch_gain:+.3f} "
                f"vr={cand.violation_rate:.4f}"
            )
        header = (
            f"  {'scenario':<18}{'vr(def)':>9}{'vr(tuned)':>11}"
            f"{'uipc(def)':>11}{'uipc(tuned)':>12}"
        )
        lines.append(header)
        base = {o.scenario: o for o in self.default.outcomes}
        for ours in self.best.outcomes:
            ref = base[ours.scenario]
            lines.append(
                f"  {ours.scenario:<18}{ref.violation_rate:>9.4f}"
                f"{ours.violation_rate:>11.4f}"
                f"{ref.mean_batch_uipc:>11.4f}{ours.mean_batch_uipc:>12.4f}"
            )
        dom = self.dominating_scenarios
        lines.append(
            "  dominates default on: " + (", ".join(dom) if dom else "none")
        )
        return "\n".join(lines)


def confirm_candidates(
    ls_profile,
    performance,
    config: FleetConfig | None,
    monitors,
    *,
    portfolio: tuple[PortfolioEntry, ...] | None = None,
    load: str = "web_search",
    slo: SLOSpec | str = "qos:violation_rate<0.05",
    surrogate=None,
    corunners=None,
    store=None,
) -> tuple[tuple[CandidateScore, ...], int, int]:
    """Re-score specific monitor configurations against the portfolio.

    The confirmation half of surrogate-tier tuning: after a cheap
    screening pass ranks candidates with an approximate ``performance``
    model, the short-listed ``monitors`` are re-evaluated here with an
    exact-tier model — same portfolio, same CRN fleet seed, same store
    memoization — so the reported winner's score carries no surrogate
    error.  Returns ``(scores, fleet_runs, cached_runs)`` with scores in
    ``monitors`` order.
    """
    if config is None:
        config = FleetConfig()
    if portfolio is None:
        portfolio = default_portfolio()
    portfolio = tuple(portfolio)
    if not portfolio:
        raise ValueError("confirmation needs a non-empty portfolio")
    slo = parse_slo(slo) if isinstance(slo, str) else slo
    if store is None:
        from repro.engine.store import default_store

        store = default_store()
    fleet = FleetEngine(
        ls_profile, performance, config,
        surrogate=surrogate, corunners=corunners, store=store,
    )
    evaluate = _Evaluator(
        ls_profile, performance, config, portfolio,
        load=load, slo=slo, store=store,
        surrogate_values=fleet.ensure_surrogate().to_values(),
        corunners=corunners,
        baseline_uipc=fleet.baseline_batch_uipc,
    )
    scores = tuple(evaluate(monitor) for monitor in monitors)
    return scores, evaluate.fleet_runs, evaluate.cached_runs


def tune_monitor(
    ls_profile,
    performance,
    config: FleetConfig | None = None,
    *,
    portfolio: tuple[PortfolioEntry, ...] | None = None,
    space: TuneSpace | None = None,
    load: str = "web_search",
    n_trials: int = 12,
    descent_rounds: int = 2,
    seed: int = 17,
    slo: SLOSpec | str = "qos:violation_rate<0.05",
    surrogate=None,
    corunners=None,
    store=None,
) -> TuneResult:
    """Search :class:`MonitorConfig` space against a scenario portfolio.

    ``config.monitor`` is the incumbent/default; all candidates are
    evaluated CRN-paired (same ``config.seed``) through the result
    store.  ``slo`` supplies the violation-rate budget the score
    penalizes against (an :class:`~repro.obs.slo.SLOSpec` or its
    compact string form).  Deterministic for a given ``seed``.
    """
    if config is None:
        config = FleetConfig()
    if portfolio is None:
        portfolio = default_portfolio()
    portfolio = tuple(portfolio)
    if not portfolio:
        raise ValueError("tuning needs a non-empty portfolio")
    space = space if space is not None else TuneSpace()
    slo = parse_slo(slo) if isinstance(slo, str) else slo
    if slo.objective != "violation_rate":
        raise ValueError(
            f"tuning scores the violation_rate objective, got "
            f"{slo.objective!r}"
        )
    if n_trials < 0:
        raise ValueError("n_trials must be >= 0")
    if descent_rounds < 0:
        raise ValueError("descent_rounds must be >= 0")

    if store is None:
        from repro.engine.store import default_store

        store = default_store()
    fleet = FleetEngine(
        ls_profile, performance, config,
        surrogate=surrogate, corunners=corunners, store=store,
    )
    surrogate_values = fleet.ensure_surrogate().to_values()
    evaluate = _Evaluator(
        ls_profile, performance, config, portfolio,
        load=load, slo=slo, store=store,
        surrogate_values=surrogate_values, corunners=corunners,
        baseline_uipc=fleet.baseline_batch_uipc,
    )

    default = evaluate(config.monitor)
    best = default
    for t in range(n_trials):
        rng = np.random.default_rng(derive_seed(seed, "tune-trial", t))
        cand = evaluate(space.sample(rng))
        if cand.score > best.score:
            best = cand
    for _ in range(descent_rounds):
        improved = False
        for name, values in space.axes.items():
            for value in values:
                cand = evaluate(replace(best.monitor, **{name: value}))
                if cand.score > best.score:
                    best = cand
                    improved = True
        if not improved:
            break

    candidates = tuple(sorted(
        evaluate._memo.values(), key=lambda c: -c.score
    ))
    return TuneResult(
        best=best,
        default=default,
        candidates=candidates,
        fleet_runs=evaluate.fleet_runs,
        cached_runs=evaluate.cached_runs,
        slo=slo,
        portfolio=portfolio,
        seed=seed,
    )
