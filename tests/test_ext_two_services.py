"""Tests for the two-latency-sensitive-services extension (§IV-D)."""

import pytest

from repro.core.partitioning import DEFAULT_Q_MODE, PartitionScheme
from repro.cpu.sampling import SamplingConfig
from repro.experiments import ext_two_services as ext
from repro.experiments.common import Fidelity

# LS-vs-LS deltas are a few percent, well inside small-budget noise, so this
# module runs at the experiment harness's regular quick fidelity.
TINY = Fidelity(
    "small",
    SamplingConfig(n_samples=3, warmup_instructions=6000,
                   measure_instructions=6000, seed=42),
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    import os

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("cache"))
    return ext.run(TINY)


class TestTwoServices:
    def test_all_pairs_measured(self, result):
        assert len(result.rows) == len(ext.SERVICE_PAIRS)

    def test_factors_in_unit_range(self, result):
        for row in result.rows:
            for value in (row.equal_factor_loaded, row.skew_factor_loaded,
                          row.equal_factor_background, row.skew_factor_background):
                assert 0.0 < value <= 1.0

    def test_skew_helps_loaded_thread(self, result):
        gains = [row.skew_factor_loaded - row.equal_factor_loaded
                 for row in result.rows]
        assert sum(gains) / len(gains) > -0.01
        assert max(gains) > 0.0

    def test_background_pays(self, result):
        losses = [row.equal_factor_background - row.skew_factor_background
                  for row in result.rows]
        assert sum(losses) / len(losses) > -0.02

    def test_safe_loads_in_range(self, result):
        for row in result.rows:
            assert 0.0 <= row.equal_safe_load <= 1.0
            assert 0.0 <= row.skew_safe_load <= 1.0

    def test_row_lookup(self, result):
        loaded, background = ext.SERVICE_PAIRS[0]
        assert result.row(loaded, background).loaded == loaded
        with pytest.raises(KeyError):
            result.row("nope", "nada")

    def test_format(self, result):
        text = result.format()
        assert DEFAULT_Q_MODE.name in text
        assert "loaded" in text

    def test_custom_scheme(self):
        result = ext.run(TINY, scheme=PartitionScheme(128, 64))
        assert result.scheme.name == "128-64"
