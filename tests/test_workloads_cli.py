"""Tests for the stretch-trace CLI."""

import pytest

from repro.workloads.cli import main


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "web_search" in out and "zeusmp" in out
        assert len(out.strip().splitlines()) == 33


class TestGenerateAndInfo:
    def test_round_trip(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        assert main(["generate", "mcf", "-n", "5000", "-o", str(path)]) == 0
        assert path.exists()
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mcf (5000 µops)" in out
        assert "LOAD" in out and "BRANCH" in out

    def test_generate_unknown_workload(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "quake", "-o", str(tmp_path / "x.npz")])


class TestCharacterize:
    def test_characterize_runs(self, capsys):
        assert main(["characterize", "gamess", "--samples", "1"]) == 0
        out = capsys.readouterr().out
        assert "UIPC" in out and "MLP" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
