"""FastCore: engine selection, bit-identity smoke, event-horizon properties.

The exhaustive equivalence proof lives in the three-way differential sweep
(``tests/test_check_reference.py``); this file covers the FastCore-specific
surface: ``CoreConfig.engine`` / ``REPRO_CORE`` resolution, the observer
wiring (event log, invariant checker, sampler entry points), and the
event-horizon structure itself via seeded property loops (plain
``repro.util.rng`` seeding — no hypothesis, so failures replay exactly).
"""

import random

import pytest

from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.cpu.config import CoreConfig
from repro.cpu.fast_core import CORE_ENV, FastCore, make_core, resolve_engine
from repro.cpu.smt_core import SMTCore
from repro.util.rng import derive_seed
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile

#: Mixed latency-sensitive / batch pool for the seeded property loops.
POOL = ("mcf", "web_search", "zeusmp", "omnetpp", "gamess", "libquantum")
SPLITS = ((96, 96), (56, 136), (136, 56), (32, 160), (160, 32))


def _traces(rng, n, length=3000):
    names = [rng.choice(POOL) for _ in range(n)]
    return tuple(
        generate_trace(get_profile(name), length,
                       seed=derive_seed(rng.randrange(1 << 20), name, "t", i))
        for i, name in enumerate(names)
    )


def _random_config(rng):
    config = CoreConfig(
        fetch_policy=rng.choice(("icount", "round_robin", "ratio")),
        enable_prefetcher=rng.random() < 0.75,
    )
    return config.with_rob_partition(*rng.choice(SPLITS))


class TestEngineSelection:
    def test_default_engine_is_fast(self):
        assert resolve_engine() == "fast"
        assert resolve_engine(CoreConfig()) == "fast"
        assert isinstance(make_core(CoreConfig(), _traces(random.Random(0), 1)),
                          FastCore)

    def test_config_engine_legacy(self):
        config = CoreConfig(engine="legacy")
        assert resolve_engine(config) == "legacy"
        core = make_core(config, _traces(random.Random(1), 1))
        assert type(core) is SMTCore

    def test_env_overrides_config(self, monkeypatch):
        monkeypatch.setenv(CORE_ENV, "legacy")
        assert resolve_engine(CoreConfig(engine="fast")) == "legacy"
        monkeypatch.setenv(CORE_ENV, "fast")
        assert resolve_engine(CoreConfig(engine="legacy")) == "fast"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(CORE_ENV, "turbo")
        with pytest.raises(ValueError, match="REPRO_CORE"):
            resolve_engine(CoreConfig())

    def test_invalid_config_engine_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(engine="turbo")

    def test_engine_excluded_from_config_identity(self):
        """Engine choice must not split the content-addressed result cache."""
        assert CoreConfig(engine="fast") == CoreConfig(engine="legacy")
        assert hash(CoreConfig(engine="fast")) == hash(CoreConfig(engine="legacy"))


class TestBitIdentitySmoke:
    def test_pair_run_identical_with_event_log(self):
        rng = random.Random(7)
        traces = _traces(rng, 2)
        config = CoreConfig().with_rob_partition(56, 136)
        fast = FastCore(config, traces)
        legacy = SMTCore(config, traces)
        fast.event_log = []
        legacy.event_log = []
        rf = fast.run(400, warmup_instructions=200, require_all_threads=True)
        rl = legacy.run(400, warmup_instructions=200, require_all_threads=True)
        assert rf == rl
        assert fast.cycle == legacy.cycle
        assert fast.event_log == legacy.event_log

    def test_solo_run_identical(self):
        rng = random.Random(8)
        traces = _traces(rng, 1)
        fast = FastCore(CoreConfig().single_thread(48), traces)
        legacy = SMTCore(CoreConfig().single_thread(48), traces)
        assert fast.run(500, warmup_instructions=100) == \
            legacy.run(500, warmup_instructions=100)

    def test_repro_check_attaches_checker_to_fast_core(self, monkeypatch):
        """REPRO_CHECK=1 must reach FastCore through the sampling path."""
        monkeypatch.setenv("REPRO_CHECK", "1")
        from repro.obs.sampler import attach_core_observers

        core = make_core(CoreConfig(), _traces(random.Random(9), 2))
        attach_core_observers(core, {})
        assert isinstance(core, FastCore)
        assert isinstance(core.checker, InvariantChecker)
        result = core.run(300, warmup_instructions=100,
                          require_all_threads=True)
        assert result.cycles > 0
        assert core.checker.violations == []


class TestEventHorizonProperties:
    """Seeded property loops over the event-skipping structure."""

    def test_jumps_never_pass_an_event(self):
        """Every logged jump lands exactly on the earliest pending event."""
        rng = random.Random(derive_seed(42, "fast-core", "jumps"))
        jumps_seen = 0
        for trial in range(8):
            n = 2 if rng.random() < 0.7 else 1
            core = FastCore(_random_config(rng), _traces(rng, n))
            core.jump_log = []
            core.run(300, warmup_instructions=100,
                     require_all_threads=(n == 2))
            for frm, to, events in core.jump_log:
                jumps_seen += 1
                assert to > frm + 1, "logged jump must skip at least one cycle"
                assert events, "a jump must target a pending event"
                assert to == events[0], (
                    f"jump {frm}->{to} does not land on earliest event "
                    f"{events[0]} (horizon {events})"
                )
                assert all(e >= to or e <= frm for e in events), (
                    f"jump {frm}->{to} passed an event inside the gap: {events}"
                )
        assert jumps_seen > 0, "property never exercised a multi-cycle jump"

    def test_mlp_histogram_sums_to_measured_cycles(self):
        """Batched gap accounting must cover every measured cycle exactly."""
        rng = random.Random(derive_seed(42, "fast-core", "mlp"))
        for trial in range(6):
            n = 2 if rng.random() < 0.7 else 1
            config = _random_config(rng)
            traces = _traces(rng, n)
            for cls in (FastCore, SMTCore):
                core = cls(config, traces)
                result = core.run(300, warmup_instructions=100,
                                  require_all_threads=(n == 2))
                for thread in result.threads:
                    assert sum(thread.mlp_cycles) == result.cycles, (
                        f"{cls.__name__} thread {thread.thread}: MLP "
                        f"histogram covers {sum(thread.mlp_cycles)} cycles, "
                        f"measured {result.cycles}"
                    )

    def test_earliest_event_matches_brute_force(self):
        """`_earliest_event` equals the min of the sorted event horizon."""
        rng = random.Random(derive_seed(42, "fast-core", "horizon"))
        checked = 0
        for trial in range(6):
            n = 2 if rng.random() < 0.5 else 1
            core = FastCore(_random_config(rng), _traces(rng, n))
            # Fresh core: no in-flight work, no events.
            assert core.pending_events(core.cycle) == []
            assert core._earliest_event(core.cycle) is None
            # Sample mid-run states at several window boundaries.
            for window in range(4):
                core.run(60, max_cycles=200_000,
                         require_all_threads=(n == 2))
                events = core.pending_events(core.cycle)
                brute = min(events) if events else None
                assert core._earliest_event(core.cycle) == brute
                if events:
                    checked += 1
        assert checked > 0, "property never saw a non-empty event horizon"

    def test_checker_rejects_event_passing_jump(self):
        """The generalized multi-cycle jump law actually fires."""
        rng = random.Random(derive_seed(42, "fast-core", "law"))
        core = FastCore(CoreConfig(), _traces(rng, 2))
        core.run(200, warmup_instructions=50, require_all_threads=True)
        checker = InvariantChecker()
        checker.on_cycle(core, core.cycle)
        # Forge a state where an in-flight head completion lies strictly
        # inside the next "jump": the checker must reject it.
        ts = core._threads[0]
        ts.rob_q.appendleft((core.cycle + 2, False))
        core.cycle += 10
        with pytest.raises(InvariantViolation, match="passed thread 0"):
            checker.on_cycle(core, core.cycle)
