"""Golden-digest regression tests for the figure harnesses.

Each test regenerates a fixed slice of a paper figure at quick fidelity
with a pinned seed, canonicalizes the result to JSON, and compares its
SHA-256 digest against the committed golden files in ``tests/golden/``.
Any change to the timing model — intentional or not — shows up here as a
digest mismatch with a field-level diff against the committed payload.

Refreshing after an *intentional* timing-model change::

    REPRO_GOLDEN_UPDATE=1 python -m pytest tests/test_golden_digests.py

and bump ``CACHE_VERSION`` in ``src/repro/engine/store.py`` in the same
commit, so content-addressed caches from the old model are evicted
everywhere (the digest files and the cache version must move together).

The slices are deliberately small (one service, two batch workloads, two
partition schemes) so the tests stay in tier-1 budget; the differential
sweep — not this file — is what proves engine equivalence.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import Fidelity

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Fixed figure slices: small, deterministic, still timing-sensitive.
LS_SUBSET = ("web_search",)
BATCH_SUBSET = ("zeusmp", "mcf")
FIG09_SCHEME_NAMES = ("56-136", "136-56")

_UPDATE = os.environ.get("REPRO_GOLDEN_UPDATE", "") == "1"


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Fresh result store per test: digests must come from real simulation."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload) -> str:
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def _flatten(obj, prefix=""):
    if isinstance(obj, dict):
        for k in sorted(obj):
            yield from _flatten(obj[k], f"{prefix}.{k}" if prefix else str(k))
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            yield from _flatten(v, f"{prefix}[{i}]")
    else:
        yield prefix, obj


def _diff(expected, actual, limit=10) -> str:
    """Field-level diff between two canonical payloads, first mismatches."""
    exp = dict(_flatten(expected))
    act = dict(_flatten(actual))
    lines = []
    for path in sorted(exp.keys() | act.keys()):
        a, b = exp.get(path, "<absent>"), act.get(path, "<absent>")
        if a != b:
            lines.append(f"  {path}: {a!r} -> {b!r}")
            if len(lines) >= limit:
                lines.append("  ... (more differences truncated)")
                break
    return "\n".join(lines) if lines else "  (payloads differ only in ordering)"


def _check_golden(name: str, payload) -> None:
    digest_path = GOLDEN_DIR / f"{name}.sha256"
    payload_path = GOLDEN_DIR / f"{name}.json"
    if _UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        payload_path.write_text(_canonical(payload) + "\n")
        digest_path.write_text(_digest(payload) + "\n")
        return
    assert digest_path.exists(), (
        f"missing golden digest {digest_path}; generate with "
        "REPRO_GOLDEN_UPDATE=1 python -m pytest tests/test_golden_digests.py"
    )
    expected_digest = digest_path.read_text().strip()
    actual_digest = _digest(payload)
    if actual_digest == expected_digest:
        return
    expected_payload = json.loads(payload_path.read_text())
    raise AssertionError(
        f"{name}: golden digest mismatch — the timing model's output "
        f"changed.\n"
        f"  expected sha256 {expected_digest}\n"
        f"  actual   sha256 {actual_digest}\n"
        f"field-level diff (committed -> regenerated):\n"
        f"{_diff(expected_payload, payload)}\n"
        "If this change is intentional, refresh the golden files "
        "(REPRO_GOLDEN_UPDATE=1 python -m pytest tests/test_golden_digests.py) "
        "AND bump CACHE_VERSION in src/repro/engine/store.py in the same "
        "commit, so stale content-addressed results are evicted."
    )


def _round(x: float) -> float:
    """Canonical float rounding: immune to last-ulp formatting drift."""
    return round(x, 12)


class TestGoldenDigests:
    def test_fig06_quick_digest(self, monkeypatch):
        from repro.experiments import fig06_rob_sensitivity as fig06

        monkeypatch.setattr(fig06, "LS_WORKLOADS", LS_SUBSET)
        monkeypatch.setattr(fig06, "BATCH_WORKLOADS", BATCH_SUBSET)
        result = fig06.run(Fidelity.quick(seed=42))
        payload = {
            "figure": "fig06",
            "fidelity": "quick",
            "seed": 42,
            "workloads": {"ls": list(LS_SUBSET), "batch": list(BATCH_SUBSET)},
            "curves": {
                series: {str(size): _round(v) for size, v in curve.items()}
                for series, curve in result.curves.items()
            },
        }
        _check_golden("fig06_quick", payload)

    def test_fig09_quick_digest(self, monkeypatch):
        from repro.experiments import fig09_stretch_modes as fig09

        monkeypatch.setattr(fig09, "LS_WORKLOADS", LS_SUBSET)
        monkeypatch.setattr(fig09, "BATCH_WORKLOADS", BATCH_SUBSET)
        schemes = tuple(
            s for s in fig09.ALL_SCHEMES if s.name in FIG09_SCHEME_NAMES
        )
        assert len(schemes) == len(FIG09_SCHEME_NAMES)
        result = fig09.run(Fidelity.quick(seed=42), schemes=schemes)
        payload = {
            "figure": "fig09",
            "fidelity": "quick",
            "seed": 42,
            "workloads": {"ls": list(LS_SUBSET), "batch": list(BATCH_SUBSET)},
            "by_scheme": {
                scheme: [
                    [ls, batch, _round(ls_sp), _round(batch_sp)]
                    for ls, batch, ls_sp, batch_sp in rows
                ]
                for scheme, rows in result.by_scheme.items()
            },
        }
        _check_golden("fig09_quick", payload)

    def test_ext_autotune_quick_digest(self):
        import dataclasses

        from repro.tune import PortfolioEntry, TuneSpace, tune_monitor
        from repro.workloads.registry import get_profile
        from tests.test_fleet import fleet_config, performance_model

        # A small but fully adversarial slice: three scenario families,
        # a 24-point grid, hand-built performance model (no core sim).
        result = tune_monitor(
            get_profile("web_search"),
            performance_model(),
            fleet_config(n_servers=16),
            portfolio=(
                PortfolioEntry(scenario="calm"),
                PortfolioEntry(scenario="stragglers", weight=2.0),
                PortfolioEntry(scenario="incident"),
            ),
            space=TuneSpace(
                engage_fraction=(0.5, 0.6, 0.7),
                engage_windows=(2, 3),
                violation_windows_to_throttle=(2, 3),
                throttle_windows=(6, 10),
            ),
            n_trials=3,
            descent_rounds=1,
            seed=11,
        )
        payload = {
            "experiment": "ext_autotune",
            "fidelity": "quick",
            "seed": 11,
            "n_servers": 16,
            "fleet_days": result.fleet_runs + result.cached_runs,
            "candidates": len(result.candidates),
            "monitors": {
                label: dataclasses.asdict(cand.monitor)
                for label, cand in (
                    ("default", result.default), ("best", result.best),
                )
            },
            "scores": {
                "default": _round(result.default.score),
                "best": _round(result.best.score),
            },
            "outcomes": {
                label: {
                    o.scenario: {
                        "violation_rate": _round(o.violation_rate),
                        "mean_batch_uipc": _round(o.mean_batch_uipc),
                        "bmode_fraction": _round(o.bmode_fraction),
                        "throttled_fraction": _round(o.throttled_fraction),
                    }
                    for o in cand.outcomes
                }
                for label, cand in (
                    ("default", result.default), ("best", result.best),
                )
            },
            "dominating_scenarios": list(result.dominating_scenarios),
        }
        _check_golden("ext_autotune_quick", payload)
