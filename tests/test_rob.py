"""Tests for the partitionable ROB/LSQ resource (limit/usage registers)."""

import pytest

from repro.cpu.rob import PartitionedResource


def make(limits=(96, 96), capacity=192) -> PartitionedResource:
    return PartitionedResource("ROB", capacity, limits)


class TestConstruction:
    def test_valid(self):
        r = make()
        assert r.limits == (96, 96)
        assert r.capacity == 192

    def test_limit_over_capacity(self):
        with pytest.raises(ValueError):
            make(limits=(200, 96))

    def test_nonpositive_limit(self):
        with pytest.raises(ValueError):
            make(limits=(0, 96))

    def test_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PartitionedResource("x", 0, (1,))

    def test_shared_style_limits(self):
        # Dynamically shared: both limits equal capacity.
        r = make(limits=(192, 192))
        assert r.limits == (192, 192)


class TestAllocation:
    def test_allocate_release_cycle(self):
        r = make()
        r.allocate(0)
        assert r.usage(0) == 1
        assert r.total_usage == 1
        r.release(0)
        assert r.usage(0) == 0

    def test_limit_blocks_thread(self):
        r = make(limits=(2, 96))
        r.allocate(0)
        r.allocate(0)
        assert not r.can_allocate(0)
        assert r.can_allocate(1)

    def test_allocate_beyond_limit_raises(self):
        r = make(limits=(1, 96))
        r.allocate(0)
        with pytest.raises(RuntimeError):
            r.allocate(0)

    def test_capacity_blocks_even_under_limit(self):
        r = PartitionedResource("x", 4, (4, 4))
        for _ in range(3):
            r.allocate(0)
        r.allocate(1)
        # Thread 1 is below its limit (1 < 4) but the structure is full.
        assert not r.can_allocate(1)

    def test_release_without_usage_raises(self):
        with pytest.raises(RuntimeError):
            make().release(0)

    def test_peak_usage_tracking(self):
        r = make()
        for _ in range(5):
            r.allocate(0)
        r.release(0)
        assert r.peak_usage[0] == 5
        # A stats reset cannot report a peak below the live occupancy:
        # 4 entries are still allocated when the window opens.
        r.reset_stats()
        assert r.peak_usage == [4, 0]
        for _ in range(4):
            r.release(0)
        r.reset_stats()
        assert r.peak_usage == [0, 0]


class TestReprogramming:
    def test_set_limits(self):
        r = make()
        r.set_limits((56, 136))
        assert r.limits == (56, 136)

    def test_set_limits_below_usage_rejected(self):
        r = make()
        for _ in range(10):
            r.allocate(0)
        with pytest.raises(RuntimeError, match="drain"):
            r.set_limits((5, 187))

    def test_set_limits_wrong_arity(self):
        with pytest.raises(ValueError):
            make().set_limits((96,))

    def test_set_limits_over_capacity(self):
        with pytest.raises(ValueError):
            make().set_limits((300, 10))

    def test_set_limits_nonpositive(self):
        with pytest.raises(ValueError):
            make().set_limits((0, 192))

    def test_repr(self):
        assert "ROB" in repr(make())
