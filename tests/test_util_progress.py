"""Tests for the progress-reporting utilities."""

import io

from repro.util.progress import ProgressPrinter, format_duration


class TestFormatDuration:
    def test_milliseconds(self):
        assert format_duration(0.25) == "250ms"

    def test_seconds(self):
        assert format_duration(12.34) == "12.3s"

    def test_minutes(self):
        assert format_duration(247.0) == "4m07.0s"


class TestProgressPrinter:
    def test_non_tty_emits_lines(self):
        stream = io.StringIO()
        printer = ProgressPrinter("engine", stream=stream, min_interval=0.0)
        printer.update("1/3 done")
        printer.update("2/3 done")
        printer.close("3/3 done")
        lines = stream.getvalue().splitlines()
        assert lines == [
            "[engine] 1/3 done", "[engine] 2/3 done", "[engine] 3/3 done",
        ]

    def test_identical_updates_deduplicated(self):
        stream = io.StringIO()
        printer = ProgressPrinter("engine", stream=stream, min_interval=0.0)
        printer.update("same")
        printer.update("same")
        assert stream.getvalue().count("same") == 1

    def test_rate_limited_updates_skipped(self):
        stream = io.StringIO()
        printer = ProgressPrinter("engine", stream=stream, min_interval=3600.0)
        printer.update("first")  # emitted: first update after construction?
        printer.update("second")  # within the interval: suppressed
        printer.close("final")  # force-emitted
        text = stream.getvalue()
        assert "second" not in text
        assert "final" in text
