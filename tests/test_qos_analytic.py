"""Analytic queueing formulas + cross-validation of the simulator."""

import pytest

from repro.qos.analytic import (
    allen_cunneen_wait,
    erlang_c,
    mm1_p99_sojourn,
    mmk_mean_sojourn,
    mmk_mean_wait,
    utilization,
)
from repro.qos.queueing import MMPPConfig, ServiceSimulator
from repro.workloads.profiles import QoSSpec


class TestFormulas:
    def test_utilization(self):
        assert utilization(2.0, 1.0, 4) == pytest.approx(0.5)

    def test_utilization_validation(self):
        with pytest.raises(ValueError):
            utilization(0.0, 1.0, 4)

    def test_erlang_c_single_server_equals_rho(self):
        # For k=1, P(wait) = rho exactly.
        assert erlang_c(0.6, 1.0, 1) == pytest.approx(0.6)

    def test_erlang_c_bounds(self):
        p = erlang_c(3.0, 1.0, 5)
        assert 0.0 < p < 1.0

    def test_erlang_c_decreases_with_servers(self):
        assert erlang_c(3.0, 1.0, 8) < erlang_c(3.0, 1.0, 5)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(5.0, 1.0, 4)

    def test_mm1_mean_wait_closed_form(self):
        # M/M/1: W_q = rho * S / (1 - rho).
        rho, s = 0.5, 2.0
        assert mmk_mean_wait(rho / s, s, 1) == pytest.approx(rho * s / (1 - rho))

    def test_sojourn_adds_service(self):
        wait = mmk_mean_wait(2.0, 1.0, 4)
        assert mmk_mean_sojourn(2.0, 1.0, 4) == pytest.approx(wait + 1.0)

    def test_allen_cunneen_recovers_mmk(self):
        assert allen_cunneen_wait(2.0, 1.0, 4, ca2=1.0, cs2=1.0) == pytest.approx(
            mmk_mean_wait(2.0, 1.0, 4)
        )

    def test_allen_cunneen_scales_with_variability(self):
        low = allen_cunneen_wait(2.0, 1.0, 4, ca2=0.5, cs2=0.5)
        high = allen_cunneen_wait(2.0, 1.0, 4, ca2=2.0, cs2=2.0)
        assert high == pytest.approx(4 * low)

    def test_mm1_p99(self):
        p99 = mm1_p99_sojourn(0.5, 1.0)
        assert p99 == pytest.approx(-2.0 * __import__("math").log(0.01))


class TestSimulatorCrossValidation:
    """The discrete-event simulator must agree with theory where theory is
    exact: Poisson-like arrivals (flat MMPP), exponential-ish service."""

    def make_service(self, cv=1.0, workers=4):
        qos = QoSSpec(target_ms=10_000.0, percentile=99.0, base_service_ms=10.0,
                      service_cv=cv)
        # Nearly-flat MMPP ~ Poisson.
        mmpp = MMPPConfig(calm_rate=0.999, burst_rate=1.001, burst_fraction=0.5,
                          mean_dwell_requests=50)
        return ServiceSimulator(qos, n_workers=workers, mmpp=mmpp, seed=11)

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_sojourn_matches_allen_cunneen(self, rho):
        workers, service_ms = 4, 10.0
        cv = 1.0
        rate = rho * workers / service_ms
        service = self.make_service(cv=cv, workers=workers)
        stats = service.run(rate, n_requests=30000)
        # Lognormal service with cv=1 -> cs2 = 1; Poisson arrivals -> ca2 = 1.
        expected = service_ms + allen_cunneen_wait(rate, service_ms, workers,
                                                   ca2=1.0, cs2=cv * cv)
        assert stats.mean == pytest.approx(expected, rel=0.15)

    def test_low_variability_waits_less(self):
        workers, service_ms, rho = 2, 10.0, 0.7
        rate = rho * workers / service_ms
        smooth = self.make_service(cv=0.3, workers=workers).run(rate, n_requests=20000)
        spiky = self.make_service(cv=1.5, workers=workers).run(rate, n_requests=20000)
        assert smooth.mean < spiky.mean

    def test_bursty_arrivals_exceed_poisson_tail(self):
        """The MMPP default is *burstier* than Poisson — the simulator's
        reason to exist beyond the formulas."""
        workers, service_ms, rho = 4, 10.0, 0.7
        rate = rho * workers / service_ms
        qos = QoSSpec(target_ms=10_000.0, percentile=99.0,
                      base_service_ms=service_ms, service_cv=1.0)
        bursty = ServiceSimulator(qos, n_workers=workers, seed=11)
        poissonish = self.make_service(cv=1.0, workers=workers)
        assert (
            bursty.run(rate, n_requests=20000).p99
            > poissonish.run(rate, n_requests=20000).p99
        )
