"""Property-based tests: every valid profile yields a valid trace."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import OpClass
from repro.workloads.generator import MAX_DEP_DISTANCE, generate_trace
from repro.workloads.profiles import WorkloadKind, WorkloadProfile


@st.composite
def batch_profiles(draw) -> WorkloadProfile:
    frac_load = draw(st.floats(0.05, 0.35))
    frac_store = draw(st.floats(0.0, 0.2))
    frac_fp = draw(st.floats(0.0, 0.3))
    streaming = draw(st.floats(0.0, 0.4))
    cold = draw(st.floats(0.0, 0.1))
    chase = draw(st.floats(0.0, min(0.2, 1.0 - streaming - cold)))
    footprint = draw(st.integers(64, 8192))
    return WorkloadProfile(
        name="hypo",
        kind=WorkloadKind.BATCH,
        description="hypothesis-generated",
        frac_load=frac_load,
        frac_store=frac_store,
        frac_int_mul=draw(st.floats(0.0, 0.05)),
        frac_fp=frac_fp if frac_load + frac_store + frac_fp < 0.9 else 0.0,
        dep_short_frac=draw(st.floats(0.2, 0.9)),
        dep_near_mean=draw(st.floats(1.5, 6.0)),
        dep_far_mean=draw(st.floats(8.0, 64.0)),
        dep2_frac=draw(st.floats(0.0, 0.8)),
        data_footprint_kb=footprint,
        hot_region_kb=draw(st.integers(8, min(64, footprint))),
        streaming_frac=streaming,
        stream_count=draw(st.integers(1, 8)),
        cold_miss_frac=cold,
        pointer_chase_frac=chase,
        instr_footprint_kb=draw(st.integers(4, 256)),
        block_len_mean=draw(st.floats(3.0, 18.0)),
        branch_predictability=draw(st.floats(0.5, 1.0)),
        code_zipf=draw(st.floats(0.0, 2.0)),
    )


class TestGeneratorProperties:
    @given(batch_profiles(), st.integers(64, 4000), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_generated_traces_always_valid(self, profile, length, seed):
        trace = generate_trace(profile, length, seed=seed)
        assert len(trace) == length
        trace.validate()  # raises on any structural violation

    @given(batch_profiles(), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_dep_distances_bounded(self, profile, seed):
        trace = generate_trace(profile, 1500, seed=seed)
        assert int(trace.dep1.max()) <= MAX_DEP_DISTANCE
        assert int(trace.dep2.max()) <= MAX_DEP_DISTANCE

    @given(batch_profiles(), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_memory_ops_have_addresses(self, profile, seed):
        trace = generate_trace(profile, 1500, seed=seed)
        is_mem = (trace.op == OpClass.LOAD) | (trace.op == OpClass.STORE)
        assert (trace.addr[is_mem] > 0).all() or not is_mem.any()

    @given(batch_profiles())
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_trace(self, profile):
        import numpy as np

        a = generate_trace(profile, 600, seed=5)
        b = generate_trace(profile, 600, seed=5)
        assert np.array_equal(a.op, b.op) and np.array_equal(a.addr, b.addr)
