"""Tests for the metric export layer (`repro.obs.export`).

The load-bearing guarantees:

* every instrument kind (counter / gauge / histogram / windowed series)
  renders to OpenMetrics text that the strict parser accepts, with the
  exact structural conventions (``_total``, cumulative ``le`` buckets,
  ``# EOF``);
* the parser really is strict — drift between renderer and parser, or a
  malformed scrape, fails loudly;
* the HTTP endpoint serves ``/metrics``, ``/status`` and ``/healthz``
  from daemon threads without perturbing the registry;
* the dashboard renders from both a local registry and a bare remote
  status payload.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    CONTENT_TYPE,
    DashboardPrinter,
    ObservabilityServer,
    escape_label_value,
    parse_openmetrics,
    render_dashboard,
    render_openmetrics,
    sanitize_metric_name,
    sparkline,
    validate_openmetrics,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry


def full_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("fleet.windows").inc(1200)
    registry.gauge("fleet.violation_rate").set(0.0375)
    histogram = registry.histogram(
        "fleet.server_violations", bounds=(1.0, 5.0, 10.0)
    )
    for value in (0.0, 2.0, 3.0, 7.0, 40.0):
        histogram.observe(value)
    series = registry.series("fleet.cluster_load")
    series.append(0.0, 0.30)
    series.append(2.0, 0.45)
    return registry


class TestNameAndLabelEscaping:
    def test_dotted_names_sanitize(self):
        assert sanitize_metric_name("fleet.slo.qos.burn") == (
            "fleet_slo_qos_burn"
        )
        assert sanitize_metric_name("0weird") == "_0weird"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_labels_roundtrip_through_parser(self):
        escaped = escape_label_value("a\\b\nc")
        text = (
            "# TYPE x gauge\n"
            'x{path="' + escaped + '"} 1\n'
            "# EOF\n"
        )
        samples = parse_openmetrics(text)
        assert samples["x"][0][0]["path"] == "a\\\\b\\nc"


class TestRenderOpenMetrics:
    def test_every_instrument_kind_renders_and_parses(self):
        text = render_openmetrics(full_registry())
        samples = parse_openmetrics(text)
        assert samples["fleet_windows_total"][0][1] == 1200
        assert samples["fleet_violation_rate"][0][1] == pytest.approx(0.0375)
        # Series export the latest point.
        assert samples["fleet_cluster_load"][0][1] == pytest.approx(0.45)
        # Histogram buckets are cumulative, ending in +Inf == count.
        buckets = {
            labels["le"]: value
            for labels, value in samples["fleet_server_violations_bucket"]
        }
        assert buckets == {"1": 1, "5": 3, "10": 4, "+Inf": 5}
        assert samples["fleet_server_violations_count"][0][1] == 5
        assert samples["fleet_server_violations_sum"][0][1] == pytest.approx(
            52.0
        )

    def test_counter_gets_total_suffix_and_type_line(self):
        text = render_openmetrics(full_registry())
        assert "# TYPE fleet_windows counter\n" in text
        assert "\nfleet_windows_total 1200\n" in text

    def test_ends_with_eof(self):
        assert render_openmetrics(MetricsRegistry()).endswith("# EOF\n")

    def test_empty_series_and_null_payloads_skipped(self):
        registry = MetricsRegistry()
        registry.series("quiet")
        text = render_openmetrics(registry)
        assert "quiet" not in text
        # A disabled registry renders to just the terminator.
        assert render_openmetrics(NULL_REGISTRY) == "# EOF\n"

    def test_accepts_collect_snapshot(self):
        registry = full_registry()
        assert render_openmetrics(registry.collect()) == (
            render_openmetrics(registry)
        )

    def test_validate_counts_samples(self):
        assert validate_openmetrics(render_openmetrics(full_registry())) == 9


class TestParserStrictness:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x gauge\nx 1\n")

    def test_sample_without_type_family_rejected(self):
        with pytest.raises(ValueError, match="no TYPE family"):
            parse_openmetrics("x 1\n# EOF\n")

    def test_blank_line_rejected(self):
        with pytest.raises(ValueError, match="blank"):
            parse_openmetrics("# TYPE x gauge\n\nx 1\n# EOF\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_openmetrics("# TYPE x gauge\nx = 1\n# EOF\n")

    def test_bad_label_syntax_rejected(self):
        with pytest.raises(ValueError, match="label"):
            parse_openmetrics('# TYPE x gauge\nx{le=1} 1\n# EOF\n')


class TestObservabilityServer:
    def test_serves_metrics_status_and_healthz(self):
        registry = full_registry()
        with ObservabilityServer(
            registry, status_fn=lambda: {"window": 7}
        ) as server:
            with urllib.request.urlopen(server.url + "/metrics") as rsp:
                assert rsp.headers["Content-Type"] == CONTENT_TYPE
                text = rsp.read().decode()
            assert validate_openmetrics(text) > 0
            with urllib.request.urlopen(server.url + "/status") as rsp:
                assert json.loads(rsp.read().decode()) == {"window": 7}
            with urllib.request.urlopen(server.url + "/healthz") as rsp:
                assert rsp.read() == b"ok\n"

    def test_unknown_route_is_404(self):
        with ObservabilityServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope")
            assert err.value.code == 404

    def test_status_route_404_without_status_fn(self):
        with ObservabilityServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/status")
            assert err.value.code == 404

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        registry.gauge("fleet.window").set(1.0)
        with ObservabilityServer(registry) as server:
            registry.gauge("fleet.window").set(5.0)
            text = urllib.request.urlopen(server.url + "/metrics").read()
        assert parse_openmetrics(text.decode())["fleet_window"][0][1] == 5.0


class TestDashboard:
    def status(self, **over) -> dict:
        status = {
            "window": 6, "n_windows": 12, "n_servers": 100,
            "feed": "web_search", "policy": "jittered",
            "stopped": False, "stop_reason": None,
            "metrics": {
                "violation_rate": 0.05, "bmode_fraction": 0.6,
                "throttled_fraction": 0.01, "mean_tail_ms": 40.0,
                "mean_batch_uipc": 0.5, "windows": 600,
            },
        }
        status.update(over)
        return status

    def test_renders_remote_status_without_registry(self):
        panel = render_dashboard(self.status())
        assert "window     6/12" in panel
        assert "violation_rate 0.0500" in panel
        assert "b_mode" in panel

    def test_renders_slo_and_recorder_sections(self):
        panel = render_dashboard(self.status(
            slo={"qos": {
                "budget_remaining": 0.25, "alerting": True,
                "burn": {"page": {"fast": 12.0, "slow": 3.0}},
            }},
            recorder={"frames": 6, "capacity": 288, "captures": 1,
                      "dumps": 0},
        ))
        assert "slo     qos" in panel
        assert "ALERT" in panel
        assert "12.0/3.0x" in panel
        assert "ring 6/288" in panel

    def test_local_registry_supplies_sparklines_and_modes(self):
        registry = MetricsRegistry()
        for name, value in (
            ("baseline", 0.2), ("b_mode", 0.7), ("q_mode", 0.1)
        ):
            registry.gauge(f"fleet.mode_occupancy.{name}").set(value)
        series = registry.series("fleet.cluster_load")
        for k in range(6):
            series.append(float(k), 0.1 * k)
        panel = render_dashboard(self.status(), registry)
        assert "q_mode" in panel
        assert "load" in panel

    def test_stopped_marker(self):
        panel = render_dashboard(self.status(
            stopped=True, stop_reason="feed_stalled"
        ))
        assert "STOPPED (feed_stalled)" in panel

    def test_sparkline_shape(self):
        assert len(sparkline([1, 2, 3], width=8)) == 8
        assert sparkline([], width=4) == "    "
        assert sparkline([5.0, 5.0], width=2) != "  "

    def test_printer_paginates_on_pipe(self):
        import io

        stream = io.StringIO()
        printer = DashboardPrinter(stream, every=2)
        printer.update(self.status())     # call 1: skipped (1 % 2 != 0)
        assert stream.getvalue() == ""
        printer.update(self.status())     # call 2: rendered
        assert "stretch-repro fleet" in stream.getvalue()

    def test_printer_always_renders_stop(self):
        import io

        stream = io.StringIO()
        printer = DashboardPrinter(stream, every=100)
        printer.update(self.status(stopped=True, stop_reason="sigint"))
        assert "STOPPED" in stream.getvalue()
