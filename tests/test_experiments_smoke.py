"""Smoke tests: every experiment harness runs end-to-end on a tiny slice.

Workload lists are monkeypatched down to one service and two batch
benchmarks, and the sampling budget is minimal — these tests verify the
harness plumbing and output formatting, not paper fidelity (the benchmark
suite does that at full scale).
"""

import pytest

from repro.core.partitioning import B_MODES, Q_MODES
from repro.cpu.sampling import SamplingConfig
from repro.experiments.common import Fidelity

TINY = Fidelity(
    "tiny",
    SamplingConfig(n_samples=1, warmup_instructions=800,
                   measure_instructions=800, seed=13),
)

LS_SUBSET = ("web_search",)
BATCH_SUBSET = ("zeusmp", "gamess")


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def shrink(monkeypatch, module, ls=True, batch=True):
    if ls:
        monkeypatch.setattr(module, "LS_WORKLOADS", LS_SUBSET)
    if batch:
        monkeypatch.setattr(module, "BATCH_WORKLOADS", BATCH_SUBSET)


class TestLightExperiments:
    def test_fig01(self):
        from repro.experiments import fig01_latency_vs_load as fig01

        result = fig01.run(TINY, n_requests=3000)
        assert len(result.points) == len(fig01.LOAD_POINTS)
        assert result.p99_growth >= 1.0
        assert "Figure 1" in result.format()

    def test_fig02(self, monkeypatch):
        from repro.experiments import fig02_slack as fig02

        monkeypatch.setattr(fig02, "LS_WORKLOADS", LS_SUBSET)
        result = fig02.run(TINY, n_requests=3000)
        assert result.required_at("web_search", 0.2) <= result.required_at(
            "web_search", 0.9
        )
        assert 0 <= result.slack_at("web_search", 0.2) <= 1
        assert "Figure 2" in result.format()

    def test_fig07(self):
        from repro.experiments import fig07_mlp as fig07

        result = fig07.run(TINY)
        assert result.mlp_at_least("zeusmp", 2) > result.mlp_at_least("web_search", 2)
        assert "Figure 7" in result.format()

    def test_tables(self):
        from repro.experiments import tables

        result = tables.run()
        text = result.format()
        assert "Table I" in text and "Table II" in text and "Table III" in text
        assert "192 entries total" in text
        assert "100 ms" in text


class TestSimulationExperiments:
    def test_fig03(self, monkeypatch):
        from repro.experiments import fig03_colocation_slowdown as fig03

        shrink(monkeypatch, fig03)
        result = fig03.run(TINY)
        assert set(result.pairs) == set(LS_SUBSET)
        assert len(result.pairs["web_search"]) == len(BATCH_SUBSET)
        assert "Figure 3" in result.format()

    def test_fig04(self, monkeypatch):
        from repro.experiments import fig04_resource_contention as fig04

        monkeypatch.setattr(fig04, "BATCH_WORKLOADS", BATCH_SUBSET)
        result = fig04.run(TINY)
        assert set(result.by_resource) == set(fig04.RESOURCES)
        assert "Figure 4" in result.format()

    def test_fig05(self, monkeypatch):
        from repro.experiments import fig04_resource_contention as fig04
        from repro.experiments import fig05_resource_contention_all as fig05

        monkeypatch.setattr(fig04, "BATCH_WORKLOADS", BATCH_SUBSET)
        monkeypatch.setattr(fig05, "LS_WORKLOADS", LS_SUBSET)
        result = fig05.run(TINY)
        assert set(result.per_service) == set(LS_SUBSET)
        assert result.avg_batch_slowdown("rob") is not None
        assert "Figure 5" in result.format()

    def test_fig06(self, monkeypatch):
        from repro.experiments import fig06_rob_sensitivity as fig06

        monkeypatch.setattr(fig06, "LS_WORKLOADS", LS_SUBSET)
        monkeypatch.setattr(fig06, "BATCH_WORKLOADS", BATCH_SUBSET)
        monkeypatch.setattr(fig06, "ROB_SIZES", [48, 96, 192])
        result = fig06.run(TINY)
        assert result.slowdown("zeusmp", 192) == pytest.approx(0.0)
        assert result.slowdown("zeusmp", 48) > 0.0

    def test_fig09(self, monkeypatch):
        from repro.experiments import fig09_stretch_modes as fig09

        shrink(monkeypatch, fig09)
        result = fig09.run(TINY, schemes=(B_MODES[1], Q_MODES[1]))
        assert set(result.by_scheme) == {"56-136", "136-56"}
        assert len(result.batch_speedups("56-136")) == len(BATCH_SUBSET)

    def test_fig10(self, monkeypatch):
        from repro.experiments import fig10_bmode_speedup as fig10

        shrink(monkeypatch, fig10)
        result = fig10.run(TINY)
        speedups = [s for __, s in result.speedups["web_search"]]
        assert speedups == sorted(speedups, reverse=True)
        assert "Figure 10" in result.format()

    def test_fig11(self, monkeypatch):
        from repro.experiments import fig11_dynamic_sharing as fig11

        shrink(monkeypatch, fig11)
        result = fig11.run(TINY)
        assert len(result.all_batch_slowdowns()) == len(BATCH_SUBSET)
        assert "Figure 11" in result.format()

    def test_fig12(self, monkeypatch):
        from repro.experiments import fig12_fetch_throttling as fig12

        shrink(monkeypatch, fig12)
        monkeypatch.setattr(fig12, "THROTTLE_RATIOS", (4,))
        result = fig12.run(TINY)
        assert set(result.by_policy) == {"FT 1:4", "Stretch"}
        assert "Figure 12" in result.format()

    def test_fig13(self, monkeypatch):
        from repro.experiments import fig13_software_scheduling as fig13

        shrink(monkeypatch, fig13)
        result = fig13.run(TINY)
        for policy in fig13.POLICIES:
            assert "web_search" in result.speedups[policy]
        assert "Figure 13" in result.format()

    def test_fig14(self, monkeypatch):
        from repro.experiments import fig14_case_studies as fig14

        monkeypatch.setattr(fig14, "BATCH_WORKLOADS", BATCH_SUBSET)
        result = fig14.run(TINY)
        ws = result.row("web_search_cluster")
        yt = result.row("youtube_cluster")
        assert 9.0 <= ws.hours_enabled <= 13.0
        assert 15.0 <= yt.hours_enabled <= 19.0
        assert ws.daily_gain == pytest.approx(
            ws.bmode_gain * ws.hours_enabled / 24.0
        )
        assert "case studies" in result.format()
